//! Table III and §III-C5: forks, their recognition, and one-miner forks.

use std::collections::BTreeMap;
use std::fmt;

use ethmeter_chain::forks::{
    census, extract_forks, one_miner_groups, BlockCensus, ForkLengthTable,
};
use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{grouped, pct, Table};

use crate::Reduce;

/// §III-C5's aggregation of one-miner fork groups.
#[derive(Debug, Clone, PartialEq)]
pub struct OneMinerReport {
    /// Count of groups by size: `tuples[k]` = number of (k+2)-sized groups
    /// (index 0 = pairs, 1 = triples, ...).
    pub tuples: Vec<u64>,
    /// Fraction of duplicate (non-canonical same-miner) blocks that were
    /// recognized as uncles (paper: 98%).
    pub recognized_fraction: f64,
    /// Fraction of groups whose blocks share a transaction set (paper:
    /// 56%).
    pub same_txset_fraction: f64,
    /// Fraction of all forks that are same-miner divergences (paper:
    /// "more than 11%").
    pub fraction_of_forks: f64,
}

impl OneMinerReport {
    /// Number of pairs (the paper's 1,750).
    pub fn pairs(&self) -> u64 {
        self.tuples.first().copied().unwrap_or(0)
    }

    /// Number of triples (the paper's 25).
    pub fn triples(&self) -> u64 {
        self.tuples.get(1).copied().unwrap_or(0)
    }
}

/// The fork analysis bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ForkReport {
    /// Block-level census (main / recognized uncles / unrecognized).
    pub census: BlockCensus,
    /// Table III.
    pub table: ForkLengthTable,
    /// §III-C5.
    pub one_miner: OneMinerReport,
    /// Total forks found.
    pub total_forks: u64,
}

/// Computes Table III and the one-miner fork statistics from ground truth.
pub fn analyze(data: &CampaignData) -> ForkReport {
    let mut acc = Forks::new();
    acc.observe(data);
    acc.finish()
}

/// Streaming Table III + §III-C5 across many campaigns: the fork census,
/// length table, and one-miner counters accumulated run by run. All the
/// report's fractions are recomputed from the merged counters at finish
/// time, so a thousand-run reduction reports pooled rates, not averages
/// of per-run rates.
#[derive(Debug, Clone, Default)]
pub struct Forks {
    census: BlockCensus,
    /// Fork length -> `(total, recognized)`.
    lengths: BTreeMap<usize, (u64, u64)>,
    tuples: Vec<u64>,
    duplicates: u64,
    recognized: u64,
    same_txset: u64,
    groups: u64,
    one_miner_forks: u64,
    total_forks: u64,
}

impl Forks {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Reduce for Forks {
    type Report = ForkReport;

    fn observe(&mut self, data: &CampaignData) {
        let tree = &data.truth.tree;
        let forks = extract_forks(tree);
        for f in &forks {
            let e = self.lengths.entry(f.length).or_default();
            e.0 += 1;
            if f.recognized {
                e.1 += 1;
            }
        }
        let groups = one_miner_groups(tree);
        for g in &groups {
            let idx = g.size() - 2;
            if self.tuples.len() <= idx {
                self.tuples.resize(idx + 1, 0);
            }
            self.tuples[idx] += 1;
            self.duplicates += g.duplicates;
            self.recognized += g.recognized_duplicates;
            if g.same_tx_set {
                self.same_txset += 1;
            }
        }
        self.groups += groups.len() as u64;
        // A fork is a one-miner divergence when its first block's miner
        // also mined the canonical block at the same height.
        self.one_miner_forks += forks
            .iter()
            .filter(|f| {
                let Some(&first) = f.blocks.first() else {
                    return false;
                };
                let Some(fork_block) = tree.get(first) else {
                    return false;
                };
                tree.canonical_hash(f.start_number)
                    .and_then(|h| tree.get(h))
                    .is_some_and(|main| main.miner() == fork_block.miner())
            })
            .count() as u64;
        self.total_forks += forks.len() as u64;
        let c = census(tree);
        self.census.main += c.main;
        self.census.recognized_uncles += c.recognized_uncles;
        self.census.unrecognized += c.unrecognized;
    }

    fn merge(&mut self, other: Self) {
        self.census.main += other.census.main;
        self.census.recognized_uncles += other.census.recognized_uncles;
        self.census.unrecognized += other.census.unrecognized;
        for (len, (total, rec)) in other.lengths {
            let e = self.lengths.entry(len).or_default();
            e.0 += total;
            e.1 += rec;
        }
        if self.tuples.len() < other.tuples.len() {
            self.tuples.resize(other.tuples.len(), 0);
        }
        for (a, b) in self.tuples.iter_mut().zip(other.tuples) {
            *a += b;
        }
        self.duplicates += other.duplicates;
        self.recognized += other.recognized;
        self.same_txset += other.same_txset;
        self.groups += other.groups;
        self.one_miner_forks += other.one_miner_forks;
        self.total_forks += other.total_forks;
    }

    fn finish(self) -> ForkReport {
        let table = ForkLengthTable {
            rows: self
                .lengths
                .iter()
                .map(|(&len, &(total, rec))| (len, total, rec, total - rec))
                .collect(),
        };
        ForkReport {
            census: self.census,
            table,
            one_miner: OneMinerReport {
                tuples: self.tuples,
                recognized_fraction: self.recognized as f64 / self.duplicates.max(1) as f64,
                same_txset_fraction: self.same_txset as f64 / self.groups.max(1) as f64,
                fraction_of_forks: self.one_miner_forks as f64 / self.total_forks.max(1) as f64,
            },
            total_forks: self.total_forks,
        }
    }
}

impl fmt::Display for ForkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — fork types and lengths")?;
        let total = self.census.total();
        writeln!(
            f,
            "blocks: {} main ({}), {} recognized uncles ({}), {} unrecognized ({})",
            grouped(self.census.main),
            pct(self.census.main as f64 / total.max(1) as f64),
            grouped(self.census.recognized_uncles),
            pct(self.census.recognized_uncles as f64 / total.max(1) as f64),
            grouped(self.census.unrecognized),
            pct(self.census.unrecognized as f64 / total.max(1) as f64),
        )?;
        writeln!(f, "(paper: 92.81% / 6.97% / 0.22%)")?;
        let mut t = Table::new(vec!["Fork Length", "Total", "Recognized", "Unrecognized"]);
        for &(len, total, rec, unrec) in &self.table.rows {
            t.row(vec![
                len.to_string(),
                grouped(total),
                grouped(rec),
                grouped(unrec),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "(paper: len1 15,171/15,100; len2 404/0; len3 10/0)")?;
        writeln!(f, "One-miner forks (§III-C5):")?;
        for (i, &count) in self.one_miner.tuples.iter().enumerate() {
            if count > 0 {
                writeln!(f, "  {}-tuples: {}", i + 2, grouped(count))?;
            }
        }
        writeln!(
            f,
            "  duplicates recognized as uncles: {} (paper: 98%)",
            pct(self.one_miner.recognized_fraction)
        )?;
        writeln!(
            f,
            "  same tx-set groups: {} (paper: 56%)",
            pct(self.one_miner.same_txset_fraction)
        )?;
        write!(
            f,
            "  one-miner share of all forks: {} (paper: >11%)",
            pct(self.one_miner.fraction_of_forks)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_measure::CampaignData;
    use ethmeter_types::{BlockHash, PoolId, TxId};

    /// Main chain of 10 by pool 0. Fork blocks:
    /// - height 1: duplicate by pool 0 (one-miner pair, same empty txset),
    ///   recognized as uncle by block 3;
    /// - height 4: fork by pool 1 (different-miner), never recognized.
    fn campaign() -> CampaignData {
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        let mut hashes: Vec<BlockHash> = Vec::new();
        let mut dup_hash = None;
        for i in 0..10u64 {
            let mut builder = BlockBuilder::new(parent, i + 1, PoolId(0)).salt(i);
            if i == 2 {
                // Block 3 references the duplicate as uncle.
                builder = builder.uncles(vec![dup_hash.expect("dup exists")]);
            }
            let b = builder.build();
            parent = b.hash();
            hashes.push(parent);
            tree.insert(b).expect("main");
            if i == 0 {
                // Duplicate at height 1 by the same miner.
                let dup = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(0))
                    .salt(1000)
                    .build();
                dup_hash = Some(dup.hash());
                tree.insert(dup).expect("dup");
            }
            if i == 3 {
                // Different-miner fork at height 4 with a tx.
                let fork = BlockBuilder::new(hashes[2], 4, PoolId(1))
                    .txs(vec![TxId(9)])
                    .salt(2000)
                    .build();
                tree.insert(fork).expect("fork");
            }
        }
        CampaignData {
            observers: vec![],
            truth: testutil::truth(tree, Default::default()),
        }
    }

    #[test]
    fn census_counts() {
        let r = analyze(&campaign());
        assert_eq!(r.census.main, 10);
        assert_eq!(r.census.recognized_uncles, 1);
        assert_eq!(r.census.unrecognized, 1);
        assert_eq!(r.census.total(), 12);
    }

    #[test]
    fn fork_table_rows() {
        let r = analyze(&campaign());
        assert_eq!(r.total_forks, 2);
        assert_eq!(r.table.rows, vec![(1, 2, 1, 1)]);
    }

    #[test]
    fn one_miner_stats() {
        let r = analyze(&campaign());
        assert_eq!(r.one_miner.pairs(), 1);
        assert_eq!(r.one_miner.triples(), 0);
        // The single duplicate was recognized.
        assert!((r.one_miner.recognized_fraction - 1.0).abs() < 1e-9);
        // The pair shares the (empty) tx set.
        assert!((r.one_miner.same_txset_fraction - 1.0).abs() < 1e-9);
        // 1 of 2 forks is a one-miner divergence.
        assert!((r.one_miner.fraction_of_forks - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let s = analyze(&campaign()).to_string();
        assert!(s.contains("Table III"));
        assert!(s.contains("2-tuples: 1"));
    }

    #[test]
    fn streamed_reduction_pools_counters() {
        use crate::Reduce;
        let data = campaign();
        let mut acc = Forks::new();
        acc.observe(&data);
        acc.observe(&data);
        let r = acc.finish();
        let single = analyze(&data);
        assert_eq!(r.census.total(), 2 * single.census.total());
        assert_eq!(r.total_forks, 2 * single.total_forks);
        assert_eq!(r.table.rows, vec![(1, 4, 2, 2)]);
        assert_eq!(r.one_miner.pairs(), 2);
        // Pooled fractions equal the per-run ones for identical runs.
        assert!((r.one_miner.fraction_of_forks - single.one_miner.fraction_of_forks).abs() < 1e-9);
        // Merge of single-run accumulators equals sequential observation.
        let mut left = Forks::new();
        left.observe(&data);
        let mut right = Forks::new();
        right.observe(&data);
        left.merge(right);
        assert_eq!(left.finish(), r);
        // One observed run is exactly the classic report.
        let mut one = Forks::new();
        one.observe(&data);
        assert_eq!(one.finish(), single);
    }
}
