//! Quickstart: simulate a small Ethereum-like network for a few minutes,
//! measure it from four continents, and print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ethmeter::analysis::{first_observation, propagation};
use ethmeter::prelude::*;

fn main() {
    // A scenario is a complete, seeded description of an experiment:
    // network size, geography, mining pools (the paper's April-2019
    // directory by default), transaction workload, and observers.
    let scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(15))
        .build();

    println!(
        "simulating {} ordinary nodes + {} pools for {} ...",
        scenario.ordinary_nodes,
        scenario.pools.len(),
        scenario.duration
    );

    // One call runs the discrete-event simulation and hands back the
    // dataset: per-observer logs plus ground truth.
    let outcome = run_campaign(&scenario);
    let data = &outcome.campaign;

    println!(
        "done: {} events, {} blocks on the main chain, {} transactions\n",
        outcome.events,
        data.truth.tree.head_number(),
        outcome.stats.txs_submitted
    );

    // Analyzers turn logs into the paper's figures.
    let fig1 = propagation::analyze(data);
    println!("{fig1}");

    let fig2 = first_observation::geo(data);
    println!("{fig2}");
}
