//! Geographic regions.
//!
//! The paper deploys observers in four regions (NA, EA, WE, CE); the global
//! node population additionally spans the rest of the connected world. We
//! model eight coarse regions — enough to give the latency matrix realistic
//! structure without over-fitting.

use std::fmt;

/// A coarse geographic region hosting nodes of the overlay.
///
/// The first four variants are the paper's vantage-point regions
/// (Table I); the remainder round out the global population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// North America (paper vantage point "NA").
    NorthAmerica,
    /// Eastern Asia (paper vantage point "EA").
    EasternAsia,
    /// Western Europe (paper vantage point "WE").
    WesternEurope,
    /// Central Europe (paper vantage point "CE").
    CentralEurope,
    /// Eastern Europe and Russia.
    EasternEurope,
    /// South and Southeast Asia.
    SouthAsia,
    /// South America.
    SouthAmerica,
    /// Oceania (Australia / New Zealand).
    Oceania,
}

impl Region {
    /// All regions, in canonical order (stable across releases).
    pub const ALL: [Region; 8] = [
        Region::NorthAmerica,
        Region::EasternAsia,
        Region::WesternEurope,
        Region::CentralEurope,
        Region::EasternEurope,
        Region::SouthAsia,
        Region::SouthAmerica,
        Region::Oceania,
    ];

    /// The paper's four vantage-point regions, in the order used by its
    /// figures (WE, CE, NA, EA appear on Figure 2's axis; we keep the
    /// canonical NA/EA/WE/CE order of Table I).
    pub const VANTAGE: [Region; 4] = [
        Region::NorthAmerica,
        Region::EasternAsia,
        Region::WesternEurope,
        Region::CentralEurope,
    ];

    /// Number of regions.
    pub const COUNT: usize = Self::ALL.len();

    /// A dense index in `0..Region::COUNT`, suitable for matrix lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Region from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Region::COUNT`.
    #[inline]
    pub fn from_index(idx: usize) -> Region {
        Self::ALL[idx]
    }

    /// The short code used in the paper's tables ("NA", "EA", "WE", "CE").
    pub fn abbrev(self) -> &'static str {
        match self {
            Region::NorthAmerica => "NA",
            Region::EasternAsia => "EA",
            Region::WesternEurope => "WE",
            Region::CentralEurope => "CE",
            Region::EasternEurope => "EE",
            Region::SouthAsia => "SA",
            Region::SouthAmerica => "SAm",
            Region::Oceania => "OC",
        }
    }

    /// Human-readable name as used in the paper's prose.
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::EasternAsia => "Eastern Asia",
            Region::WesternEurope => "Western Europe",
            Region::CentralEurope => "Central Europe",
            Region::EasternEurope => "Eastern Europe",
            Region::SouthAsia => "South Asia",
            Region::SouthAmerica => "South America",
            Region::Oceania => "Oceania",
        }
    }

    /// True for the four regions where the paper placed measurement nodes.
    pub fn is_vantage(self) -> bool {
        Self::VANTAGE.contains(&self)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_round_trip() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Region::from_index(i), *r);
        }
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in Region::ALL {
            assert!(seen.insert(r.abbrev()));
        }
    }

    #[test]
    fn vantage_regions_match_paper() {
        assert!(Region::NorthAmerica.is_vantage());
        assert!(Region::EasternAsia.is_vantage());
        assert!(Region::WesternEurope.is_vantage());
        assert!(Region::CentralEurope.is_vantage());
        assert!(!Region::Oceania.is_vantage());
        assert_eq!(Region::VANTAGE.len(), 4);
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Region::EasternAsia.to_string(), "Eastern Asia");
    }
}
