//! Parallel multi-seed campaign sweeps.
//!
//! The paper's statistical claims (and the follow-up literature it cites)
//! rest on *many independent campaigns*: the same scenario re-run from
//! different seeds, and optionally under perturbed parameters, so that
//! reported numbers come with run-to-run spread instead of a single
//! sample. [`Sweep`] is that methodology as an API: it fans one
//! [`Scenario`] out across a seed axis (and an optional variant axis) onto
//! `std::thread` workers and collects every [`CampaignOutcome`] plus
//! aggregate counters.
//!
//! Each job produces the outcome of an independent [`run_campaign`] call
//! on its own scenario clone, so per-seed results are **bit-identical** to
//! running the same scenario sequentially — the worker count only changes
//! wall-clock time, never output. [`run_campaign`] remains the
//! single-campaign fast path; a sweep of one seed adds only thread-spawn
//! overhead.
//!
//! Workers reuse state: each thread owns one [`CampaignRunner`] (a
//! [`crate::world::SimWorld`] + engine pair reset between jobs), so
//! registries, node tables, known-set probe tables, observer logs, and
//! the event-queue slab are allocated once per worker instead of once per
//! seed. [`Sweep::reuse_workers`] can disable this (fresh construction
//! per job) — the output is identical either way; the toggle exists so
//! the bench suite can measure exactly what reuse buys.
//!
//! # Example
//!
//! ```
//! use ethmeter_core::prelude::*;
//! use ethmeter_core::sweep::Sweep;
//!
//! let base = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(2))
//!     .build();
//! let sweep = Sweep::new(base).seed_range(1, 4).threads(2).run();
//! assert_eq!(sweep.runs.len(), 4);
//! assert!(sweep.totals.blocks_produced > 0);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use ethmeter_types::BlockHash;

use crate::runner::{run_campaign, CampaignOutcome, CampaignRunner};
use crate::scenario::Scenario;
use crate::world::RunStats;

/// A scenario transform forming one point on the variant axis.
type VariantFn = Box<dyn Fn(Scenario) -> Scenario + Send + Sync>;

/// A multi-seed (and optionally multi-variant) campaign sweep.
///
/// Built fluently from a base [`Scenario`]; [`Sweep::run`] executes the
/// full seed × variant grid and returns a [`SweepOutcome`].
pub struct Sweep {
    base: Scenario,
    seeds: Vec<u64>,
    threads: usize,
    variants: Vec<(String, VariantFn)>,
    reuse_workers: bool,
}

impl Sweep {
    /// Starts a sweep over `base`. With no further configuration the
    /// sweep runs the base scenario's own seed once.
    pub fn new(base: Scenario) -> Self {
        Sweep {
            base,
            seeds: Vec::new(),
            threads: 0,
            variants: Vec::new(),
            reuse_workers: true,
        }
    }

    /// Controls per-worker world reuse (default `true`). With `false`
    /// every job constructs its world from scratch, exactly like calling
    /// [`run_campaign`] in a loop. Results are bit-identical either way;
    /// disabling reuse only costs wall-clock time (the bench suite uses
    /// this to quantify the difference).
    pub fn reuse_workers(mut self, reuse: bool) -> Self {
        self.reuse_workers = reuse;
        self
    }

    /// Sets the seed axis explicitly.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the seed axis to `first, first+1, ..., first+count-1`.
    pub fn seed_range(self, first: u64, count: usize) -> Self {
        self.seeds((0..count as u64).map(|i| first + i))
    }

    /// Caps the worker threads. `0` (the default) means one worker per
    /// available CPU; the effective count never exceeds the job count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Adds a point on the variant axis: `transform` is applied to a
    /// clone of the base scenario (before seeding), and every seed runs
    /// once per variant. With no variants the base scenario itself is the
    /// single (unlabelled) variant.
    pub fn variant<F>(mut self, label: impl Into<String>, transform: F) -> Self
    where
        F: Fn(Scenario) -> Scenario + Send + Sync + 'static,
    {
        self.variants.push((label.into(), Box::new(transform)));
        self
    }

    /// The number of campaigns [`Sweep::run`] will execute.
    pub fn job_count(&self) -> usize {
        self.seeds.len().max(1) * self.variants.len().max(1)
    }

    /// Runs the whole grid and collects the outcomes.
    ///
    /// Jobs are distributed over the workers by an atomic counter, but
    /// results are returned in grid order (variant-major, then seed), so
    /// the output is independent of scheduling. Panics if a worker
    /// panics.
    pub fn run(&self) -> SweepOutcome {
        let seeds: &[u64] = if self.seeds.is_empty() {
            std::slice::from_ref(&self.base.seed)
        } else {
            &self.seeds
        };
        // Materialize the grid up front: (variant label, seeded scenario).
        let mut jobs: Vec<(Option<String>, Scenario)> = Vec::with_capacity(self.job_count());
        if self.variants.is_empty() {
            for &seed in seeds {
                let mut s = self.base.clone();
                s.seed = seed;
                jobs.push((None, s));
            }
        } else {
            for (label, transform) in &self.variants {
                let varied = transform(self.base.clone());
                for &seed in seeds {
                    let mut s = varied.clone();
                    s.seed = seed;
                    jobs.push((Some(label.clone()), s));
                }
            }
        }

        let threads = self.effective_threads(jobs.len());
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<SweepRun>> = (0..jobs.len()).map(|_| None).collect();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        // One reusable world+engine per worker thread: the
                        // whole job stream runs on a single allocation
                        // footprint. Outcomes are bit-identical to fresh
                        // construction (the CampaignRunner contract).
                        let mut runner = self.reuse_workers.then(CampaignRunner::new);
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some((variant, scenario)) = jobs.get(i) else {
                                break;
                            };
                            let outcome = match runner.as_mut() {
                                Some(r) => r.run(scenario),
                                None => run_campaign(scenario),
                            };
                            mine.push((
                                i,
                                SweepRun {
                                    seed: scenario.seed,
                                    variant: variant.clone(),
                                    outcome,
                                },
                            ));
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                for (i, run) in handle.join().expect("sweep worker panicked") {
                    results[i] = Some(run);
                }
            }
        });

        let runs: Vec<SweepRun> = results
            .into_iter()
            .map(|r| r.expect("every job produced a result"))
            .collect();
        let mut totals = RunStats::default();
        let mut events = 0;
        for run in &runs {
            totals.merge(&run.outcome.stats);
            events += run.outcome.events;
        }
        SweepOutcome {
            runs,
            totals,
            events,
            threads_used: threads,
        }
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let auto = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let cap = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        cap.clamp(1, jobs.max(1))
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("seeds", &self.seeds)
            .field("threads", &self.threads)
            .field(
                "variants",
                &self.variants.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// One completed campaign of a sweep.
#[derive(Debug)]
pub struct SweepRun {
    /// The seed this campaign ran with.
    pub seed: u64,
    /// The variant label, when a variant axis was configured.
    pub variant: Option<String>,
    /// The full campaign result, identical to a sequential
    /// [`run_campaign`] of the same scenario.
    pub outcome: CampaignOutcome,
}

/// Everything a [`Sweep`] produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-campaign results in grid order (variant-major, then seed).
    pub runs: Vec<SweepRun>,
    /// Field-wise sum of every campaign's [`RunStats`].
    pub totals: RunStats,
    /// Total events processed across all campaigns.
    pub events: u64,
    /// Worker threads actually used.
    pub threads_used: usize,
}

impl SweepOutcome {
    /// Per-run `(seed, canonical head)` pairs, in grid order.
    pub fn heads(&self) -> Vec<(u64, BlockHash)> {
        self.runs
            .iter()
            .map(|r| (r.seed, r.outcome.campaign.truth.tree.head()))
            .collect()
    }

    /// The number of distinct canonical heads across all runs.
    pub fn distinct_heads(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.outcome.campaign.truth.tree.head())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    fn base() -> Scenario {
        Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(2))
            .build()
    }

    #[test]
    fn sweep_defaults_to_base_seed() {
        let scenario = base();
        let seed = scenario.seed;
        let sweep = Sweep::new(scenario).threads(1).run();
        assert_eq!(sweep.runs.len(), 1);
        assert_eq!(sweep.runs[0].seed, seed);
        assert_eq!(sweep.threads_used, 1);
    }

    #[test]
    fn grid_order_and_totals() {
        let sweep = Sweep::new(base()).seeds([5, 6, 7]).threads(2).run();
        assert_eq!(
            sweep.runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        let mut expected = RunStats::default();
        let mut events = 0;
        for run in &sweep.runs {
            expected.merge(&run.outcome.stats);
            events += run.outcome.events;
        }
        assert_eq!(sweep.totals, expected);
        assert_eq!(sweep.events, events);
        assert!(sweep.totals.blocks_produced > 0);
    }

    #[test]
    fn variants_multiply_the_grid() {
        let sweep = Sweep::new(base())
            .seeds([1, 2])
            .threads(2)
            .variant("fast-blocks", |s| Scenario {
                interblock: SimDuration::from_secs(8),
                ..s
            })
            .variant("slow-blocks", |s| Scenario {
                interblock: SimDuration::from_secs(20),
                ..s
            })
            .run();
        assert_eq!(sweep.runs.len(), 4);
        let labels: Vec<_> = sweep.runs.iter().map(|r| r.variant.as_deref()).collect();
        assert_eq!(
            labels,
            vec![
                Some("fast-blocks"),
                Some("fast-blocks"),
                Some("slow-blocks"),
                Some("slow-blocks")
            ]
        );
        // More frequent blocks ⇒ higher head for the same seed/duration.
        let head_number = |i: usize| sweep.runs[i].outcome.campaign.truth.tree.head_number();
        assert!(head_number(0) > head_number(2));
    }

    #[test]
    fn thread_cap_never_exceeds_jobs() {
        let sweep = Sweep::new(base()).seeds([9]).threads(16).run();
        assert_eq!(sweep.threads_used, 1);
    }
}
