//! Consensus-engine integration properties.
//!
//! Two layers of assurance for the pluggable fork choice:
//!
//! 1. **Golden byte-identity** — a campaign that *explicitly* selects the
//!    default heaviest-chain engine (sequential and sharded) lands on the
//!    exact fingerprints pinned before the `Consensus` trait existed, so
//!    the extraction is proven behavior-preserving, not merely plausible.
//! 2. **Engine laws** — property tests over random block DAGs: every
//!    engine's head is an attached block, the hash-ordered engines
//!    (longest-chain, uncle-weighted GHOST) pick the global
//!    `(score, hash)` argmax and are therefore insertion-order
//!    independent, and longest-chain head height never decreases.

use ethmeter::chain::block::{Block, BlockBuilder};
use ethmeter::chain::tree::BlockTree;
use ethmeter::prelude::*;
use ethmeter::types::{BlockHash, PoolId};
use proptest::prelude::*;

mod common;
use common::GOLDENS;

fn golden_scenario(preset: Preset, seed: u64, mins: u64, shards: usize) -> Scenario {
    Scenario::builder()
        .preset(preset)
        .seed(seed)
        .duration(SimDuration::from_mins(mins))
        .shards(shards)
        .consensus(ConsensusKind::Heaviest)
        .build()
}

#[test]
fn explicit_heaviest_engine_matches_the_pinned_goldens() {
    for &(label, preset, seed, mins, expected) in &GOLDENS {
        let got = run_campaign(&golden_scenario(preset, seed, mins, 1))
            .campaign
            .fingerprint();
        assert_eq!(
            got, expected,
            "{label}: explicit ConsensusKind::Heaviest diverged from the pinned digest \
             ({got:#018x} vs {expected:#018x})"
        );
    }
}

#[test]
fn sharded_heaviest_engine_matches_the_pinned_goldens() {
    for &(label, preset, seed, mins, expected) in &GOLDENS {
        for shards in [2, 4, 8] {
            let got = run_campaign(&golden_scenario(preset, seed, mins, shards))
                .campaign
                .fingerprint();
            assert_eq!(
                got, expected,
                "{label} at {shards} shards: explicit heaviest engine diverged \
                 ({got:#018x} vs {expected:#018x})"
            );
        }
    }
}

/// A random DAG-growing plan: each step forks off some earlier block and
/// may reference up to two earlier blocks as uncles (uncle references are
/// unvalidated bookkeeping in the tree, but they feed the GHOST score).
fn arb_growth_plan() -> impl Strategy<Value = Vec<(usize, u16, usize, usize)>> {
    proptest::collection::vec((0usize..1000, 0u16..4, 0usize..1000, 0usize..3), 1..50)
}

fn build_blocks(plan: &[(usize, u16, usize, usize)]) -> Vec<Block> {
    let tree = BlockTree::new();
    let mut hashes: Vec<(BlockHash, u64)> = vec![(tree.genesis_hash(), 0)];
    let mut blocks = Vec::new();
    for (i, &(sel, miner, usel, uncles)) in plan.iter().enumerate() {
        let (parent, pnum) = hashes[sel % hashes.len()];
        let mut refs: Vec<BlockHash> = Vec::new();
        for k in 0..uncles {
            // Skip genesis (index 0): it can never be an uncle.
            if hashes.len() > 1 {
                let (h, _) = hashes[1 + (usel + k) % (hashes.len() - 1)];
                if h != parent && !refs.contains(&h) {
                    refs.push(h);
                }
            }
        }
        let block = BlockBuilder::new(parent, pnum + 1, PoolId(miner))
            .uncles(refs)
            .salt(i as u64)
            .build();
        hashes.push((block.hash(), block.number()));
        blocks.push(block);
    }
    blocks
}

/// The non-default engines under test: both order their fork choice by
/// the full `(score, hash)` key, so their head is a pure function of the
/// block *set*.
const HASH_ORDERED: [ConsensusKind; 2] = [ConsensusKind::Longest, ConsensusKind::UncleGhost];

proptest! {
    /// Every engine's head is an attached block whose recorded height
    /// matches the block it names, and the hash-ordered engines pick the
    /// global `(score, hash)` argmax over all attached blocks.
    #[test]
    fn heads_are_attached_argmax_blocks(plan in arb_growth_plan()) {
        let blocks = build_blocks(&plan);
        for kind in ConsensusKind::ALL {
            let mut tree = BlockTree::with_consensus(kind.build());
            for b in &blocks {
                let _ = tree.insert(b.clone());
            }
            let head = tree.head();
            prop_assert!(tree.contains(head), "{kind}: head not attached");
            let head_block = tree.get(head).expect("attached");
            prop_assert_eq!(tree.head_number(), head_block.number());
            let head_score = tree.score(head).expect("scored");
            if HASH_ORDERED.contains(&kind) {
                for b in tree.all_blocks() {
                    let s = tree.score(b.hash()).expect("scored");
                    prop_assert!(
                        (s, b.hash()) <= (head_score, head),
                        "{} beats the {} head", b.hash(), kind
                    );
                }
            } else {
                // Heaviest keeps the first-seen block on ties: the head
                // score is still maximal, only the hash may differ.
                for b in tree.all_blocks() {
                    prop_assert!(tree.score(b.hash()).expect("scored") <= head_score);
                }
            }
        }
    }

    /// Hash-ordered engines are insertion-order independent: any arrival
    /// permutation (orphan buffering included) converges to the same
    /// head — the property that makes the sharded merge well-defined.
    #[test]
    fn hash_ordered_heads_ignore_arrival_order(
        plan in arb_growth_plan(),
        shuffle_seed in 0u64..1000,
    ) {
        let blocks = build_blocks(&plan);
        for kind in HASH_ORDERED {
            let mut in_order = BlockTree::with_consensus(kind.build());
            for b in &blocks {
                let _ = in_order.insert(b.clone());
            }
            let mut rng = ethmeter::sim::Xoshiro256::seed_from_u64(shuffle_seed);
            let mut shuffled = blocks.clone();
            rng.shuffle(&mut shuffled);
            let mut out_of_order = BlockTree::with_consensus(kind.build());
            for b in &shuffled {
                let _ = out_of_order.insert(b.clone());
            }
            prop_assert_eq!(out_of_order.len(), in_order.len(), "{} lost blocks", kind);
            prop_assert_eq!(
                out_of_order.head(),
                in_order.head(),
                "{} head depends on arrival order", kind
            );
            prop_assert_eq!(out_of_order.safe(), in_order.safe());
            prop_assert_eq!(out_of_order.finalized(), in_order.finalized());
        }
    }

    /// Longest-chain scores by height, so its head height never
    /// decreases as blocks arrive in causal order.
    #[test]
    fn longest_chain_height_is_monotone(plan in arb_growth_plan()) {
        let blocks = build_blocks(&plan);
        let mut tree = BlockTree::with_consensus(ConsensusKind::Longest.build());
        let mut last = 0;
        for b in &blocks {
            let _ = tree.insert(b.clone());
            prop_assert!(
                tree.head_number() >= last,
                "height regressed {} -> {}", last, tree.head_number()
            );
            last = tree.head_number();
        }
    }
}
