//! Grid report: a seeds × tx-rate × gateway-placement campaign grid,
//! streamed through scalar collectors into one aggregated results table.
//!
//! Every run is reduced to four scalars the moment it completes — the
//! full campaign datasets (observer logs + block trees) are dropped, so
//! the grid's memory footprint stays ~flat no matter how many runs it
//! has. The finished [`GridReport`] prints as a paper-style table and
//! exports as CSV/JSON.
//!
//! The `gateways` axis reproduces the paper's core geographic argument in
//! miniature: with the calibrated (mostly Asian) gateway placement the EA
//! vantage wins most first observations; centralizing every pool's
//! gateways in Western Europe hands those wins to the WE vantage.
//!
//! ```sh
//! cargo run --release --example grid_report
//! ```

use ethmeter::analysis::{first_observation, propagation};
use ethmeter::prelude::*;
use ethmeter::types::PoolId;

/// Moves every pool's gateways into one region.
fn centralize_gateways(s: &mut Scenario, region: Region) {
    let mut pools = s.pools.clone();
    for i in 0..pools.len() {
        pools.pool_mut(PoolId(i as u16)).gateway_regions = vec![(region, 1.0)];
    }
    s.pools = pools;
}

/// Share of first-block observations won by one vantage in this run.
fn first_obs_share(data: &CampaignData, vantage: &str) -> f64 {
    first_observation::geo(data)
        .per_vantage
        .iter()
        .find(|(name, ..)| name == vantage)
        .map_or(0.0, |&(_, share, _)| share)
}

fn main() {
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .duration(SimDuration::from_mins(4))
        .build();

    let placements: Vec<(String, AxisSetter)> = vec![
        ("paper".to_owned(), Box::new(|_: &mut Scenario| {})),
        (
            "eu-centralized".to_owned(),
            Box::new(|s: &mut Scenario| centralize_gateways(s, Region::WesternEurope)),
        ),
    ];
    let grid = Grid::new(base)
        .seed_range(100, 4)
        .axis("tx_rate", [0.5, 1.0], |s, &rate| s.set_tx_rate(rate))
        .axis_with("gateways", placements);

    println!(
        "running a {}-campaign grid ({} points x 4 seeds) ...\n",
        grid.job_count(),
        grid.point_count()
    );

    let out = grid.run(
        Scalars::new()
            .column("head", |_, o| o.campaign.truth.tree.head_number() as f64)
            .column("prop_median_ms", |_, o| {
                let r = propagation::analyze(&o.campaign);
                if r.delays.is_empty() {
                    0.0
                } else {
                    r.delays.median()
                }
            })
            .column("ea_first_share", |_, o| first_obs_share(&o.campaign, "EA"))
            .column("we_first_share", |_, o| first_obs_share(&o.campaign, "WE")),
    );
    let report = out.output;

    println!(
        "{} campaigns on {} threads, {} events total\n",
        out.jobs, out.threads_used, out.events
    );
    println!("cross-seed table (mean ± sd over 4 seeds per row):\n{report}\n");
    println!("--- CSV ---\n{}", report.to_csv());
    println!("--- JSON ---\n{}", report.to_json());

    // The geographic claim, straight from the aggregated rows: moving
    // every gateway to Western Europe flips the first-observation winner.
    let share = |gateways: &str, col: &str| {
        let ci = report
            .columns
            .iter()
            .position(|c| c == col)
            .expect("column");
        report
            .rows
            .iter()
            .filter(|r| r.point.get("gateways") == Some(gateways))
            .map(|r| r.cells[ci].mean)
            .sum::<f64>()
            / 2.0 // two tx-rate points per placement
    };
    println!(
        "EA first-observation share: paper placement {:.0}%, EU-centralized {:.0}%",
        share("paper", "ea_first_share") * 100.0,
        share("eu-centralized", "ea_first_share") * 100.0,
    );
    println!(
        "WE first-observation share: paper placement {:.0}%, EU-centralized {:.0}%",
        share("paper", "we_first_share") * 100.0,
        share("eu-centralized", "we_first_share") * 100.0,
    );
    assert!(
        share("eu-centralized", "we_first_share") > share("paper", "we_first_share"),
        "centralizing gateways in the EU must boost the WE vantage"
    );
}
