//! Adversarial mining pools: the paper's observed selfish behaviors
//! (§III-C3/C5, §V) and the stateful withholding attacks the same pool
//! concentration enables (selfish mining, Niu & Feng 2019).
//!
//! ```sh
//! cargo run --release --example selfish_pools
//! ```

use ethmeter::analysis::{empty_blocks, forks, rewards};
use ethmeter::chain::rewards::{uncle_reward, BLOCK_REWARD};
use ethmeter::experiments;
use ethmeter::mining::{PoolDirectory, SelfishConfig};
use ethmeter::prelude::*;

fn main() {
    let scenario = Scenario::builder()
        .preset(Preset::Small)
        .seed(99)
        .duration(SimDuration::from_hours(2))
        .build();
    let outcome = run_campaign(&scenario);
    let data = &outcome.campaign;

    // Figure 6: which pools mine empty blocks.
    println!("{}\n", empty_blocks::analyze(data, 15));

    // §III-C5: one-miner forks and Table III.
    println!("{}\n", forks::analyze(data));

    // Why duplicates pay: a gap-1 uncle earns 7/8 of a block reward.
    println!(
        "economics: base reward {} mETH; a gap-1 uncle pays {} mETH — {}% of a block\n",
        BLOCK_REWARD,
        uncle_reward(10, 9),
        100 * uncle_reward(10, 9) / BLOCK_REWARD
    );

    // Who actually earned what, against their hash power.
    println!("{}\n", rewards::analyze(data));

    // §V mitigation ablation: forbid same-miner same-height uncles and the
    // duplicate-reward channel closes.
    let ablation_scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(99)
        .duration(SimDuration::from_mins(30))
        .build();
    println!(
        "{}\n",
        experiments::ablation_uncle_policy(&ablation_scenario)
    );

    // Stateful withholding, full network: an attacker pool running the
    // selfish-mining machine against honest pools. γ emerges from the
    // attacker's gateway placement — watch the relative revenue move
    // with hash share (alpha) and connectivity (gateways).
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(30))
        .pools(PoolDirectory::attacker_vs_honest(
            0.3,
            2,
            SelfishConfig::classic(),
        ))
        .build();
    let grid = experiments::selfish_sim_grid(&base, &[0.25, 0.40], &[1, 6], 1, 2, 0);
    println!("full-sim attacker grid (alpha × gateways, seeds averaged):");
    println!("{grid}\n");

    // The profitability-threshold curve itself, at chain-only scale:
    // tens of thousands of blocks per (alpha, gamma) cell.
    let report = experiments::selfish_threshold(
        &[0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45],
        &[0.0, 0.5, 1.0],
        1,
        3,
        40_000,
    );
    println!("{report}");
}
