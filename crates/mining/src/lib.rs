//! Mining-pool substrate: the pool directory, hash-power races, and the
//! selfish strategies the paper documents.
//!
//! The paper treats mining pools as "first-class components in today's
//! blockchain landscape" — this crate models them directly:
//!
//! - [`pool`]: per-pool configuration (hash-power share, geo-located
//!   gateway placement, strategy) and the [`pool::PoolDirectory`] with the
//!   April-2019 calibration from Figure 3;
//! - [`strategy`]: the selfish-behavior knobs — empty-block mining
//!   (Figure 6), one-miner duplicate blocks (§III-C5), pool-malfunction
//!   multi-tuples, and the uncle-reference policy;
//! - [`behavior`]: *stateful* adversarial behaviors — the uncle-aware
//!   selfish-mining state machine (Niu & Feng 2019) with its lead-`k`
//!   stubborn variants, as a pure decision core drivers feed with solve
//!   and head-change events;
//! - [`miner`]: the PoW race as exponential next-block draws plus the
//!   [`miner::BlockPlan`] decision procedure applied when a pool wins a
//!   block.
//!
//! The discrete-event driver (`ethmeter-core`) owns the actual event loop;
//! everything here is pure decision logic, independently testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod miner;
pub mod pool;
pub mod strategy;

pub use behavior::{PoolBehavior, SelfishConfig, SelfishOutcome, SelfishState};
pub use miner::{next_block_delay, BlockPlan};
pub use pool::{PoolConfig, PoolDirectory};
pub use strategy::Strategy;
