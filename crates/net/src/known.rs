//! Bounded "known items" sets.
//!
//! Geth tracks, per peer, which block/transaction hashes that peer is known
//! to have (`knownBlocks`, `knownTxs`), bounded to avoid unbounded memory.
//! The bound matters behaviorally: once evicted, an item may be re-sent,
//! which is one source of the redundant receptions measured in Table II.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// A FIFO-bounded set: inserting beyond capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct KnownSet<T> {
    set: HashSet<T>,
    order: VecDeque<T>,
    cap: usize,
}

impl<T: Copy + Eq + Hash> KnownSet<T> {
    /// Creates a set bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "known-set capacity must be positive");
        // Storage grows on demand: a simulation holds one known-set per
        // (node, peer) pair, so eager preallocation would dominate memory.
        KnownSet {
            set: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// True if `item` is currently tracked.
    pub fn contains(&self, item: T) -> bool {
        self.set.contains(&item)
    }

    /// Inserts `item`; returns `true` if it was new. Evicts the oldest
    /// entry when full.
    pub fn insert(&mut self, item: T) -> bool {
        if !self.set.insert(item) {
            return false;
        }
        self.order.push_back(item);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Current number of tracked items.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = KnownSet::with_capacity(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut s = KnownSet::with_capacity(3);
        for i in 0..3 {
            s.insert(i);
        }
        assert_eq!(s.len(), 3);
        s.insert(3); // evicts 0
        assert_eq!(s.len(), 3);
        assert!(!s.contains(0));
        assert!(s.contains(1) && s.contains(2) && s.contains(3));
        // Re-inserting the evicted item works (and evicts 1).
        assert!(s.insert(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn duplicate_insert_does_not_evict() {
        let mut s = KnownSet::with_capacity(2);
        s.insert(1);
        s.insert(2);
        s.insert(2); // no-op
        assert!(s.contains(1), "duplicate insert must not evict");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: KnownSet<u32> = KnownSet::with_capacity(0);
    }
}
