// Fixture: a violation suppressed by a justified pragma, in both
// placements (line above, and trailing on the same line).
use std::collections::HashMap;

fn above() {
    // detlint::allow(default-hasher, reason = "fixture: demonstrates the line-above placement (with parens) and commas")
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}

fn trailing() {
    let m: HashMap<u32, u32> = HashMap::new(); // detlint::allow(default-hasher, reason = "fixture: trailing placement")
    let _ = m;
}
