//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--preset tiny|small|medium|paper] [--seed N]
//!
//! EXPERIMENT:
//!   all        every experiment (default)
//!   table1     measurement infrastructure
//!   fig1       block propagation delay PDF
//!   table2     redundant block receptions
//!   fig2       first observations per vantage
//!   fig3       first observations per origin pool
//!   fig4       inclusion + confirmation CDFs
//!   fig5       in-order vs out-of-order commit delay
//!   fig6       empty blocks per pool
//!   table3     fork census + one-miner forks
//!   fig7       consecutive-block sequences (campaign + 201k-block month)
//!   security   §III-D whole-chain sequence scan (7.7M blocks)
//!   ablation   §V uncle-policy ablation
//! ```

use std::process::ExitCode;

use ethmeter_bench::repro_scenario;
use ethmeter_core::experiments::{self, Suite};
use ethmeter_core::{run_campaign, Preset, Scenario};
use ethmeter_measure::CampaignData;

struct Args {
    experiment: String,
    preset: Preset,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = "all".to_owned();
    let mut preset = Preset::Small;
    let mut seed = 42u64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--preset" => {
                let v = argv.next().ok_or("--preset needs a value")?;
                preset = match v.as_str() {
                    "tiny" => Preset::Tiny,
                    "small" => Preset::Small,
                    "medium" => Preset::Medium,
                    "paper" => Preset::PaperScaled,
                    other => return Err(format!("unknown preset '{other}'")),
                };
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => experiment = other.to_owned(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Args {
        experiment,
        preset,
        seed,
    })
}

fn run_suite(scenario: &Scenario) -> (CampaignData, Suite) {
    eprintln!(
        "running campaign: {} ordinary nodes, {} simulated, seed {} ...",
        scenario.ordinary_nodes, scenario.duration, scenario.seed
    );
    let outcome = run_campaign(scenario);
    eprintln!(
        "done: {} events, {} messages, {} blocks, {} txs",
        outcome.events,
        outcome.stats.messages,
        outcome.campaign.truth.tree.head_number(),
        outcome.stats.txs_submitted
    );
    let suite = Suite::from_campaign(&outcome.campaign);
    (outcome.campaign, suite)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: repro [EXPERIMENT] [--preset tiny|small|medium|paper] [--seed N]");
            return ExitCode::FAILURE;
        }
    };
    let scenario = repro_scenario(args.preset, args.seed);
    let needs_campaign = matches!(
        args.experiment.as_str(),
        "all"
            | "table1"
            | "fig1"
            | "table2"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "table3"
            | "fig7"
    );
    let campaign_and_suite = needs_campaign.then(|| run_suite(&scenario));

    let print_for = |name: &str, campaign: &CampaignData, suite: &Suite| match name {
        "table1" => println!("{}\n", experiments::table1(campaign)),
        "fig1" => println!("{}\n", suite.fig1),
        "table2" => match &suite.table2 {
            Ok(r) => println!("{r}\n"),
            Err(e) => println!("Table II unavailable: {e}\n"),
        },
        "fig2" => println!("{}\n", suite.fig2),
        "fig3" => println!("{}\n", suite.fig3),
        "fig4" => println!("{}\n", suite.fig4),
        "fig5" => println!("{}\n", suite.fig5),
        "fig6" => println!("{}\n", suite.fig6),
        "table3" => println!("{}\n", suite.table3),
        "fig7" => {
            println!("campaign-scale sequences:\n{}\n", suite.fig7);
            println!(
                "paper-scale month (201,086 blocks):\n{}\n",
                experiments::fig7_month(args.seed)
            );
        }
        _ => {}
    };

    match args.experiment.as_str() {
        "all" => {
            let (campaign, suite) = campaign_and_suite.as_ref().expect("campaign ran");
            for name in [
                "table1", "fig1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "table3",
                "fig7",
            ] {
                print_for(name, campaign, suite);
            }
            println!("{}\n", experiments::security_whole_chain(args.seed));
            println!(
                "{}",
                experiments::ablation_uncle_policy(&ethmeter_bench::bench_scenario(args.seed))
            );
        }
        "security" => println!("{}", experiments::security_whole_chain(args.seed)),
        "ablation" => println!(
            "{}",
            experiments::ablation_uncle_policy(&ethmeter_bench::bench_scenario(args.seed))
        ),
        name if campaign_and_suite.is_some() => {
            let (campaign, suite) = campaign_and_suite.as_ref().expect("campaign ran");
            print_for(name, campaign, suite);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
