//! Figure 1: block propagation delay.
//!
//! The paper adapts Decker & Wattenhofer's method: "the propagation delay
//! of a block [is] the time difference between the first observation of
//! that block at any instance of a measurement node and the times of
//! arrival on the remaining measurement nodes" (§II). Delays are computed
//! from *local* (NTP-skewed) timestamps, exactly as in the real
//! experiment; the minuend is the minimum across observers, so all deltas
//! are non-negative by construction.

use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::{Histogram, QuantileSketch, Summary};

use crate::Reduce;

/// Figure 1's data: the distribution of cross-observer arrival spreads.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationReport {
    /// Per-(block, trailing-observer) delays, milliseconds.
    pub delays: Summary,
    /// The PDF histogram of Figure 1 (0–500 ms, 25 bins).
    pub histogram: Histogram,
    /// The same delay sample as a fixed-size mergeable sketch — the
    /// planet-scale collector: bit-identical at any shard/merge-tree
    /// shape, quantiles within
    /// [`ethmeter_stats::sketch::RELATIVE_ERROR`] of
    /// [`PropagationReport::delays`].
    pub sketch: QuantileSketch,
    /// Blocks observed by at least two observers.
    pub blocks_measured: u64,
}

impl PropagationReport {
    /// A report over zero campaigns (the [`Propagation`] starting state).
    pub fn empty() -> Self {
        PropagationReport {
            delays: Summary::from_values(std::iter::empty()),
            histogram: Histogram::new(0.0, 500.0, 25),
            sketch: QuantileSketch::new(),
            blocks_measured: 0,
        }
    }

    /// Folds another campaign's (or partial sweep's) report into this
    /// one. Exact: equals one report over the union of both delay
    /// samples, independent of merge grouping.
    pub fn merge(&mut self, other: &PropagationReport) {
        self.delays.merge(&other.delays);
        self.histogram.merge(&other.histogram);
        self.sketch.merge(&other.sketch);
        self.blocks_measured += other.blocks_measured;
    }
}

/// Streaming Figure 1 across many campaigns: one [`PropagationReport`]
/// accumulated run by run.
#[derive(Debug, Clone)]
pub struct Propagation {
    report: PropagationReport,
}

impl Propagation {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Propagation {
            report: PropagationReport::empty(),
        }
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Self::new()
    }
}

impl Reduce for Propagation {
    type Report = PropagationReport;

    fn observe(&mut self, data: &CampaignData) {
        self.report.merge(&analyze(data));
    }

    fn merge(&mut self, other: Self) {
        self.report.merge(&other.report);
    }

    fn finish(self) -> PropagationReport {
        self.report
    }
}

/// Computes Figure 1 from the campaign's main observers.
///
/// Consumes the logs through [`CampaignData::for_each_main_block`], so
/// spilled and in-memory campaigns produce bit-identical reports (the
/// delay multiset is the same; [`Summary`] sorts, the histogram and
/// sketch count).
pub fn analyze(data: &CampaignData) -> PropagationReport {
    let mut delays_ms: Vec<f64> = Vec::new();
    let mut blocks_measured = 0u64;
    let genesis = data.truth.tree.genesis_hash();
    let mut arrivals: Vec<f64> = Vec::new();
    data.for_each_main_block(|hash, group| {
        if hash == genesis || group.len() < 2 {
            return;
        }
        blocks_measured += 1;
        arrivals.clear();
        arrivals.extend(
            group
                .iter()
                .map(|(_, r)| r.first_local.as_nanos() as f64 / 1e6),
        );
        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let first = arrivals[0];
        for &t in &arrivals[1..] {
            delays_ms.push(t - first);
        }
    });
    let mut histogram = Histogram::new(0.0, 500.0, 25);
    histogram.record_all(delays_ms.iter().copied());
    let mut sketch = QuantileSketch::new();
    sketch.record_all(delays_ms.iter().copied());
    PropagationReport {
        delays: Summary::from_values(delays_ms),
        histogram,
        sketch,
        blocks_measured,
    }
}

impl fmt::Display for PropagationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1 — block propagation delay (ms)")?;
        writeln!(
            f,
            "blocks measured: {}   samples: {}",
            self.blocks_measured,
            self.delays.count()
        )?;
        if !self.delays.is_empty() {
            writeln!(
                f,
                "median {:.0}ms  mean {:.0}ms  p95 {:.0}ms  p99 {:.0}ms   (paper: 74 / 109 / 211 / 317)",
                self.delays.median(),
                self.delays.mean(),
                self.delays.quantile(0.95),
                self.delays.quantile(0.99),
            )?;
        }
        write!(f, "{}", self.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_types::SimDuration;

    #[test]
    fn delays_are_cross_observer_spreads() {
        // testutil places block arrivals at known offsets: the EA observer
        // sees each block first, NA +100ms, WE +40ms, CE +60ms.
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let report = analyze(&data);
        assert_eq!(report.blocks_measured, testutil::BLOCKS as u64);
        // Three trailing observers per block.
        assert_eq!(report.delays.count(), 3 * testutil::BLOCKS);
        // Median of {100, 40, 60} per block = 60.
        assert!((report.delays.median() - 60.0).abs() < 1e-9);
        assert!((report.delays.max() - 100.0).abs() < 1e-9);
        assert!((report.delays.min() - 40.0).abs() < 1e-9);
        // The sketch tracks the same sample within its documented bound.
        assert_eq!(report.sketch.count(), report.delays.count() as u64);
        let est = report.sketch.quantile(0.5);
        assert!(
            (60.0..=60.0 * ethmeter_stats::sketch::GAMMA).contains(&est),
            "sketch median {est}"
        );
    }

    #[test]
    fn single_observer_blocks_are_skipped() {
        let mut data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        // Wipe three of the four observers' logs.
        for i in 1..4 {
            data.observers[i].1 = ethmeter_measure::ObserverLog::new();
        }
        let report = analyze(&data);
        assert_eq!(report.blocks_measured, 0);
        assert!(report.delays.is_empty());
    }

    #[test]
    fn histogram_mass_in_range() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let report = analyze(&data);
        let mass: f64 = (0..report.histogram.bins())
            .map(|i| report.histogram.pdf(i))
            .sum();
        assert!((mass - 1.0).abs() < 1e-9, "all spreads under 500ms");
        assert!(report.to_string().contains("Figure 1"));
    }

    #[test]
    fn streamed_reduction_equals_oneshot_analysis() {
        let a = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let b = testutil::campaign_with_block_spread(&[0, 20, 80, 10]);
        // observe(a); observe(b) == merge of two single-run accumulators
        // == analyze(a) + analyze(b), field for field.
        let mut streamed = Propagation::new();
        streamed.observe(&a);
        streamed.observe(&b);
        let mut left = Propagation::new();
        left.observe(&a);
        let mut right = Propagation::new();
        right.observe(&b);
        left.merge(right);
        let mut expected = analyze(&a);
        expected.merge(&analyze(&b));
        assert_eq!(streamed.finish(), expected);
        assert_eq!(left.finish(), expected);
        // One observed campaign reproduces the classic report exactly.
        let mut single = Propagation::new();
        single.observe(&a);
        assert_eq!(single.finish(), analyze(&a));
    }

    #[test]
    fn clock_skew_does_not_produce_negative_delays() {
        // Even with adversarial skews the min-based definition keeps all
        // deltas non-negative.
        let data = testutil::campaign_with_block_spread_and_skew(
            &[0, 100, 40, 60],
            &[50_000_000, -50_000_000, 0, 10_000_000],
        );
        let report = analyze(&data);
        assert!(report.delays.min() >= 0.0);
        let _ = SimDuration::ZERO;
    }
}
