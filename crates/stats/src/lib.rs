//! Statistics toolkit for the measurement pipeline.
//!
//! The paper's processing stage (pandas/NumPy in the original) reduces raw
//! logs to summary statistics, histograms (Figure 1), empirical CDFs
//! (Figures 4, 5, 7), and run-length/censorship analysis (§III-D). This
//! crate implements those reductions:
//!
//! - [`summary::Summary`]: count/mean/std/quantiles of a sample;
//! - [`summary::Aggregate`]: cross-run condensation of one scalar
//!   statistic (mean ± stddev plus percentile-of-percentiles spread);
//! - [`histogram::Histogram`]: fixed-width binning with PDF normalization;
//! - [`cdf::Cdf`]: empirical CDF with quantile and fraction-below queries;
//! - [`sketch::QuantileSketch`]: fixed-size log-bucketed quantile sketch
//!   with a deterministic (element-wise-add) merge for out-of-core runs;
//! - [`runs`]: run-length extraction and the exact/approximate theory of
//!   longest same-miner block sequences;
//! - [`table`]: plain-text table rendering for paper-style reports.
//!
//! [`Summary`], [`Histogram`], and [`Cdf`] all support **exact,
//! merge-tree independent `merge`**: folding per-run instances together
//! yields the same object as one pass over all samples, regardless of how
//! the merges are grouped. That property is what lets campaign sweeps
//! stream compact per-run reductions out of parallel workers and still
//! produce bit-identical aggregates at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod histogram;
pub mod runs;
pub mod sketch;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use sketch::QuantileSketch;
pub use summary::{Aggregate, Summary};
pub use table::Table;
