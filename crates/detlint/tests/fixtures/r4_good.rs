//! Fixture: a crate root carrying the full workspace lint header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
