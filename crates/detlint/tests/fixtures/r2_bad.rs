// Fixture: unordered iteration whose result is neither sorted nor folded
// commutatively (order leaks into the output vector).
use ethmeter_types::FxHashMap;

struct Ledger {
    entries: FxHashMap<u32, u64>,
}

impl Ledger {
    fn dump(&self) -> Vec<u64> {
        self.entries.values().copied().collect()
    }
}
