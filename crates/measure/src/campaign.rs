//! The complete dataset of one measurement campaign.

use std::collections::HashMap;

use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::Transaction;
use ethmeter_types::{PoolId, SimDuration, TxId};

use crate::log::ObserverLog;
use crate::vantage::VantagePoint;

/// Simulator-side ground truth. The real experiment approximates these
/// through Etherscan cross-checks; the simulator knows them exactly, which
/// is what lets the test suite verify the analysis pipeline end to end.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Every block produced during the campaign (main chain and forks).
    pub tree: BlockTree,
    /// Every transaction submitted.
    pub txs: HashMap<TxId, Transaction>,
    /// Pool names by id (for report labels).
    pub pool_names: Vec<String>,
    /// Pool hash-power shares by id.
    pub pool_shares: Vec<f64>,
    /// The configured mean inter-block time.
    pub interblock: SimDuration,
    /// Campaign duration.
    pub duration: SimDuration,
}

impl GroundTruth {
    /// The display name of a pool (falls back to the raw id).
    pub fn pool_name(&self, pool: PoolId) -> String {
        self.pool_names
            .get(pool.index())
            .cloned()
            .unwrap_or_else(|| pool.to_string())
    }

    /// The hash-power share of a pool (0 if unknown).
    pub fn pool_share(&self, pool: PoolId) -> f64 {
        self.pool_shares.get(pool.index()).copied().unwrap_or(0.0)
    }
}

/// One campaign's observers plus ground truth — the input to every
/// analyzer in `ethmeter-analysis`.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// Observer logs, in vantage order.
    pub observers: Vec<(VantagePoint, ObserverLog)>,
    /// What actually happened.
    pub truth: GroundTruth,
}

impl CampaignData {
    /// The main (high-degree) observers — the paper's four — excluding the
    /// default-peers redundancy observer.
    pub fn main_observers(&self) -> impl Iterator<Item = &(VantagePoint, ObserverLog)> + '_ {
        self.observers.iter().filter(|(v, _)| !v.default_peers)
    }

    /// The default-peers observer, if the campaign deployed one.
    pub fn redundancy_observer(&self) -> Option<&(VantagePoint, ObserverLog)> {
        self.observers.iter().find(|(v, _)| v.default_peers)
    }

    /// Looks an observer up by name.
    pub fn observer(&self, name: &str) -> Option<&(VantagePoint, ObserverLog)> {
        self.observers.iter().find(|(v, _)| v.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_campaign() -> CampaignData {
        CampaignData {
            observers: VantagePoint::paper_all()
                .into_iter()
                .map(|v| (v, ObserverLog::new()))
                .collect(),
            truth: GroundTruth {
                tree: BlockTree::new(),
                txs: HashMap::new(),
                pool_names: vec!["Ethermine".into()],
                pool_shares: vec![0.2532],
                interblock: SimDuration::from_secs_f64(13.3),
                duration: SimDuration::from_hours(1),
            },
        }
    }

    #[test]
    fn observer_selection() {
        let c = empty_campaign();
        assert_eq!(c.main_observers().count(), 4);
        assert!(c.redundancy_observer().is_some());
        assert!(c.observer("EA").is_some());
        assert!(c.observer("nope").is_none());
    }

    #[test]
    fn pool_label_fallback() {
        let c = empty_campaign();
        assert_eq!(c.truth.pool_name(PoolId(0)), "Ethermine");
        assert_eq!(c.truth.pool_name(PoolId(9)), "pool-9");
        assert_eq!(c.truth.pool_share(PoolId(0)), 0.2532);
        assert_eq!(c.truth.pool_share(PoolId(9)), 0.0);
    }
}
