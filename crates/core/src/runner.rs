//! One-call campaign execution, and the reusable worker runner.

use ethmeter_measure::CampaignData;
use ethmeter_sim::engine::RunOutcome;
use ethmeter_sim::Engine;
use ethmeter_types::SimTime;

use crate::scenario::Scenario;
use crate::world::{RunStats, SimWorld};

/// The result of running a campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The measurement dataset (observer logs + ground truth).
    pub campaign: CampaignData,
    /// Engine/world counters.
    pub stats: RunStats,
    /// Total events processed.
    pub events: u64,
}

/// Runs a scenario to its configured duration and returns the dataset.
///
/// Deterministic: the same scenario and seed produce an identical
/// [`CampaignData`]. Scenarios with `shards > 1` run on the sharded
/// parallel engine ([`crate::par::run_campaign_sharded`]), whose output
/// is bit-identical to the sequential reference at any shard count.
pub fn run_campaign(scenario: &Scenario) -> CampaignOutcome {
    if scenario.shards > 1 {
        return crate::par::run_campaign_sharded(scenario);
    }
    let mut world = SimWorld::new(scenario);
    let initial = world.initial_events();
    let mut engine = Engine::new(world);
    for (t, e) in initial {
        engine.schedule(t, e);
    }
    let (stats, events) = drive(&mut engine, scenario);
    // One-shot path: the world is consumed, so logs and the transaction
    // table move into the dataset instead of being cloned out.
    CampaignOutcome {
        campaign: engine.into_world().into_campaign(scenario.duration),
        stats,
        events,
    }
}

/// A reusable campaign worker: one engine + one world, reset between
/// runs.
///
/// [`run_campaign`] rebuilds the entire world per call — registries, node
/// tables, per-peer known-set probe tables, observer-log maps, the event
/// queue's slab. For a single campaign that is irrelevant; for a sweep
/// worker executing hundreds of jobs it is pure overhead. `CampaignRunner`
/// keeps one [`SimWorld`] and its [`Engine`] alive across a whole job
/// stream, resetting them between runs so every allocation is reused.
///
/// The contract is exact equivalence: `runner.run(s)` returns a
/// [`CampaignOutcome`] bit-identical to `run_campaign(s)` for every
/// scenario, in any order, regardless of what ran before (pinned by the
/// reset proptest below and the sweep equivalence suite).
#[derive(Debug, Default)]
pub struct CampaignRunner {
    engine: Option<Engine<SimWorld>>,
}

impl CampaignRunner {
    /// Creates a runner with no world yet (built lazily on first run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one campaign, reusing the previous run's allocations.
    ///
    /// Scenarios with `shards > 1` are handed to the sharded parallel
    /// engine, which builds per-shard worlds for that run instead of
    /// reusing this runner's (the outputs are still bit-identical).
    pub fn run(&mut self, scenario: &Scenario) -> CampaignOutcome {
        if scenario.shards > 1 {
            return crate::par::run_campaign_sharded(scenario);
        }
        let engine = match self.engine.as_mut() {
            Some(engine) => {
                engine.reset();
                engine.world_mut().reset(scenario);
                engine
            }
            None => {
                self.engine = Some(Engine::new(SimWorld::new(scenario)));
                self.engine.as_mut().expect("just inserted")
            }
        };
        let initial = engine.world_mut().initial_events();
        for (t, e) in initial {
            engine.schedule(t, e);
        }
        let (stats, events) = drive(engine, scenario);
        // Reuse path: the world survives for the next reset, so logs and
        // the transaction table are cloned out.
        CampaignOutcome {
            campaign: engine.world_mut().take_campaign(scenario.duration),
            stats,
            events,
        }
    }
}

/// Drives a primed engine to the scenario horizon (shared by the
/// one-shot and reusable paths); campaign extraction differs per path.
fn drive(engine: &mut Engine<SimWorld>, scenario: &Scenario) -> (RunStats, u64) {
    let outcome = engine.run_until(SimTime::ZERO + scenario.duration);
    debug_assert!(
        outcome == RunOutcome::DeadlineReached || outcome == RunOutcome::QueueExhausted,
        "unexpected engine outcome {outcome:?}"
    );
    (engine.world().stats, engine.processed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    #[test]
    fn tiny_campaign_runs_end_to_end() {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(3)
            .duration(SimDuration::from_mins(4))
            .build();
        let outcome = run_campaign(&scenario);
        assert!(outcome.events > 0);
        assert!(outcome.campaign.truth.tree.head_number() > 5);
        assert_eq!(outcome.campaign.observers.len(), scenario.vantages.len());
        // Ground-truth duration recorded.
        assert_eq!(outcome.campaign.truth.duration, scenario.duration);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(11)
            .duration(SimDuration::from_mins(3))
            .build();
        let a = run_campaign(&scenario);
        let b = run_campaign(&scenario);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.events, b.events);
        assert_eq!(a.campaign.truth.tree.head(), b.campaign.truth.tree.head());
    }

    #[test]
    fn reused_runner_matches_one_shot_execution() {
        let mut runner = CampaignRunner::new();
        for seed in [5, 6, 5] {
            let scenario = Scenario::builder()
                .preset(Preset::Tiny)
                .seed(seed)
                .duration(SimDuration::from_mins(2))
                .build();
            let reused = runner.run(&scenario);
            let fresh = run_campaign(&scenario);
            assert_eq!(reused.stats, fresh.stats, "seed {seed}");
            assert_eq!(reused.events, fresh.events, "seed {seed}");
            assert_eq!(
                reused.campaign.fingerprint(),
                fresh.campaign.fingerprint(),
                "seed {seed}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;
    use proptest::prelude::*;

    proptest! {
        /// A `SimWorld::reset`-reused world must produce a campaign
        /// fingerprint identical to a freshly constructed world, across
        /// random seeds and preset shapes. The runner persists across
        /// cases, so every case also exercises "reset after an arbitrary
        /// previous job" — the sweep worker's exact usage pattern.
        #[test]
        fn reset_reuse_is_fingerprint_identical(
            seed in 0u64..1_000_000,
            shape in 0u8..3,
            mins in 1u64..3,
        ) {
            use std::cell::RefCell;
            thread_local! {
                static RUNNER: RefCell<CampaignRunner> =
                    RefCell::new(CampaignRunner::new());
            }
            let builder = Scenario::builder().seed(seed).duration(SimDuration::from_mins(mins));
            let scenario = match shape {
                0 => builder.preset(Preset::Tiny).build(),
                1 => builder.preset(Preset::Tiny).ordinary_nodes(40).build(),
                _ => builder.preset(Preset::Tiny).tx_rate(1.5).build(),
            };
            let fresh = run_campaign(&scenario);
            let reused = RUNNER.with(|r| r.borrow_mut().run(&scenario));
            prop_assert_eq!(reused.stats, fresh.stats);
            prop_assert_eq!(reused.events, fresh.events);
            prop_assert_eq!(reused.campaign.fingerprint(), fresh.campaign.fingerprint());
        }
    }
}
