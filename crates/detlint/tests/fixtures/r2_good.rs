// Fixture: hash-map iteration that is sorted or folded commutatively.
use ethmeter_types::FxHashMap;

struct Ledger {
    entries: FxHashMap<u32, u64>,
}

impl Ledger {
    fn dump(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.entries.values().copied().collect();
        v.sort_unstable();
        v
    }

    fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    fn any_zero(&self) -> bool {
        self.entries.values().any(|&v| v == 0)
    }
}
