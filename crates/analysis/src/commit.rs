//! Figures 4 and 5: transaction inclusion/commit delays and the effect of
//! out-of-order arrival.
//!
//! Figure 4: "the difference between the time when a transaction was first
//! observed by our measurement nodes to the time at which it was included
//! in a block", plus the extra wait for 3/12/15/36 confirmation blocks.
//! Figure 5: the same commit delay split by whether the transaction
//! arrived in nonce order — out-of-order transactions "must wait for their
//! delayed predecessors before committing".
//!
//! Delays here span tens to hundreds of seconds, so the sub-100ms NTP
//! error is immaterial; we use true timestamps for cross-observer minima
//! and each observer's own log for the per-observer ordering split.

use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::pct;
use ethmeter_stats::{Cdf, QuantileSketch};
use ethmeter_types::{AccountId, BlockNumber, FxHashMap, FxHashSet, SimTime, TxId};

use crate::Reduce;

/// The confirmation depths Figure 4 plots.
pub const CONFIRMATION_DEPTHS: [u64; 4] = [3, 12, 15, 36];

/// Figure 4's series.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitReport {
    /// Delay from first tx observation to inclusion-block observation (s).
    pub inclusion: Cdf,
    /// The inclusion-delay sample as a fixed-size mergeable sketch —
    /// the planet-scale collector (quantiles within
    /// [`ethmeter_stats::sketch::RELATIVE_ERROR`] of
    /// [`CommitReport::inclusion`], bit-stable under any merge tree).
    pub inclusion_sketch: QuantileSketch,
    /// Delay to the k-th confirmation, for k in
    /// [`CONFIRMATION_DEPTHS`] order (s).
    pub confirmations: Vec<(u64, Cdf)>,
    /// Committed transactions measured.
    pub txs_measured: u64,
    /// Transactions skipped (unobserved before inclusion, or past the
    /// campaign's confirmation horizon for every depth).
    pub txs_skipped: u64,
}

impl CommitReport {
    /// A report over zero campaigns (the [`Commit`] starting state).
    pub fn empty() -> Self {
        CommitReport {
            inclusion: Cdf::from_values(std::iter::empty()),
            inclusion_sketch: QuantileSketch::new(),
            confirmations: CONFIRMATION_DEPTHS
                .iter()
                .map(|&k| (k, Cdf::from_values(std::iter::empty())))
                .collect(),
            txs_measured: 0,
            txs_skipped: 0,
        }
    }

    /// Folds another campaign's (or partial sweep's) report into this
    /// one. Exact: the CDFs become the union of both samples.
    pub fn merge(&mut self, other: &CommitReport) {
        self.inclusion.merge(&other.inclusion);
        self.inclusion_sketch.merge(&other.inclusion_sketch);
        for ((k, cdf), (ok, ocdf)) in self.confirmations.iter_mut().zip(&other.confirmations) {
            debug_assert_eq!(k, ok, "confirmation depths are fixed");
            cdf.merge(ocdf);
        }
        self.txs_measured += other.txs_measured;
        self.txs_skipped += other.txs_skipped;
    }
    /// The headline number: median 12-confirmation commit delay (paper:
    /// 189 s). `None` if no transaction reached 12 confirmations.
    pub fn median_commit_12(&self) -> Option<f64> {
        self.confirmations
            .iter()
            .find(|(k, _)| *k == 12)
            .filter(|(_, cdf)| !cdf.is_empty())
            .map(|(_, cdf)| cdf.quantile(0.5))
    }
}

/// Per-block observation index: height -> earliest true observation.
///
/// Built from one streaming merge-join over the observer scans (spilled
/// or in-memory), joined against the canonical chain; the index itself
/// holds one entry per canonical block, never raw rows.
fn block_observations(data: &CampaignData) -> FxHashMap<BlockNumber, SimTime> {
    let mut canonical: FxHashMap<ethmeter_types::BlockHash, BlockNumber> = FxHashMap::default();
    for block in data.truth.tree.canonical_blocks() {
        if block.number() > 0 {
            canonical.insert(block.hash(), block.number());
        }
    }
    let mut obs: FxHashMap<BlockNumber, SimTime> = FxHashMap::default();
    data.for_each_main_block(|hash, group| {
        if let Some(&number) = canonical.get(&hash) {
            let earliest = group
                .iter()
                .map(|(_, r)| r.first_true)
                .min()
                .expect("non-empty group");
            obs.insert(number, earliest);
        }
    });
    obs
}

/// Earliest true observation of each transaction across main observers,
/// streamed through the scan merge-join.
fn tx_observations(data: &CampaignData) -> FxHashMap<TxId, SimTime> {
    let mut obs: FxHashMap<TxId, SimTime> = FxHashMap::default();
    data.for_each_main_tx(|id, group| {
        let earliest = group
            .iter()
            .map(|(_, r)| r.first_true)
            .min()
            .expect("non-empty group");
        obs.insert(id, earliest);
    });
    obs
}

/// Computes Figure 4.
pub fn analyze(data: &CampaignData) -> CommitReport {
    let block_obs = block_observations(data);
    let tx_obs = tx_observations(data);
    let mut inclusion = Vec::new();
    let mut confs: Vec<(u64, Vec<f64>)> = CONFIRMATION_DEPTHS
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();
    let mut measured = 0u64;
    let mut skipped = 0u64;
    let mut seen: FxHashSet<TxId> = FxHashSet::default();
    for block in data.truth.tree.canonical_blocks() {
        if block.number() == 0 {
            continue;
        }
        let h = block.number();
        let Some(&t_inc) = block_obs.get(&h) else {
            skipped += block.txs().len() as u64;
            continue;
        };
        for &txid in block.txs() {
            if !seen.insert(txid) {
                continue; // double inclusion across a reorg: count once
            }
            let Some(&t_tx) = tx_obs.get(&txid) else {
                skipped += 1;
                continue;
            };
            if t_tx > t_inc {
                // Observed only after inclusion (e.g. miner-private tx):
                // the paper cannot measure these either.
                skipped += 1;
                continue;
            }
            measured += 1;
            inclusion.push((t_inc - t_tx).as_secs_f64());
            for (k, sink) in &mut confs {
                if let Some(&t_k) = block_obs.get(&(h + *k)) {
                    sink.push((t_k - t_tx).as_secs_f64());
                }
            }
        }
    }
    let mut inclusion_sketch = QuantileSketch::new();
    inclusion_sketch.record_all(inclusion.iter().copied());
    CommitReport {
        inclusion: Cdf::from_values(inclusion),
        inclusion_sketch,
        confirmations: confs
            .into_iter()
            .map(|(k, v)| (k, Cdf::from_values(v)))
            .collect(),
        txs_measured: measured,
        txs_skipped: skipped,
    }
}

/// Streaming Figure 4 across many campaigns: commit-delay samples pooled
/// over every run.
#[derive(Debug, Clone)]
pub struct Commit {
    report: CommitReport,
}

impl Commit {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Commit {
            report: CommitReport::empty(),
        }
    }
}

impl Default for Commit {
    fn default() -> Self {
        Self::new()
    }
}

impl Reduce for Commit {
    type Report = CommitReport;

    fn observe(&mut self, data: &CampaignData) {
        self.report.merge(&analyze(data));
    }

    fn merge(&mut self, other: Self) {
        self.report.merge(&other.report);
    }

    fn finish(self) -> CommitReport {
        self.report
    }
}

impl fmt::Display for CommitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 — transaction inclusion and commit times ({} txs)",
            self.txs_measured
        )?;
        writeln!(f, "inclusion: {}", self.inclusion)?;
        for (k, cdf) in &self.confirmations {
            writeln!(f, "{k:>2} confirmations: {cdf}")?;
        }
        if let Some(m) = self.median_commit_12() {
            write!(f, "median 12-conf commit: {m:.0}s (paper: 189s)")?;
        }
        Ok(())
    }
}

/// Figure 5's split.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderingReport {
    /// Fraction of (observer, committed tx) samples that arrived out of
    /// nonce order (paper: 11.54%).
    pub ooo_fraction: f64,
    /// 12-confirmation commit delay of in-order arrivals (s).
    pub in_order: Cdf,
    /// 12-confirmation commit delay of out-of-order arrivals (s).
    pub out_of_order: Cdf,
}

/// Computes Figure 5. Classification is per observer — a transaction is
/// out-of-order at an observer if some lower-nonce transaction from the
/// same sender arrived later at *that* observer — and samples are pooled
/// across the four main observers.
pub fn ordering(data: &CampaignData) -> OrderingReport {
    let mut acc = CommitOrdering::new();
    acc.observe(data);
    acc.finish()
}

/// Streaming Figure 5 across many campaigns: classification counts and
/// delay samples pooled over every run's observers.
#[derive(Debug, Clone, Default)]
pub struct CommitOrdering {
    ooo_count: u64,
    total: u64,
    in_order: Vec<f64>,
    out_of_order: Vec<f64>,
}

impl CommitOrdering {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Reduce for CommitOrdering {
    type Report = OrderingReport;

    fn observe(&mut self, data: &CampaignData) {
        let block_obs = block_observations(data);
        // Committed txs: id -> (sender, nonce, inclusion height).
        let mut committed: FxHashMap<TxId, (AccountId, u64, BlockNumber)> = FxHashMap::default();
        for block in data.truth.tree.canonical_blocks() {
            for &txid in block.txs() {
                if let Some(tx) = data.truth.txs.get(&txid) {
                    // First inclusion wins if a tx appears twice across a reorg.
                    committed
                        .entry(txid)
                        .or_insert((tx.sender, tx.nonce, block.number()));
                }
            }
        }
        // One streaming merge-join over the observer scans fills every
        // observer's per-sender worklist (with each record's own first
        // arrival carried along), replacing per-observer random access.
        let n_obs = data.main_observers().count();
        // Per-sender worklist entries: (nonce, arrival_seq, tx, first arrival).
        type SenderWork = FxHashMap<AccountId, Vec<(u64, u64, TxId, SimTime)>>;
        let mut by_sender: Vec<SenderWork> = vec![FxHashMap::default(); n_obs];
        data.for_each_main_tx(|id, group| {
            if let Some(&(sender, nonce, _)) = committed.get(&id) {
                for &(i, r) in group {
                    by_sender[i].entry(sender).or_default().push((
                        nonce,
                        r.arrival_seq,
                        id,
                        r.first_true,
                    ));
                }
            }
        });
        for per_observer in &mut by_sender {
            for txs in per_observer.values_mut() {
                txs.sort_unstable(); // by nonce
                let mut max_seq_below = 0u64;
                let mut any_below = false;
                for &(_, seq, id, first_true) in txs.iter() {
                    let ooo = any_below && max_seq_below > seq;
                    self.total += 1;
                    if ooo {
                        self.ooo_count += 1;
                    }
                    // Commit sample: 12-conf delay from this observer's own
                    // first arrival.
                    let (_, _, height) = committed[&id];
                    if let Some(&t12) = block_obs.get(&(height + 12)) {
                        if first_true <= t12 {
                            let d = (t12 - first_true).as_secs_f64();
                            if ooo {
                                self.out_of_order.push(d);
                            } else {
                                self.in_order.push(d);
                            }
                        }
                    }
                    if seq > max_seq_below {
                        max_seq_below = seq;
                    }
                    any_below = true;
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.ooo_count += other.ooo_count;
        self.total += other.total;
        self.in_order.extend(other.in_order);
        self.out_of_order.extend(other.out_of_order);
    }

    fn finish(self) -> OrderingReport {
        OrderingReport {
            ooo_fraction: self.ooo_count as f64 / self.total.max(1) as f64,
            in_order: Cdf::from_values(self.in_order),
            out_of_order: Cdf::from_values(self.out_of_order),
        }
    }
}

impl fmt::Display for OrderingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5 — commit delay by arrival order")?;
        writeln!(
            f,
            "out-of-order committed txs: {} (paper: 11.54%)",
            pct(self.ooo_fraction)
        )?;
        writeln!(f, "in-order:     {}", self.in_order)?;
        write!(f, "out-of-order: {}", self.out_of_order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_measure::{BlockMsgKind, CampaignData, ObserverLog, VantagePoint};
    use ethmeter_types::{NodeId, PoolId, Region, SimDuration};

    /// One observer, a 16-block chain; tx 1 in block 1, observed 5s before
    /// its block; blocks observed at sealing time.
    fn campaign_with_txs() -> CampaignData {
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        let ib = testutil::interblock();
        let mut hashes = Vec::new();
        for i in 0..16u64 {
            let txs = if i == 0 { vec![TxId(1)] } else { vec![] };
            let b = BlockBuilder::new(parent, i + 1, PoolId(0))
                .mined_at(SimTime::ZERO + ib * (i + 1))
                .txs(txs)
                .salt(i)
                .build();
            parent = b.hash();
            hashes.push(parent);
            tree.insert(b).expect("ok");
        }
        let mut txs = ethmeter_types::FxHashMap::default();
        let t_submit = SimTime::ZERO + ib - SimDuration::from_secs(5);
        txs.insert(TxId(1), testutil::tx(1, 7, 0, t_submit));

        let mut log = ObserverLog::new();
        for (i, &h) in hashes.iter().enumerate() {
            let t = SimTime::ZERO + ib * (i as u64 + 1);
            log.record_block_msg(h, BlockMsgKind::FullBlock, NodeId(2), t, t);
        }
        log.record_tx(TxId(1), NodeId(3), t_submit, t_submit);

        let vantage = VantagePoint {
            name: "WE".into(),
            region: Region::WesternEurope,
            peer_target: 400,
            default_peers: false,
        };
        CampaignData {
            observers: vec![(vantage, log)],
            truth: testutil::truth(tree, txs),
        }
    }

    #[test]
    fn inclusion_and_confirmation_delays() {
        let data = campaign_with_txs();
        let r = analyze(&data);
        assert_eq!(r.txs_measured, 1);
        // Inclusion: tx seen 5s before block 1 observed.
        assert!((r.inclusion.quantile(0.5) - 5.0).abs() < 1e-9);
        // 12 confirmations: block 13 observed at 13 * 13.3s; delay =
        // 13*13.3 - (13.3 - 5).
        let expect = 13.0 * 13.3 - (13.3 - 5.0);
        let got = r.median_commit_12().expect("12-conf reached");
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
        // 36 confirmations unreachable in a 16-block campaign.
        let c36 = r
            .confirmations
            .iter()
            .find(|(k, _)| *k == 36)
            .expect("row present");
        assert!(c36.1.is_empty());
        assert!(r.to_string().contains("Figure 4"));
    }

    #[test]
    fn unobserved_txs_are_skipped() {
        let mut data = campaign_with_txs();
        // Remove the tx observation: the tx can no longer be measured.
        data.observers[0].1 = {
            let mut log = ObserverLog::new();
            for block in data.truth.tree.canonical_blocks().skip(1) {
                let t = block.mined_at();
                log.record_block_msg(block.hash(), BlockMsgKind::FullBlock, NodeId(2), t, t);
            }
            log
        };
        let r = analyze(&data);
        assert_eq!(r.txs_measured, 0);
        assert_eq!(r.txs_skipped, 1);
    }

    /// Two txs from one sender, nonce 1 arriving before nonce 0.
    fn campaign_with_ooo() -> CampaignData {
        let mut data = campaign_with_txs();
        let ib = testutil::interblock();
        // Add tx 2 (nonce 1) also committed in block 1.
        let t0 = SimTime::ZERO + ib - SimDuration::from_secs(5);
        let t1 = SimTime::ZERO + ib - SimDuration::from_secs(4);
        data.truth.txs.insert(TxId(2), testutil::tx(2, 7, 1, t1));
        // Rebuild the tree so block 1 carries both txs.
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        for i in 0..16u64 {
            let txs = if i == 0 {
                vec![TxId(1), TxId(2)]
            } else {
                vec![]
            };
            let b = BlockBuilder::new(parent, i + 1, PoolId(0))
                .mined_at(SimTime::ZERO + ib * (i + 1))
                .txs(txs)
                .salt(i)
                .build();
            parent = b.hash();
            tree.insert(b).expect("ok");
        }
        // Observer sees nonce 1 BEFORE nonce 0.
        let mut log = ObserverLog::new();
        for block in tree.canonical_blocks().filter(|b| b.number() > 0) {
            let t = block.mined_at();
            log.record_block_msg(block.hash(), BlockMsgKind::FullBlock, NodeId(2), t, t);
        }
        log.record_tx(TxId(2), NodeId(3), t1, t1); // nonce 1 first
        log.record_tx(TxId(1), NodeId(3), t0, t0); // nonce 0 second
        data.observers[0].1 = log;
        data.truth.tree = tree;
        data
    }

    #[test]
    fn out_of_order_detection_and_split() {
        let data = campaign_with_ooo();
        let r = ordering(&data);
        // One of the two committed txs is OOO at the observer.
        assert!((r.ooo_fraction - 0.5).abs() < 1e-9, "{}", r.ooo_fraction);
        assert_eq!(r.in_order.count(), 1);
        assert_eq!(r.out_of_order.count(), 1);
        // The OOO tx (nonce 0, arrived later... no: nonce 1 arrived first,
        // but its predecessor arrived later -> nonce 1 is the OOO one).
        assert!(r.to_string().contains("Figure 5"));
    }

    #[test]
    fn in_order_campaign_has_zero_ooo() {
        let data = campaign_with_txs();
        let r = ordering(&data);
        assert_eq!(r.ooo_fraction, 0.0);
        assert_eq!(r.out_of_order.count(), 0);
    }

    #[test]
    fn streamed_reductions_pool_samples_across_runs() {
        use crate::Reduce;
        let a = campaign_with_txs();
        let b = campaign_with_ooo();
        // Figure 4: two runs double the inclusion samples of one run each.
        let mut acc = Commit::new();
        acc.observe(&a);
        acc.observe(&b);
        let merged = acc.finish();
        let mut expected = analyze(&a);
        expected.merge(&analyze(&b));
        assert_eq!(merged, expected);
        assert_eq!(
            merged.txs_measured,
            analyze(&a).txs_measured + analyze(&b).txs_measured
        );
        // Figure 5: counts and CDFs pool exactly; fraction recomputed from
        // the pooled counts (1 OOO of 3 samples, not a mean of fractions).
        let mut ord = CommitOrdering::new();
        ord.observe(&a);
        ord.observe(&b);
        let r = ord.finish();
        assert!(
            (r.ooo_fraction - 1.0 / 3.0).abs() < 1e-9,
            "{}",
            r.ooo_fraction
        );
        assert_eq!(r.in_order.count(), 2);
        assert_eq!(r.out_of_order.count(), 1);
        // Merge of single-run accumulators equals sequential observation.
        let mut left = CommitOrdering::new();
        left.observe(&a);
        let mut right = CommitOrdering::new();
        right.observe(&b);
        left.merge(right);
        assert_eq!(left.finish(), r);
    }
}
