//! Transactions.
//!
//! A transaction's identity is its [`TxId`]; its *ordering constraint* is
//! the `(sender, nonce)` pair: "the transaction creator stamps every
//! transaction with a monotonically increasing nonce ... miners cannot
//! include out-of-order transactions in a block until they receive all
//! foregoing transactions" (§III-C2).

use ethmeter_types::{AccountId, ByteSize, Gas, NodeId, Nonce, SimTime, TxId};

/// A transaction as seen by the network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Unique id (stands in for the transaction hash).
    pub id: TxId,
    /// The externally-owned account that signed it.
    pub sender: AccountId,
    /// Per-sender sequence number.
    pub nonce: Nonce,
    /// Fee bid, in gwei per gas. Miners order candidates by this.
    pub gas_price: u64,
    /// Gas consumed if included (bounds how many txs fit a block).
    pub gas: Gas,
    /// Wire size.
    pub size: ByteSize,
    /// When the creator first handed it to its origin node.
    pub submitted_at: SimTime,
    /// The node where it entered the network.
    pub origin: NodeId,
}

impl Transaction {
    /// The `(sender, nonce)` ordering key.
    pub fn ordering_key(&self) -> (AccountId, Nonce) {
        (self.sender, self.nonce)
    }
}

/// Gas consumed by a plain value transfer; the workload default.
pub const SIMPLE_TX_GAS: Gas = 21_000;

/// The mainnet block gas limit during the measurement window (8M gas,
/// April 2019).
pub const BLOCK_GAS_LIMIT: Gas = 8_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(sender: u32, nonce: u64) -> Transaction {
        Transaction {
            id: TxId(u64::from(sender) << 32 | nonce),
            sender: AccountId(sender),
            nonce,
            gas_price: 1,
            gas: SIMPLE_TX_GAS,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        }
    }

    #[test]
    fn ordering_key_is_sender_nonce() {
        assert_eq!(tx(7, 3).ordering_key(), (AccountId(7), 3));
    }

    #[test]
    fn block_fits_expected_tx_count() {
        // ~380 plain transfers fit an 8M-gas block; real blocks carried
        // ~100 (mixed contract calls), i.e. ~80% gas utilization with
        // heavier transactions. The simulator's workload crate picks gas
        // values to land in the same regime.
        assert_eq!(BLOCK_GAS_LIMIT / SIMPLE_TX_GAS, 380);
    }
}
