//! Cross-crate consistency properties: the lightweight per-node
//! `HeaderView` must agree with the authoritative `BlockTree` fork choice,
//! and the fork/sequence analyzers must agree with first principles.

use ethmeter::chain::block::{Block, BlockBuilder};
use ethmeter::chain::forks;
use ethmeter::chain::tree::{BlockTree, InsertOutcome};
use ethmeter::net::headerview::HeaderView;
use ethmeter::stats::runs;
use ethmeter::types::{BlockHash, PoolId};
use proptest::prelude::*;

/// Builds a random block-DAG growing plan: each step either extends the
/// current head or forks off a random earlier block.
fn arb_growth_plan() -> impl Strategy<Value = Vec<(usize, u16)>> {
    // (parent selector, miner) per step; parent selector is an index into
    // the list of already-created blocks, modulo its length.
    proptest::collection::vec((0usize..1000, 0u16..4), 1..60)
}

fn build_blocks(plan: &[(usize, u16)]) -> Vec<Block> {
    let tree = BlockTree::new();
    let mut hashes: Vec<(BlockHash, u64)> = vec![(tree.genesis_hash(), 0)];
    let mut blocks = Vec::new();
    for (i, &(sel, miner)) in plan.iter().enumerate() {
        let (parent, pnum) = hashes[sel % hashes.len()];
        let block = BlockBuilder::new(parent, pnum + 1, PoolId(miner))
            .salt(i as u64)
            .build();
        hashes.push((block.hash(), block.number()));
        blocks.push(block);
    }
    blocks
}

proptest! {
    /// Whatever the insertion order and fork structure, the pruned
    /// HeaderView picks the same head as the full BlockTree (given a
    /// window large enough to cover the run).
    #[test]
    fn header_view_agrees_with_block_tree(plan in arb_growth_plan()) {
        let blocks = build_blocks(&plan);
        let mut tree = BlockTree::new();
        let mut view = HeaderView::new(tree.genesis_hash(), 512);
        for b in &blocks {
            let _ = tree.insert(b.clone());
            let _ = view.insert(b.hash(), b.parent(), b.number(), b.miner(), b.header().difficulty(), b.uncles());
        }
        prop_assert_eq!(view.head(), tree.head(), "head mismatch");
        prop_assert_eq!(view.head_number(), tree.head_number());
        // Canonical hashes agree at every covered height.
        for n in 0..=tree.head_number() {
            prop_assert_eq!(view.canonical_hash(n), tree.canonical_hash(n));
        }
    }

    /// Fork extraction partitions exactly the non-canonical blocks.
    #[test]
    fn forks_partition_non_canonical_blocks(plan in arb_growth_plan()) {
        let blocks = build_blocks(&plan);
        let mut tree = BlockTree::new();
        for b in &blocks {
            let _ = tree.insert(b.clone());
        }
        let fork_records = forks::extract_forks(&tree);
        let in_forks: usize = fork_records.iter().map(|f| f.blocks.len()).sum();
        let non_canonical = tree.non_canonical_blocks().count();
        prop_assert_eq!(in_forks, non_canonical);
        // No block appears in two forks.
        let mut seen = std::collections::HashSet::new();
        for f in &fork_records {
            for h in &f.blocks {
                prop_assert!(seen.insert(*h), "block {} in two forks", h);
            }
        }
        // Census adds up.
        let census = forks::census(&tree);
        prop_assert_eq!(census.total() as usize, tree.len() - 1);
    }

    /// The miner sequence length always equals the canonical height, and
    /// run-length extraction is consistent with it.
    #[test]
    fn miner_sequence_consistency(plan in arb_growth_plan()) {
        let blocks = build_blocks(&plan);
        let mut tree = BlockTree::new();
        for b in &blocks {
            let _ = tree.insert(b.clone());
        }
        let seq = forks::miner_sequence(&tree);
        prop_assert_eq!(seq.len() as u64, tree.head_number());
        let total_run_len: usize = runs::run_lengths(&seq).iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total_run_len, seq.len());
    }

    /// Orphaned arrival orders converge to the same tree as in-order
    /// arrival.
    #[test]
    fn arrival_order_does_not_change_consensus(
        plan in arb_growth_plan(),
        shuffle_seed in 0u64..1000,
    ) {
        let blocks = build_blocks(&plan);
        let mut in_order = BlockTree::new();
        for b in &blocks {
            let out = in_order.insert(b.clone()).expect("valid block");
            let attached = matches!(out, InsertOutcome::Attached { .. });
            prop_assert!(attached);
        }
        // Shuffled arrival (orphan buffering must reconnect everything).
        let mut rng = ethmeter::sim::Xoshiro256::seed_from_u64(shuffle_seed);
        let mut shuffled = blocks.clone();
        rng.shuffle(&mut shuffled);
        let mut out_of_order = BlockTree::new();
        for b in &shuffled {
            let _ = out_of_order.insert(b.clone());
        }
        prop_assert_eq!(out_of_order.len(), in_order.len(), "lost blocks");
        prop_assert_eq!(out_of_order.head_number(), in_order.head_number());
        // Total difficulty of the head is identical (heads may differ only
        // when two chains tie, since first-seen breaks ties).
        prop_assert_eq!(
            out_of_order.total_difficulty(out_of_order.head()),
            in_order.total_difficulty(in_order.head())
        );
    }
}

#[test]
fn uncle_selection_agrees_between_tree_and_view() {
    // A fixed fork structure checked against both implementations.
    let mut tree = BlockTree::new();
    let mut view = HeaderView::new(tree.genesis_hash(), 128);
    let g = tree.genesis_hash();
    let mut main = Vec::new();
    let mut parent = g;
    for i in 0..5u64 {
        let b = BlockBuilder::new(parent, i + 1, PoolId(0)).salt(i).build();
        parent = b.hash();
        main.push(b.clone());
        view.insert(
            b.hash(),
            b.parent(),
            b.number(),
            b.miner(),
            b.header().difficulty(),
            &[],
        );
        tree.insert(b).expect("main");
    }
    // Forks at heights 2 and 4 by another miner.
    for (h, salt) in [(2u64, 100u64), (4, 101)] {
        let fork_parent = main[(h - 2) as usize].hash();
        let f = BlockBuilder::new(fork_parent, h, PoolId(1))
            .salt(salt)
            .build();
        view.insert(
            f.hash(),
            f.parent(),
            f.number(),
            f.miner(),
            f.header().difficulty(),
            &[],
        );
        tree.insert(f).expect("fork");
    }
    let policy = ethmeter::chain::uncles::UnclePolicy::Standard;
    let from_tree = ethmeter::chain::uncles::select_uncles(&tree, parent, policy);
    let from_view = view.select_uncles(parent, policy);
    assert_eq!(from_tree, from_view);
    assert_eq!(from_tree.len(), 2);
}
