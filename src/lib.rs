//! # ethmeter
//!
//! A geo-distributed measurement and simulation toolkit for Ethereum-like
//! blockchains — a from-scratch Rust reproduction of
//! *Impact of Geo-distribution and Mining Pools on Blockchains: A Study of
//! Ethereum* (Silva, Vavřička, Barreto, Matos; IEEE/IFIP DSN 2020).
//!
//! This facade crate re-exports the full public API of the workspace. Most
//! applications interact with three layers:
//!
//! 1. **Scenario construction** — [`core::scenario::Scenario`] describes a
//!    simulated Ethereum network: topology, geography, mining pools (with
//!    hash-power shares and selfish-strategy knobs), transaction workload,
//!    and the measurement vantage points.
//! 2. **Campaign execution** — [`core::runner`] runs the discrete-event
//!    simulation and returns the observers' raw logs plus ground truth.
//! 3. **Analysis** — [`analysis`] turns logs into the paper's tables and
//!    figures (propagation delay PDFs, first-observation shares, redundancy,
//!    commit-time CDFs, empty-block censuses, fork tables, sequence CDFs).
//!
//! ## Quickstart
//!
//! ```
//! use ethmeter::prelude::*;
//!
//! // A small, fast scenario (hundreds of nodes, minutes of simulated time).
//! let scenario = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .seed(42)
//!     .build();
//! let outcome = run_campaign(&scenario);
//! let report = analysis::propagation::analyze(&outcome.campaign);
//! assert!(report.delays.count() > 0);
//! ```
//!
//! See `examples/` for end-to-end walkthroughs of each experiment family
//! and `EXPERIMENTS.md` for paper-vs-measured comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ethmeter_core::*;
