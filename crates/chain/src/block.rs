//! Block headers and bodies.
//!
//! Block *size* matters to the measurements: a block's wire size determines
//! its serialization delay on access links, which is the physical reason
//! empty blocks "can be propagated earlier ... and faster, since they become
//! smaller due to the absence of transactions" (§III-C3).

use ethmeter_types::{BlockHash, BlockNumber, ByteSize, PoolId, SimTime, TxId};

/// Approximate RLP size of an Ethereum block header, in bytes.
pub const HEADER_BYTES: u64 = 540;

/// Approximate average RLP size of one transaction, in bytes.
pub const TX_BYTES: u64 = 180;

/// The consensus-relevant part of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    hash: BlockHash,
    parent: BlockHash,
    number: BlockNumber,
    miner: PoolId,
    /// When the miner sealed the block (true simulation time).
    mined_at: SimTime,
    /// Per-block difficulty. The simulator holds difficulty constant (the
    /// difficulty-adjustment dynamics are outside the paper's scope), so
    /// total difficulty orders chains by length exactly as Ethereum's
    /// heaviest-chain rule does under steady hash rate.
    difficulty: u64,
}

impl BlockHeader {
    /// The block's hash.
    pub fn hash(&self) -> BlockHash {
        self.hash
    }

    /// The parent block's hash.
    pub fn parent(&self) -> BlockHash {
        self.parent
    }

    /// The height of this block.
    pub fn number(&self) -> BlockNumber {
        self.number
    }

    /// The pool that mined this block.
    pub fn miner(&self) -> PoolId {
        self.miner
    }

    /// The sealing instant.
    pub fn mined_at(&self) -> SimTime {
        self.mined_at
    }

    /// The per-block difficulty.
    pub fn difficulty(&self) -> u64 {
        self.difficulty
    }
}

/// A full block: header, transaction list, and uncle references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    header: BlockHeader,
    txs: Vec<TxId>,
    uncles: Vec<BlockHash>,
}

impl Block {
    /// The header.
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// The block's hash (shorthand for `header().hash()`).
    pub fn hash(&self) -> BlockHash {
        self.header.hash
    }

    /// The parent hash.
    pub fn parent(&self) -> BlockHash {
        self.header.parent
    }

    /// The height.
    pub fn number(&self) -> BlockNumber {
        self.header.number
    }

    /// The mining pool.
    pub fn miner(&self) -> PoolId {
        self.header.miner
    }

    /// The sealing instant.
    pub fn mined_at(&self) -> SimTime {
        self.header.mined_at
    }

    /// Transactions included in this block, in execution order.
    pub fn txs(&self) -> &[TxId] {
        &self.txs
    }

    /// Uncle headers referenced by this block.
    pub fn uncles(&self) -> &[BlockHash] {
        &self.uncles
    }

    /// True if the block carries no transactions (§III-C3's subject).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Approximate wire size: header + transactions + uncle headers.
    pub fn size(&self) -> ByteSize {
        ByteSize::from_bytes(
            HEADER_BYTES
                + self.txs.len() as u64 * TX_BYTES
                + self.uncles.len() as u64 * HEADER_BYTES,
        )
    }
}

/// Builder for blocks ([C-BUILDER]); the only way to construct one, which
/// lets the constructor enforce hash uniqueness conventions in one place.
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    parent: BlockHash,
    number: BlockNumber,
    miner: PoolId,
    mined_at: SimTime,
    difficulty: u64,
    txs: Vec<TxId>,
    uncles: Vec<BlockHash>,
    hash_salt: u64,
}

impl BlockBuilder {
    /// Starts a block on `parent` at height `number`, mined by `miner`.
    pub fn new(parent: BlockHash, number: BlockNumber, miner: PoolId) -> Self {
        BlockBuilder {
            parent,
            number,
            miner,
            mined_at: SimTime::ZERO,
            difficulty: 1,
            txs: Vec::new(),
            uncles: Vec::new(),
            hash_salt: 0,
        }
    }

    /// Sets the sealing time.
    pub fn mined_at(mut self, at: SimTime) -> Self {
        self.mined_at = at;
        self
    }

    /// Sets the difficulty (default 1).
    pub fn difficulty(mut self, difficulty: u64) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Sets the transaction list.
    pub fn txs(mut self, txs: Vec<TxId>) -> Self {
        self.txs = txs;
        self
    }

    /// Sets the uncle references.
    ///
    /// # Panics
    ///
    /// Panics if more than [`crate::uncles::MAX_UNCLES`] are supplied.
    pub fn uncles(mut self, uncles: Vec<BlockHash>) -> Self {
        assert!(
            uncles.len() <= crate::uncles::MAX_UNCLES,
            "a block may reference at most {} uncles",
            crate::uncles::MAX_UNCLES
        );
        self.uncles = uncles;
        self
    }

    /// Adds entropy distinguishing blocks that would otherwise have
    /// identical fields (two same-miner same-parent blocks — the one-miner
    /// fork case — must still get distinct hashes).
    pub fn salt(mut self, salt: u64) -> Self {
        self.hash_salt = salt;
        self
    }

    /// Builds the block, deriving its hash from all header fields.
    pub fn build(self) -> Block {
        // Combine the identity-bearing fields into the hash preimage. Tx
        // ids participate so blocks with different bodies differ.
        let mut acc = self.parent.raw() ^ self.number.rotate_left(17);
        acc ^= (u64::from(self.miner.raw())).rotate_left(32);
        acc ^= self.mined_at.as_nanos().rotate_left(7);
        acc ^= self.hash_salt.rotate_left(43);
        for (i, tx) in self.txs.iter().enumerate() {
            acc ^= tx.raw().rotate_left((i % 63) as u32 + 1);
        }
        for u in &self.uncles {
            acc ^= u.raw().rotate_left(11);
        }
        let hash = BlockHash::mix(acc);
        Block {
            header: BlockHeader {
                hash,
                parent: self.parent,
                number: self.number,
                miner: self.miner,
                mined_at: self.mined_at,
                difficulty: self.difficulty,
            },
            txs: self.txs,
            uncles: self.uncles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let b = BlockBuilder::new(BlockHash(1), 5, PoolId(3))
            .mined_at(SimTime::from_secs(60))
            .difficulty(7)
            .txs(vec![TxId(10), TxId(11)])
            .build();
        assert_eq!(b.parent(), BlockHash(1));
        assert_eq!(b.number(), 5);
        assert_eq!(b.miner(), PoolId(3));
        assert_eq!(b.mined_at(), SimTime::from_secs(60));
        assert_eq!(b.header().difficulty(), 7);
        assert_eq!(b.txs(), &[TxId(10), TxId(11)]);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_block_is_smaller() {
        let empty = BlockBuilder::new(BlockHash(1), 1, PoolId(0)).build();
        let full = BlockBuilder::new(BlockHash(1), 1, PoolId(0))
            .txs((0..100).map(TxId).collect())
            .build();
        assert!(empty.is_empty());
        assert_eq!(empty.size().as_bytes(), HEADER_BYTES);
        assert_eq!(full.size().as_bytes(), HEADER_BYTES + 100 * TX_BYTES);
        assert!(full.size() > empty.size());
    }

    #[test]
    fn uncle_references_add_size() {
        let b = BlockBuilder::new(BlockHash(1), 2, PoolId(0))
            .uncles(vec![BlockHash(9)])
            .build();
        assert_eq!(b.size().as_bytes(), 2 * HEADER_BYTES);
        assert_eq!(b.uncles(), &[BlockHash(9)]);
    }

    #[test]
    fn hashes_distinguish_content() {
        let base = || BlockBuilder::new(BlockHash(1), 5, PoolId(3));
        let a = base().build();
        let b = base().txs(vec![TxId(1)]).build();
        let c = base().salt(1).build();
        let d = base().mined_at(SimTime::from_secs(1)).build();
        let hashes = [a.hash(), b.hash(), c.hash(), d.hash()];
        for i in 0..hashes.len() {
            for j in 0..i {
                assert_ne!(hashes[i], hashes[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn identical_builds_share_hash() {
        let a = BlockBuilder::new(BlockHash(1), 5, PoolId(3)).build();
        let b = BlockBuilder::new(BlockHash(1), 5, PoolId(3)).build();
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_uncles_rejected() {
        let _ = BlockBuilder::new(BlockHash(1), 2, PoolId(0)).uncles(vec![
            BlockHash(1),
            BlockHash(2),
            BlockHash(3),
        ]);
    }
}
