//! Wire messages of the simulated `eth/63` protocol.
//!
//! The paper's Table II distinguishes exactly two ways a block reaches a
//! peer — "light announcements (consisting of only the block's hash)" and
//! direct propagation "(including both header and body)" — plus the fetch
//! round-trip announcements trigger. Transactions travel in batched
//! `Transactions` messages.

use ethmeter_types::{BlockHash, ByteSize, InlineVec, TxId};

/// Approximate wire overhead of any devp2p message (RLP framing, message
/// id, signature envelope).
pub const MSG_OVERHEAD_BYTES: u64 = 60;

/// Bytes per announced hash in `NewBlockHashes` (hash + number).
pub const ANNOUNCE_ENTRY_BYTES: u64 = 40;

/// The hash list of an `Announce`. Real announcements carry one or two
/// hashes, so the payload lives inline in the message — constructing and
/// fanning one out per peer allocates nothing.
pub type AnnounceList = InlineVec<BlockHash, 2>;

/// The id list of a `Transactions` batch. Small batches (the common case
/// outside bursts) stay inline; large bursts spill to the heap. Three is
/// the largest inline capacity that keeps `Message` no bigger than its
/// pre-inline-payload size (the message is copied through the event slab
/// on every hop, so its footprint is itself a hot-path constant).
pub type TxBatch = InlineVec<TxId, 3>;

/// A protocol message. Block bodies are addressed by hash; the driver
/// resolves bodies through its block registry when sizing and delivering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `NewBlockHashes`: light announcement of block availability.
    Announce(AnnounceList),
    /// `NewBlock`: unsolicited full block (header + body), the "direct
    /// propagation" path.
    NewBlock(BlockHash),
    /// `GetBlockHeaders`/`GetBlockBodies` collapsed into one fetch request.
    GetBlock(BlockHash),
    /// The fetch response carrying the full block.
    BlockBody(BlockHash),
    /// A batch of complete transactions.
    Transactions(TxBatch),
    /// A single complete transaction — wire-equivalent to
    /// `Transactions(vec![id])`, but with no heap payload. Transaction
    /// gossip is overwhelmingly one-at-a-time, so the hot path pays no
    /// allocation per relayed transaction.
    Tx(TxId),
}

impl Message {
    /// Computes the wire size, resolving block/tx payload sizes via
    /// `block_size` and `tx_size` lookups.
    pub fn size<B, T>(&self, mut block_size: B, mut tx_size: T) -> ByteSize
    where
        B: FnMut(BlockHash) -> ByteSize,
        T: FnMut(TxId) -> ByteSize,
    {
        let payload = match self {
            Message::Announce(hashes) => hashes.len() as u64 * ANNOUNCE_ENTRY_BYTES,
            Message::NewBlock(h) | Message::BlockBody(h) => block_size(*h).as_bytes(),
            Message::GetBlock(_) => ANNOUNCE_ENTRY_BYTES,
            Message::Transactions(txs) => txs.iter().map(|&t| tx_size(t).as_bytes()).sum::<u64>(),
            Message::Tx(t) => tx_size(*t).as_bytes(),
        };
        ByteSize::from_bytes(MSG_OVERHEAD_BYTES + payload)
    }

    /// True for the two block-bearing message kinds (Table II's "Whole
    /// Blocks" row).
    pub fn carries_block_body(&self) -> bool {
        matches!(self, Message::NewBlock(_) | Message::BlockBody(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_block(_: BlockHash) -> ByteSize {
        ByteSize::from_bytes(25_000)
    }

    fn fixed_tx(_: TxId) -> ByteSize {
        ByteSize::from_bytes(180)
    }

    #[test]
    fn announcement_is_light() {
        let ann = Message::Announce(AnnounceList::one(BlockHash(1)));
        let full = Message::NewBlock(BlockHash(1));
        let a = ann.size(fixed_block, fixed_tx);
        let f = full.size(fixed_block, fixed_tx);
        assert!(a.as_bytes() < 200);
        assert_eq!(f.as_bytes(), 25_060);
        assert!(f.as_bytes() > 100 * a.as_bytes() / 2);
    }

    #[test]
    fn batched_announcements_scale() {
        let one = Message::Announce(AnnounceList::one(BlockHash(1))).size(fixed_block, fixed_tx);
        let three = Message::Announce(AnnounceList::from_slice(&[
            BlockHash(1),
            BlockHash(2),
            BlockHash(3),
        ]))
        .size(fixed_block, fixed_tx);
        assert_eq!(three.as_bytes() - one.as_bytes(), 2 * ANNOUNCE_ENTRY_BYTES);
    }

    #[test]
    fn tx_batch_sums_sizes() {
        let batch = Message::Transactions(TxBatch::from_slice(&[TxId(1), TxId(2)]));
        assert_eq!(
            batch.size(fixed_block, fixed_tx).as_bytes(),
            MSG_OVERHEAD_BYTES + 360
        );
    }

    #[test]
    fn singleton_tx_sizes_like_a_batch_of_one() {
        let one = Message::Tx(TxId(1));
        let batch = Message::Transactions(TxBatch::one(TxId(1)));
        assert_eq!(
            one.size(fixed_block, fixed_tx),
            batch.size(fixed_block, fixed_tx)
        );
        assert!(!one.carries_block_body());
    }

    #[test]
    fn body_kind_classification() {
        assert!(Message::NewBlock(BlockHash(1)).carries_block_body());
        assert!(Message::BlockBody(BlockHash(1)).carries_block_body());
        assert!(!Message::Announce(AnnounceList::new()).carries_block_body());
        assert!(!Message::GetBlock(BlockHash(1)).carries_block_body());
        assert!(!Message::Transactions(TxBatch::new()).carries_block_body());
    }
}
