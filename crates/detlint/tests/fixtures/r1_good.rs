// Fixture: deterministic containers pass R1.
use std::collections::BTreeMap;

use ethmeter_types::{BuildFxHasher, FxHashMap, FxHashSet};

struct Index {
    by_height: BTreeMap<u64, u32>,
    by_hash: FxHashMap<u64, u32>,
    seen: FxHashSet<u32>,
    custom: std::collections::HashMap<u64, u32, BuildFxHasher>,
}

fn build() -> Index {
    Index {
        by_height: BTreeMap::new(),
        by_hash: FxHashMap::default(),
        seen: FxHashSet::default(),
        custom: std::collections::HashMap::with_hasher(BuildFxHasher),
    }
}
