//! Campaign orchestration: scenarios, the simulation world, runners, and
//! per-experiment entry points.
//!
//! This crate wires every substrate together:
//!
//! - [`scenario`]: declarative experiment descriptions with calibrated
//!   presets (from [`Preset::Tiny`] smoke runs to the
//!   paper-shaped [`Preset::PaperScaled`]);
//! - [`world`]: the discrete-event [`world::SimWorld`] — nodes gossiping
//!   over geographic links, pools racing for blocks from geo-located
//!   gateways, the transaction workload, and the instrumented observers;
//! - [`runner`]: one-call campaign execution returning
//!   [`ethmeter_measure::CampaignData`];
//! - [`grid`]: multi-axis campaign grids — named scenario axes × seeds on
//!   parallel workers, reduced through streaming [`metric::Metric`]
//!   collectors at ~constant memory;
//! - [`metric`]: the composable collector API ([`metric::Analyze`] lifts
//!   every `ethmeter-analysis` report, [`metric::Scalars`] builds
//!   cross-seed [`report::GridReport`] tables, [`metric::RetainRuns`]
//!   keeps full outcomes for back-compat);
//! - [`sweep`]: the retained-runs convenience layer over [`grid`] (one
//!   seed axis plus an optional variant axis, every outcome kept);
//! - [`chainonly`]: the fast block-sequence simulator for month- and
//!   chain-lifetime-scale sequence analyses (Figure 7, §III-D);
//! - [`selfish`]: the chain-only selfish-mining race behind the
//!   profitability-threshold experiments (explicit α and γ, same
//!   withholding machine the full world drives);
//! - [`experiments`]: one function per table/figure, shared by the
//!   examples, the benches, and the `repro` binary.
//!
//! # Quickstart
//!
//! One campaign:
//!
//! ```
//! use ethmeter_core::prelude::*;
//!
//! let scenario = Scenario::builder().preset(Preset::Tiny).seed(7).build();
//! let outcome = run_campaign(&scenario);
//! assert!(outcome.campaign.truth.tree.head_number() > 0);
//! ```
//!
//! A cross-seed grid, streamed through metric collectors (full campaign
//! datasets are dropped as each run completes; memory stays ~flat no
//! matter how many runs the grid has):
//!
//! ```
//! use ethmeter_core::prelude::*;
//! use ethmeter_core::analysis::propagation::Propagation;
//!
//! let base = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(2))
//!     .build();
//! let outcome = Grid::new(base)
//!     .seed_range(1, 3)
//!     .axis("tx_rate", [0.5, 1.0], |s, &rate| s.set_tx_rate(rate))
//!     .run((
//!         Analyze::new(Propagation::new()),
//!         Scalars::new().column("head", |_, o| {
//!             o.campaign.truth.tree.head_number() as f64
//!         }),
//!     ));
//! let (fig1, table) = outcome.output;
//! assert!(fig1.blocks_measured > 0);
//! println!("{table}"); // or table.to_csv() / table.to_json()
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chainonly;
pub mod experiments;
pub mod grid;
pub mod metric;
pub mod par;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod selfish;
pub mod sweep;
pub mod world;

pub use grid::{AxisSetter, Grid, GridOutcome, GridPoint};
pub use metric::{Analyze, Metric, PerPoint, RetainRuns, RunCtx, Scalars};
pub use par::run_campaign_sharded;
pub use report::{GridReport, GridRow};
pub use runner::{run_campaign, CampaignOutcome, CampaignRunner};
pub use scenario::{Preset, Scenario, ScenarioBuilder, ScenarioError};
pub use selfish::{run_selfish_race, SelfishRaceConfig, SelfishRaceResult};
pub use sweep::{Sweep, SweepOutcome, SweepRun};
pub use world::{RunStats, SimWorld};

// Re-export the sub-crates under their natural names so downstream users
// need only depend on the facade.
pub use ethmeter_analysis as analysis;
pub use ethmeter_chain as chain;
pub use ethmeter_dynamics as dynamics;
pub use ethmeter_geo as geo;
pub use ethmeter_measure as measure;
pub use ethmeter_mining as mining;
pub use ethmeter_net as net;
pub use ethmeter_sim as sim;
pub use ethmeter_stats as stats;
pub use ethmeter_txpool as txpool;
pub use ethmeter_types as types;
pub use ethmeter_workload as workload;

/// The most common imports, re-exported for `use ethmeter_core::prelude::*`.
pub mod prelude {
    pub use crate::chainonly::{run_chain_only, ChainOnlyConfig};
    pub use crate::grid::{AxisSetter, Grid, GridOutcome, GridPoint};
    pub use crate::metric::{Analyze, Metric, PerPoint, RetainRuns, RunCtx, Scalars};
    pub use crate::report::{GridReport, GridRow};
    pub use crate::runner::{run_campaign, CampaignOutcome, CampaignRunner};
    pub use crate::scenario::{Preset, Scenario, ScenarioError};
    pub use crate::selfish::{run_selfish_race, SelfishRaceConfig, SelfishRaceResult};
    pub use crate::sweep::{Sweep, SweepOutcome, SweepRun};
    pub use crate::{
        analysis, chain, dynamics, geo, measure, mining, net, sim, stats, types, workload,
    };
    pub use ethmeter_analysis::Reduce;
    pub use ethmeter_chain::consensus::ConsensusKind;
    pub use ethmeter_dynamics::{DynamicsEvent, DynamicsScript, RegionMask};
    pub use ethmeter_measure::CampaignData;
    pub use ethmeter_stats::Aggregate;
    pub use ethmeter_types::{Region, SimDuration, SimTime};
}
