//! The processing pipeline: from raw observer logs to every table and
//! figure of the paper's §III.
//!
//! Each module owns one experiment family and produces a typed report with
//! a `Display` implementation that prints the paper-style table:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`propagation`] | Figure 1 (block propagation delay PDF) |
//! | [`redundancy`] | Table II (redundant block receptions) |
//! | [`first_observation`] | Figures 2 and 3 (geographic first-observation shares, per-pool breakdown) |
//! | [`commit`] | Figures 4 and 5 (inclusion/commit CDFs, in- vs out-of-order) |
//! | [`empty_blocks`] | Figure 6 (empty blocks per pool) |
//! | [`forks`] | Table III and §III-C5 (fork census, one-miner forks) |
//! | [`sequences`] | Figure 7 and §III-D (consecutive-block sequences, censorship windows) |
//! | [`rewards`] | Per-pool revenue share vs hash-power share (the selfish-mining yardstick) |
//! | [`reorg`] | Reorg-depth tail `P(revert ≥ k)` vs confirmation policy (double-spend exposure) |
//! | [`decentralization`] | Nakamoto / Gini / HHI scalars over hash power, block production, first observation, and revenue |
//!
//! All analyzers consume a [`ethmeter_measure::CampaignData`]; the
//! sequence analyses additionally accept bare miner sequences so the fast
//! chain-only simulator can feed them directly.
//!
//! # Streaming across campaigns
//!
//! Each report family also ships a [`Reduce`] accumulator
//! ([`propagation::Propagation`], [`redundancy::Redundancy`],
//! [`first_observation::FirstObservation`], [`commit::Commit`],
//! [`commit::CommitOrdering`], [`empty_blocks::EmptyBlocks`],
//! [`forks::Forks`], [`rewards::Rewards`], [`reorg::Reorg`],
//! [`decentralization::Decentralization`]) that folds one campaign at a time into a compact
//! summary and can merge with other accumulators. The single-campaign
//! `analyze` functions are the one-shot path through the same
//! accumulators, so a streamed multi-campaign report over one run equals
//! the classic report exactly. This is what lets a thousand-run sweep
//! compute every table at ~constant memory: the full `CampaignData`
//! (observer logs + ground-truth tree) is dropped after each `observe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod decentralization;
pub mod empty_blocks;
pub mod first_observation;
pub mod forks;
pub mod propagation;
pub mod redundancy;
pub mod reorg;
pub mod rewards;
pub mod sequences;

#[cfg(test)]
pub(crate) mod testutil;

use ethmeter_measure::CampaignData;

/// A streaming campaign reduction: observe campaigns one at a time, merge
/// partial reductions, and finish into a report.
///
/// The contract every implementation upholds (and the sweep machinery
/// relies on):
///
/// - **one-shot equivalence** — `observe` on a fresh accumulator followed
///   by `finish` equals the module's classic `analyze(data)` output;
/// - **merge-tree independence** — folding per-campaign accumulators
///   together in a fixed observation order yields the same report no
///   matter how the merges are grouped, so parallel sweeps are
///   bit-identical at any thread count;
/// - **compactness** — accumulator state holds reduced samples and
///   counters only, never the observed `CampaignData`.
pub trait Reduce {
    /// The finished report type.
    type Report;

    /// Folds one campaign into the accumulator.
    fn observe(&mut self, data: &CampaignData);

    /// Absorbs another accumulator of the same configuration.
    fn merge(&mut self, other: Self);

    /// Produces the final report.
    fn finish(self) -> Self::Report;
}
