//! A node-local, memory-bounded view of the block tree.
//!
//! Ordinary peers do not need full block bodies to participate in gossip
//! and fork choice — headers suffice. `HeaderView` keeps a sliding window
//! of recent headers (parent links, heights, miners, uncle references),
//! delegates fork choice to a pluggable [`Consensus`] engine (the default
//! [`HeaviestChain`] reproduces total-difficulty with first-seen
//! tie-breaking), and supports uncle selection for miner gateways. Entries
//! older than the window are pruned, so per-node memory stays constant no
//! matter how long the simulation runs.

use std::sync::Arc;

use ethmeter_chain::consensus::{Consensus, HeaviestChain, Score};
use ethmeter_chain::uncles::{UnclePolicy, MAX_UNCLES, MAX_UNCLE_DEPTH};
use ethmeter_types::{BlockHash, BlockNumber, FxHashMap, FxHashSet, PoolId};

/// Outcome of offering a header to the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderInsert {
    /// Attached and became the new head.
    NewHead {
        /// True if previously canonical blocks were replaced.
        reorged: bool,
    },
    /// Attached as a side branch.
    SideChain,
    /// Parent unknown; buffered.
    Orphaned,
    /// Already known (attached or buffered).
    Duplicate,
    /// Below the pruning window; ignored.
    TooOld,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    parent: BlockHash,
    number: BlockNumber,
    miner: PoolId,
    /// Header difficulty — kept so orphan-buffered headers can be scored
    /// once their parent attaches.
    difficulty: u64,
    /// Fork-choice score under the view's engine (0 while orphan-buffered).
    score: Score,
}

/// A pruned, header-only block tree.
#[derive(Debug, Clone)]
pub struct HeaderView {
    engine: Arc<dyn Consensus>,
    entries: FxHashMap<BlockHash, Entry>,
    /// canonical hash per height, within the window.
    canonical: FxHashMap<BlockNumber, BlockHash>,
    head: BlockHash,
    head_number: BlockNumber,
    head_score: Score,
    genesis: BlockHash,
    /// Uncles referenced by any block seen (windowed).
    referenced: FxHashSet<BlockHash>,
    /// parent -> waiting headers.
    orphans: FxHashMap<BlockHash, Vec<(BlockHash, Entry, Vec<BlockHash>)>>,
    window: u64,
}

impl HeaderView {
    /// Creates a view rooted at `genesis`, keeping `window` heights of
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if `window` is smaller than the uncle depth (pruning would
    /// break uncle selection).
    pub fn new(genesis: BlockHash, window: u64) -> Self {
        Self::with_consensus(genesis, window, Arc::new(HeaviestChain))
    }

    /// Creates a view rooted at `genesis` whose fork choice is driven by
    /// `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is smaller than the uncle depth.
    pub fn with_consensus(genesis: BlockHash, window: u64, engine: Arc<dyn Consensus>) -> Self {
        assert!(
            window > MAX_UNCLE_DEPTH + 1,
            "window must exceed the uncle depth"
        );
        let mut entries = FxHashMap::default();
        entries.insert(
            genesis,
            Entry {
                parent: BlockHash::ZERO,
                number: 0,
                miner: PoolId(u16::MAX),
                difficulty: 0,
                score: 0,
            },
        );
        let mut canonical = FxHashMap::default();
        canonical.insert(0, genesis);
        HeaderView {
            engine,
            entries,
            canonical,
            head: genesis,
            head_number: 0,
            head_score: 0,
            genesis,
            referenced: FxHashSet::default(),
            orphans: FxHashMap::default(),
            window,
        }
    }

    /// Rewinds the view to a fresh root, keeping every map's allocation
    /// and restoring the default [`HeaviestChain`] engine. Behaviorally
    /// identical to `HeaderView::new(genesis, window)`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is smaller than the uncle depth.
    pub fn reset(&mut self, genesis: BlockHash, window: u64) {
        self.reset_with(genesis, window, Arc::new(HeaviestChain));
    }

    /// Rewinds the view to a fresh root under `engine`, keeping every
    /// map's allocation. Behaviorally identical to
    /// [`HeaderView::with_consensus`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is smaller than the uncle depth.
    pub fn reset_with(&mut self, genesis: BlockHash, window: u64, engine: Arc<dyn Consensus>) {
        assert!(
            window > MAX_UNCLE_DEPTH + 1,
            "window must exceed the uncle depth"
        );
        self.engine = engine;
        self.entries.clear();
        self.entries.insert(
            genesis,
            Entry {
                parent: BlockHash::ZERO,
                number: 0,
                miner: PoolId(u16::MAX),
                difficulty: 0,
                score: 0,
            },
        );
        self.canonical.clear();
        self.canonical.insert(0, genesis);
        self.head = genesis;
        self.head_number = 0;
        self.head_score = 0;
        self.genesis = genesis;
        self.referenced.clear();
        self.orphans.clear();
        self.window = window;
    }

    /// The consensus engine driving this view's fork choice.
    pub fn consensus(&self) -> &Arc<dyn Consensus> {
        &self.engine
    }

    /// The current best block.
    pub fn head(&self) -> BlockHash {
        self.head
    }

    /// The current best height.
    pub fn head_number(&self) -> BlockNumber {
        self.head_number
    }

    /// The genesis hash this view was rooted at.
    pub fn genesis(&self) -> BlockHash {
        self.genesis
    }

    /// True if the view has this header attached.
    pub fn contains(&self, hash: BlockHash) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Number of attached headers currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if only the root remains.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// The canonical hash at `number`, if within the window.
    pub fn canonical_hash(&self, number: BlockNumber) -> Option<BlockHash> {
        self.canonical.get(&number).copied()
    }

    /// True if the hash is canonical at its height.
    pub fn is_canonical(&self, hash: BlockHash) -> bool {
        self.entries
            .get(&hash)
            .is_some_and(|e| self.canonical.get(&e.number) == Some(&hash))
    }

    /// The miner of an attached header.
    pub fn miner_of(&self, hash: BlockHash) -> Option<PoolId> {
        self.entries.get(&hash).map(|e| e.miner)
    }

    /// The height of an attached header.
    pub fn number_of(&self, hash: BlockHash) -> Option<BlockNumber> {
        self.entries.get(&hash).map(|e| e.number)
    }

    /// Offers a header. `difficulty` is the header's own difficulty (fed
    /// to the engine's scoring); `uncles` are the hashes the block
    /// references (they are recorded as globally referenced to prevent
    /// double inclusion).
    pub fn insert(
        &mut self,
        hash: BlockHash,
        parent: BlockHash,
        number: BlockNumber,
        miner: PoolId,
        difficulty: u64,
        uncles: &[BlockHash],
    ) -> HeaderInsert {
        if self.entries.contains_key(&hash) {
            return HeaderInsert::Duplicate;
        }
        if number + self.window <= self.head_number {
            return HeaderInsert::TooOld;
        }
        if self
            .orphans
            .values()
            .any(|v| v.iter().any(|(h, ..)| *h == hash))
        {
            return HeaderInsert::Duplicate;
        }
        let Some(parent_entry) = self.entries.get(&parent).copied() else {
            self.orphans.entry(parent).or_default().push((
                hash,
                Entry {
                    parent,
                    number,
                    miner,
                    difficulty,
                    score: 0,
                },
                uncles.to_vec(),
            ));
            return HeaderInsert::Orphaned;
        };
        if number != parent_entry.number + 1 {
            // Corrupt header; the simulator never produces these, but a
            // defensive view simply drops them.
            return HeaderInsert::Duplicate;
        }
        let result = self.attach(hash, parent, parent_entry, miner, difficulty, uncles);
        // Connect orphans reachable from here (cascade).
        let mut frontier = vec![hash];
        let mut promoted_head = matches!(result, HeaderInsert::NewHead { .. });
        let mut reorged = matches!(result, HeaderInsert::NewHead { reorged: true });
        while let Some(p) = frontier.pop() {
            let Some(waiting) = self.orphans.remove(&p) else {
                continue;
            };
            let parent_entry = self.entries[&p];
            for (h, e, uncles) in waiting {
                if e.number == parent_entry.number + 1 && !self.entries.contains_key(&h) {
                    let r = self.attach(h, p, parent_entry, e.miner, e.difficulty, &uncles);
                    if let HeaderInsert::NewHead { reorged: r2 } = r {
                        promoted_head = true;
                        reorged |= r2;
                    }
                    frontier.push(h);
                }
            }
        }
        if promoted_head {
            HeaderInsert::NewHead { reorged }
        } else {
            result
        }
    }

    fn attach(
        &mut self,
        hash: BlockHash,
        parent: BlockHash,
        parent_entry: Entry,
        miner: PoolId,
        difficulty: u64,
        uncles: &[BlockHash],
    ) -> HeaderInsert {
        let number = parent_entry.number + 1;
        let score = self
            .engine
            .score(parent_entry.score, difficulty, uncles.len());
        self.entries.insert(
            hash,
            Entry {
                parent,
                number,
                miner,
                difficulty,
                score,
            },
        );
        for &u in uncles {
            self.referenced.insert(u);
        }
        if self.engine.prefer(score, hash, self.head_score, self.head) {
            let reorged = self.switch_head(hash, number, score);
            self.prune();
            HeaderInsert::NewHead { reorged }
        } else {
            HeaderInsert::SideChain
        }
    }

    fn switch_head(&mut self, new_head: BlockHash, number: BlockNumber, score: Score) -> bool {
        let mut reorged = false;
        // Update the canonical map along the new head's path until we meet
        // an already-canonical ancestor.
        let mut cur = new_head;
        let mut cur_number = number;
        loop {
            match self.canonical.get(&cur_number) {
                Some(&h) if h == cur => break,
                Some(_) => reorged = true,
                None => {}
            }
            self.canonical.insert(cur_number, cur);
            let Some(e) = self.entries.get(&cur) else {
                break;
            };
            if cur_number == 0 {
                break;
            }
            cur = e.parent;
            cur_number -= 1;
            if !self.entries.contains_key(&cur) {
                break; // walked past the pruning horizon
            }
        }
        self.head = new_head;
        self.head_number = number;
        self.head_score = score;
        reorged
    }

    fn prune(&mut self) {
        let Some(cutoff) = self.head_number.checked_sub(self.window) else {
            return;
        };
        self.entries.retain(|_, e| e.number > cutoff);
        self.canonical.retain(|&n, _| n > cutoff);
        self.orphans.retain(|_, v| {
            v.retain(|(_, e, _)| e.number > cutoff);
            !v.is_empty()
        });
        // `referenced` is allowed to keep stale hashes; they can never be
        // candidates again because candidates come from `entries`.
        if self.referenced.len() > 4 * self.window as usize {
            // detlint::allow(unordered-iter, reason = "keys feed a membership set used only for contains(); iteration order cannot affect the result")
            let live: FxHashSet<BlockHash> = self.entries.keys().copied().collect();
            self.referenced.retain(|h| live.contains(h));
        }
    }

    /// The ancestor of `hash` at `number`, while within the window.
    pub fn ancestor_at(&self, hash: BlockHash, number: BlockNumber) -> Option<BlockHash> {
        let mut e = self.entries.get(&hash)?;
        let mut cur = hash;
        if number > e.number {
            return None;
        }
        while e.number > number {
            cur = e.parent;
            e = self.entries.get(&cur)?;
        }
        Some(cur)
    }

    /// Selects up to [`MAX_UNCLES`] valid uncles for a block that would
    /// extend `parent`, under `policy` — the gateway-side mirror of
    /// [`ethmeter_chain::uncles::select_uncles`].
    pub fn select_uncles(&self, parent: BlockHash, policy: UnclePolicy) -> Vec<BlockHash> {
        let Some(p) = self.entries.get(&parent) else {
            return Vec::new();
        };
        let new_number = p.number + 1;
        let min_number = new_number.saturating_sub(MAX_UNCLE_DEPTH);
        let mut candidates: Vec<(BlockNumber, BlockHash)> = self
            .entries
            .iter()
            .filter(|(h, e)| {
                e.number >= min_number
                    && e.number < new_number
                    && !self.referenced.contains(*h)
                    // not on the parent's chain
                    && self.ancestor_at(parent, e.number) != Some(**h)
                    // uncle's parent must be on the parent's chain
                    && self.ancestor_at(parent, e.number.saturating_sub(1)) == Some(e.parent)
            })
            .filter(|(h, e)| {
                policy == UnclePolicy::Standard || {
                    // ForbidSameMinerHeight: main-chain block at the uncle's
                    // height must come from a different miner.
                    let _ = h;
                    self.ancestor_at(parent, e.number)
                        .and_then(|m| self.entries.get(&m))
                        .is_none_or(|main| main.miner != e.miner)
                }
            })
            .map(|(h, e)| (e.number, *h))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates
            .into_iter()
            .take(MAX_UNCLES)
            .map(|(_, h)| h)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> BlockHash {
        BlockHash::mix(n)
    }

    fn linear(
        view: &mut HeaderView,
        from: BlockHash,
        start: BlockNumber,
        n: u64,
    ) -> Vec<BlockHash> {
        let mut out = Vec::new();
        let mut parent = from;
        for i in 0..n {
            let hash = h(1000 + start + i);
            let r = view.insert(hash, parent, start + i, PoolId(0), 1, &[]);
            assert!(matches!(r, HeaderInsert::NewHead { .. }), "{r:?}");
            out.push(hash);
            parent = hash;
        }
        out
    }

    #[test]
    fn linear_growth_moves_head() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let chain = linear(&mut v, g, 1, 5);
        assert_eq!(v.head(), chain[4]);
        assert_eq!(v.head_number(), 5);
        assert!(v.is_canonical(chain[2]));
        assert_eq!(v.canonical_hash(3), Some(chain[2]));
    }

    #[test]
    fn side_chain_and_reorg() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        // a1, a2
        let a = linear(&mut v, g, 1, 2);
        // Fork from genesis.
        let b1 = h(501);
        assert_eq!(
            v.insert(b1, g, 1, PoolId(1), 1, &[]),
            HeaderInsert::SideChain
        );
        let b2 = h(502);
        assert_eq!(
            v.insert(b2, b1, 2, PoolId(1), 1, &[]),
            HeaderInsert::SideChain
        );
        let b3 = h(503);
        assert_eq!(
            v.insert(b3, b2, 3, PoolId(1), 1, &[]),
            HeaderInsert::NewHead { reorged: true }
        );
        assert_eq!(v.head(), b3);
        assert!(v.is_canonical(b1));
        assert!(!v.is_canonical(a[0]));
    }

    #[test]
    fn orphan_buffer_connects() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let c1 = h(1);
        let c2 = h(2);
        assert_eq!(
            v.insert(c2, c1, 2, PoolId(0), 1, &[]),
            HeaderInsert::Orphaned
        );
        assert_eq!(
            v.insert(c2, c1, 2, PoolId(0), 1, &[]),
            HeaderInsert::Duplicate
        );
        let r = v.insert(c1, g, 1, PoolId(0), 1, &[]);
        assert_eq!(r, HeaderInsert::NewHead { reorged: false });
        assert_eq!(v.head(), c2);
        assert_eq!(v.head_number(), 2);
    }

    #[test]
    fn pruning_bounds_memory() {
        let g = h(0);
        let mut v = HeaderView::new(g, 16);
        linear(&mut v, g, 1, 200);
        assert!(v.len() <= 17, "len {}", v.len());
        assert_eq!(v.head_number(), 200);
        // Ancient inserts are refused.
        assert_eq!(
            v.insert(h(9999), g, 1, PoolId(0), 1, &[]),
            HeaderInsert::TooOld
        );
    }

    #[test]
    fn uncle_selection_on_view() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let main = linear(&mut v, g, 1, 3);
        // A competing block at height 1 by another miner.
        let f1 = h(700);
        v.insert(f1, g, 1, PoolId(1), 1, &[]);
        let picked = v.select_uncles(v.head(), UnclePolicy::Standard);
        assert_eq!(picked, vec![f1]);
        // Once referenced, it is no longer a candidate.
        let n4 = h(800);
        v.insert(n4, main[2], 4, PoolId(0), 1, &[f1]);
        assert!(v.select_uncles(v.head(), UnclePolicy::Standard).is_empty());
    }

    #[test]
    fn uncle_depth_window_respected() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let f1 = h(700);
        let main = linear(&mut v, g, 1, 7);
        v.insert(f1, g, 1, PoolId(1), 1, &[]);
        // From head at 7, a new block at 8 has gap 7 to f1: too deep.
        assert!(v.select_uncles(main[6], UnclePolicy::Standard).is_empty());
        // From the block at height 6 (new number 7, gap 6): valid.
        assert_eq!(v.select_uncles(main[5], UnclePolicy::Standard), vec![f1]);
    }

    #[test]
    fn same_miner_policy_on_view() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let main = linear(&mut v, g, 1, 1); // miner 0 at height 1
        let dup = h(700);
        v.insert(dup, g, 1, PoolId(0), 1, &[]); // same miner duplicate
        assert_eq!(v.select_uncles(main[0], UnclePolicy::Standard), vec![dup]);
        assert!(v
            .select_uncles(main[0], UnclePolicy::ForbidSameMinerHeight)
            .is_empty());
    }

    #[test]
    fn second_fork_block_not_a_candidate() {
        let g = h(0);
        let mut v = HeaderView::new(g, 64);
        let main = linear(&mut v, g, 1, 4);
        let f1 = h(700);
        let f2 = h(701);
        v.insert(f1, g, 1, PoolId(1), 1, &[]);
        v.insert(f2, f1, 2, PoolId(1), 1, &[]);
        let picked = v.select_uncles(main[3], UnclePolicy::Standard);
        assert_eq!(picked, vec![f1], "f2's parent is off-chain");
    }
}
