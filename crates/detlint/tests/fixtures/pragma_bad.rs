// Fixture: malformed pragmas — missing reason, unknown rule.
use std::collections::HashMap;

fn missing_reason() {
    // detlint::allow(default-hasher)
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}

fn unknown_rule() {
    // detlint::allow(no-such-rule, reason = "this rule does not exist")
    let x = 1;
    let _ = x;
}
