//! Inter-region propagation latency.
//!
//! One-way base delays between the eight [`Region`]s, calibrated to public
//! backbone measurements (WonderNetwork/iPlane-style city-pair RTTs,
//! halved for one-way). Each sampled link delay is
//! `base * jitter` where `jitter ~ LogNormal(median = 1, sigma)`, so the
//! typical path sees the base delay and a heavy-ish tail models transient
//! congestion and detours.

use ethmeter_sim::dist::LogNormal;
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{Region, SimDuration};

/// Base one-way delays in milliseconds between region pairs.
///
/// Row/column order follows [`Region::ALL`]:
/// NA, EA, WE, CE, EE, SA (South Asia), SAm (South America), OC (Oceania).
/// The matrix is symmetric; the diagonal is the intra-region delay.
const BASE_ONE_WAY_MS: [[f64; Region::COUNT]; Region::COUNT] = [
    //  NA     EA     WE     CE     EE     SA     SAm    OC
    [18.0, 75.0, 42.0, 50.0, 60.0, 95.0, 65.0, 80.0], // NA
    [75.0, 14.0, 95.0, 100.0, 85.0, 45.0, 140.0, 60.0], // EA
    [42.0, 95.0, 8.0, 12.0, 25.0, 70.0, 95.0, 130.0], // WE
    [50.0, 100.0, 12.0, 9.0, 18.0, 65.0, 105.0, 135.0], // CE
    [60.0, 85.0, 25.0, 18.0, 15.0, 55.0, 115.0, 120.0], // EE
    [95.0, 45.0, 70.0, 65.0, 55.0, 20.0, 160.0, 75.0], // SA
    [65.0, 140.0, 95.0, 105.0, 115.0, 160.0, 22.0, 150.0], // SAm
    [80.0, 60.0, 130.0, 135.0, 120.0, 75.0, 150.0, 16.0], // OC
];

/// Samples one-way network delays between regions.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    base_ms: [[f64; Region::COUNT]; Region::COUNT],
    jitter: LogNormal,
    /// Minimum floor applied to every sample, modeling last-mile and stack
    /// overheads that even co-located peers pay.
    floor: SimDuration,
}

impl LatencyModel {
    /// Creates a model with the built-in backbone matrix and the given
    /// jitter shape (`sigma` of a unit-median log-normal).
    ///
    /// # Panics
    ///
    /// Panics if `jitter_sigma` is negative.
    pub fn with_jitter(jitter_sigma: f64) -> Self {
        LatencyModel {
            base_ms: BASE_ONE_WAY_MS,
            jitter: LogNormal::with_median(1.0, jitter_sigma),
            floor: SimDuration::from_millis(1),
        }
    }

    /// Replaces the base matrix (for what-if topologies and tests).
    ///
    /// # Panics
    ///
    /// Panics if any entry is negative or the matrix is not symmetric.
    pub fn with_base_matrix(mut self, base_ms: [[f64; Region::COUNT]; Region::COUNT]) -> Self {
        for (i, row) in base_ms.iter().enumerate() {
            for (j, &delay) in row.iter().enumerate() {
                assert!(delay >= 0.0, "negative base delay");
                assert!(
                    (delay - base_ms[j][i]).abs() < 1e-9,
                    "latency matrix must be symmetric"
                );
            }
        }
        self.base_ms = base_ms;
        self
    }

    /// The deterministic base one-way delay between two regions.
    pub fn base(&self, from: Region, to: Region) -> SimDuration {
        SimDuration::from_millis_f64(self.base_ms[from.index()][to.index()])
    }

    /// A hard lower bound on every delay this model can ever sample: the
    /// floor applied in [`LatencyModel::sample`]. The log-normal jitter is
    /// unbounded *below* (a multiplier arbitrarily close to zero), so the
    /// floor — not the base matrix — is the only sound bound. The parallel
    /// engine derives its conservative lookahead window from this: no
    /// cross-shard message can arrive sooner than `min_delay` plus fixed
    /// processing overheads, even on zero-latency what-if matrices.
    pub fn min_delay(&self) -> SimDuration {
        self.floor
    }

    /// Samples a one-way delay for a single message on the `from -> to`
    /// path: `max(floor, base * jitter)`.
    pub fn sample(&self, rng: &mut Xoshiro256, from: Region, to: Region) -> SimDuration {
        let base = self.base_ms[from.index()][to.index()];
        let jit = self.jitter.sample(rng);
        let ms = base * jit;
        let d = SimDuration::from_millis_f64(ms);
        if d < self.floor {
            self.floor
        } else {
            d
        }
    }

    /// Scales every base entry by `factor` (ablation: "what if the backbone
    /// were uniformly faster/slower?").
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        for row in &mut self.base_ms {
            for v in row.iter_mut() {
                *v *= factor;
            }
        }
        self
    }
}

impl Default for LatencyModel {
    /// The calibrated default: backbone matrix with `sigma = 0.45` jitter
    /// (heavy enough that the p99 of a path is ~3x its median, matching
    /// the 74ms-median / 317ms-p99 spread of the paper's Figure 1).
    fn default() -> Self {
        LatencyModel::with_jitter(0.45)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matrix_is_symmetric_and_triangleish() {
        let m = LatencyModel::default();
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(m.base(a, b), m.base(b, a));
            }
        }
        // Intra-region is cheapest from each region.
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(m.base(a, a) < m.base(a, b), "{a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn samples_center_on_base() {
        let m = LatencyModel::default();
        let mut rng = Xoshiro256::seed_from_u64(42);
        let base = m.base(Region::WesternEurope, Region::EasternAsia);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += m
                .sample(&mut rng, Region::WesternEurope, Region::EasternAsia)
                .as_millis_f64();
        }
        let mean = sum / n as f64;
        // Unit-median LogNormal(0, sigma) has mean exp(sigma^2/2); the
        // default model uses sigma = 0.45.
        let expected = base.as_millis_f64() * (0.45f64 * 0.45 / 2.0).exp();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn floor_applies_to_tiny_links() {
        let mut m = LatencyModel::with_jitter(0.0);
        m.base_ms = [[0.0; Region::COUNT]; Region::COUNT];
        let mut rng = Xoshiro256::seed_from_u64(1);
        let d = m.sample(&mut rng, Region::NorthAmerica, Region::NorthAmerica);
        assert_eq!(d, SimDuration::from_millis(1));
    }

    #[test]
    fn scaling_scales_base() {
        let m = LatencyModel::default().scaled(2.0);
        assert_eq!(
            m.base(Region::NorthAmerica, Region::EasternAsia)
                .as_millis(),
            150
        );
    }

    #[test]
    fn vantage_pairs_match_paper_scale() {
        // Sanity: the four vantage regions should span ~10-100ms one-way,
        // the regime in which the paper's 74ms median propagation lives.
        let m = LatencyModel::default();
        for a in Region::VANTAGE {
            for b in Region::VANTAGE {
                if a != b {
                    let ms = m.base(a, b).as_millis();
                    assert!((10..=120).contains(&ms), "{a}->{b} = {ms}ms");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let mut bad = BASE_ONE_WAY_MS;
        bad[0][1] += 1.0;
        let _ = LatencyModel::default().with_base_matrix(bad);
    }
}
