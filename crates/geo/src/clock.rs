//! NTP clock-offset model for measurement nodes.
//!
//! The paper timestamps every log record with the *local* clock and relies
//! on NTP discipline: "NTP provides offsets lesser than 100ms in 99% of
//! cases and lesser than 10ms in 90% of cases" (§II, citing Murta et al.).
//! We reproduce exactly that error envelope: each observer gets a slowly
//! drifting offset drawn from a two-component mixture, and analyses that
//! compare timestamps across observers inherit the resulting uncertainty —
//! the error bars of Figure 2.

use ethmeter_sim::dist::{Mixture2, Normal};
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{SimDuration, SimTime};

/// Distribution of NTP offsets for observer clocks.
#[derive(Debug, Clone, Copy)]
pub struct ClockModel {
    offset_ms: Mixture2,
    /// How often the offset re-converges to a new value (NTP poll cadence).
    repoll: SimDuration,
}

impl ClockModel {
    /// Creates the paper-calibrated model: 90% of offsets under 10 ms, 99%
    /// under 100 ms, re-polled at NTP's default 64-second cadence (so a
    /// single tail draw biases at most one poll interval, as in reality).
    pub fn ntp_default() -> Self {
        ClockModel {
            // Core sigma 4ms => |offset| < 10ms with p ~ 0.987 within the
            // core; tail sigma 40ms => |offset| < 100ms with p ~ 0.988.
            // Mixed 90/10 this lands on the paper's envelope.
            offset_ms: Mixture2::new(Normal::new(0.0, 4.0), Normal::new(0.0, 40.0), 0.1),
            repoll: SimDuration::from_secs(64),
        }
    }

    /// A perfect clock (for ablations isolating measurement error).
    pub fn perfect() -> Self {
        ClockModel {
            offset_ms: Mixture2::new(Normal::new(0.0, 0.0), Normal::new(0.0, 0.0), 0.0),
            repoll: SimDuration::from_hours(24 * 365),
        }
    }

    /// The NTP re-poll interval.
    pub fn repoll_interval(&self) -> SimDuration {
        self.repoll
    }

    /// Draws a fresh offset in nanoseconds (positive = clock runs ahead).
    pub fn sample_offset_nanos(&self, rng: &mut Xoshiro256) -> i64 {
        let ms = self.offset_ms.sample(rng);
        (ms * 1e6) as i64
    }

    /// Creates a per-node skew process seeded from `rng`.
    pub fn skew(&self, rng: &mut Xoshiro256) -> ClockSkew {
        ClockSkew {
            model: *self,
            current_offset_nanos: self.sample_offset_nanos(rng),
            next_repoll: SimTime::ZERO + self.repoll,
        }
    }
}

/// The evolving clock offset of one node.
///
/// `read(true_time)` converts simulator ("true") time into the node's local
/// timestamp, re-drawing the offset at NTP poll boundaries.
#[derive(Debug, Clone)]
pub struct ClockSkew {
    model: ClockModel,
    current_offset_nanos: i64,
    next_repoll: SimTime,
}

impl ClockSkew {
    /// The node's current offset from true time, in nanoseconds.
    pub fn offset_nanos(&self) -> i64 {
        self.current_offset_nanos
    }

    /// Reads the local clock at true instant `now`, advancing the offset
    /// process across NTP re-polls.
    pub fn read(&mut self, now: SimTime, rng: &mut Xoshiro256) -> SimTime {
        while now >= self.next_repoll {
            self.current_offset_nanos = self.model.sample_offset_nanos(rng);
            self.next_repoll += self.model.repoll;
        }
        now.offset_by(self.current_offset_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_paper_envelope() {
        let model = ClockModel::ntp_default();
        let mut rng = Xoshiro256::seed_from_u64(7);
        let n = 200_000;
        let mut under10 = 0;
        let mut under100 = 0;
        for _ in 0..n {
            let off_ms = model.sample_offset_nanos(&mut rng).abs() as f64 / 1e6;
            if off_ms < 10.0 {
                under10 += 1;
            }
            if off_ms < 100.0 {
                under100 += 1;
            }
        }
        let f10 = under10 as f64 / n as f64;
        let f100 = under100 as f64 / n as f64;
        assert!(f10 >= 0.88, "P(|off|<10ms) = {f10}");
        assert!(f100 >= 0.985, "P(|off|<100ms) = {f100}");
    }

    #[test]
    fn perfect_clock_reads_true_time() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut skew = ClockModel::perfect().skew(&mut rng);
        let t = SimTime::from_secs(12345);
        assert_eq!(skew.read(t, &mut rng), t);
        assert_eq!(skew.offset_nanos(), 0);
    }

    #[test]
    fn skew_repolls_over_time() {
        let model = ClockModel::ntp_default();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut skew = model.skew(&mut rng);
        let first = skew.offset_nanos();
        // After many re-poll intervals the offset must have changed at least
        // once (astronomically unlikely otherwise).
        let mut changed = false;
        for k in 1..=50u64 {
            let t = SimTime::ZERO + model.repoll_interval() * k;
            let _ = skew.read(t, &mut rng);
            if skew.offset_nanos() != first {
                changed = true;
                break;
            }
        }
        assert!(changed, "offset never re-polled");
    }

    #[test]
    fn local_time_is_monotone_between_polls() {
        let model = ClockModel::ntp_default();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut skew = model.skew(&mut rng);
        let a = skew.read(SimTime::from_secs(1), &mut rng);
        let b = skew.read(SimTime::from_secs(2), &mut rng);
        assert!(b > a);
    }
}
