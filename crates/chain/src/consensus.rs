//! Pluggable consensus engines: fork-choice scoring, head preference,
//! block validation, and uncle/reward policy behind one object-safe trait.
//!
//! The paper's measurements all sit on Ethereum's heaviest-chain
//! (total-difficulty) rule, but its §V mitigation discussion — and the
//! adversarial-behavior experiments layered on top — ask what happens to
//! fork rates, commit times, and selfish-mining revenue when the *rule*
//! changes. [`Consensus`] factors every protocol decision the block tree
//! makes out of [`crate::tree::BlockTree`]:
//!
//! - **scoring** ([`Consensus::score`]): the fork-choice weight of a block
//!   given its parent's weight, replacing the hardcoded total-difficulty
//!   accumulation;
//! - **head selection** ([`Consensus::prefer`]): whether a candidate
//!   `(score, hash)` displaces the incumbent head;
//! - **validation** ([`Consensus::validate`]): the structural check a
//!   block must pass before attaching (height continuity by default);
//! - **uncle policy** ([`Consensus::uncle_policy`] /
//!   [`Consensus::rewards_uncles`]): which uncle references are legal and
//!   whether the reward schedule credits them;
//! - **confirmation depths** ([`Consensus::safe_depth`] /
//!   [`Consensus::finalized_depth`]): the head/safe/finalized markers of
//!   the fork-choice tree.
//!
//! Three engines ship: [`HeaviestChain`] (the default — bit-identical to
//! the historical hardcoded rule and pinned by the campaign goldens),
//! [`LongestChain`], and the uncle-weighted [`UncleGhost`]. Scenario
//! plumbing selects one via the serializable [`ConsensusKind`].
//!
//! # Determinism
//!
//! [`HeaviestChain`] keeps Geth's first-seen tie-break (a tie keeps the
//! incumbent), which makes its head depend on insertion order — exactly
//! the behavior the simulator measures and the goldens pin. Every
//! *non-default* engine must instead order candidates by the total order
//! `(score, hash)`: head selection then becomes an incremental argmax,
//! independent of insertion order and of the merge tree of the sharded
//! engine. See DETERMINISM.md ("Fork-choice tie-breaks").

use std::fmt;
use std::sync::Arc;

use ethmeter_types::BlockHash;

use crate::block::Block;
use crate::tree::InsertError;
use crate::uncles::UnclePolicy;

/// The fork-choice score of a block. Concrete (not an associated type) so
/// [`Consensus`] stays object-safe and engines remain freely swappable at
/// runtime; `u128` holds any additive accumulation a campaign can reach.
pub type Score = u128;

/// A consensus engine: every protocol decision a block tree delegates.
///
/// Implementations must be stateless value objects (`Send + Sync`) — all
/// chain state lives in the tree; the engine is pure policy. The trait is
/// object-safe and is threaded through the simulator as an
/// `Arc<dyn Consensus>`.
pub trait Consensus: fmt::Debug + Send + Sync {
    /// Short stable identifier (used in reports, JSON, and CLI output).
    fn name(&self) -> &'static str;

    /// Fork-choice score of a block, from its parent's score, its own
    /// difficulty, and the number of uncles it references.
    fn score(&self, parent_score: Score, difficulty: u64, uncle_count: usize) -> Score;

    /// Head-selection rule: true if the candidate should displace the
    /// incumbent head.
    ///
    /// The default is Ethereum's rule under constant difficulty: a
    /// strictly greater score wins, ties keep the incumbent (first-seen).
    /// Non-default engines should override this with the `(score, hash)`
    /// total order (see the module docs on determinism).
    fn prefer(
        &self,
        candidate: Score,
        candidate_hash: BlockHash,
        incumbent: Score,
        incumbent_hash: BlockHash,
    ) -> bool {
        let _ = (candidate_hash, incumbent_hash);
        candidate > incumbent
    }

    /// Structural validation of a block against its (attached) parent,
    /// run before the block joins the tree. The default enforces height
    /// continuity (`number == parent.number + 1`).
    fn validate(&self, block: &Block, parent: &Block) -> Result<(), InsertError> {
        let expected = parent.number() + 1;
        if block.number() != expected {
            return Err(InsertError::HeightMismatch {
                hash: block.hash(),
                expected,
                got: block.number(),
            });
        }
        Ok(())
    }

    /// The engine-level uncle-reference policy. [`UnclePolicy::Standard`]
    /// defers to the per-pool strategy; a stricter policy overrides it
    /// network-wide (the paper's §V mitigation as a protocol rule).
    fn uncle_policy(&self) -> UnclePolicy {
        UnclePolicy::Standard
    }

    /// Whether the reward schedule credits uncle and nephew rewards.
    /// Engines without uncle semantics (pure longest-chain) return false
    /// and the revenue analysis pays block rewards and fees only.
    fn rewards_uncles(&self) -> bool {
        true
    }

    /// Confirmations behind the head at which a block is considered
    /// *safe* (unlikely to revert under honest-majority conditions).
    fn safe_depth(&self) -> u64 {
        6
    }

    /// Confirmations behind the head at which a block is considered
    /// *finalized* by this engine's confirmation rule.
    fn finalized_depth(&self) -> u64 {
        12
    }
}

/// Ethereum's heaviest-chain (total-difficulty) rule — the default engine,
/// bit-identical to the historical hardcoded fork choice and pinned by the
/// campaign golden fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeaviestChain;

impl Consensus for HeaviestChain {
    fn name(&self) -> &'static str {
        "heaviest"
    }

    fn score(&self, parent_score: Score, difficulty: u64, _uncle_count: usize) -> Score {
        parent_score + Score::from(difficulty)
    }
}

/// Pure longest-chain fork choice: every block weighs 1 regardless of
/// difficulty, uncles carry no weight and earn no rewards. Ties break on
/// the `(score, hash)` total order, so the head is insertion-order
/// independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LongestChain;

impl Consensus for LongestChain {
    fn name(&self) -> &'static str {
        "longest"
    }

    fn score(&self, parent_score: Score, _difficulty: u64, _uncle_count: usize) -> Score {
        parent_score + 1
    }

    fn prefer(
        &self,
        candidate: Score,
        candidate_hash: BlockHash,
        incumbent: Score,
        incumbent_hash: BlockHash,
    ) -> bool {
        (candidate, candidate_hash) > (incumbent, incumbent_hash)
    }

    fn rewards_uncles(&self) -> bool {
        false
    }
}

/// An uncle-weighted GHOST variant: a block's weight is its difficulty
/// multiplied by `1 + uncles referenced`, so branches that absorb orphans
/// accumulate weight faster — the inclusive-protocol family the paper's
/// §V mitigation discussion points toward. Ties break on the
/// `(score, hash)` total order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncleGhost;

impl Consensus for UncleGhost {
    fn name(&self) -> &'static str {
        "uncle-ghost"
    }

    fn score(&self, parent_score: Score, difficulty: u64, uncle_count: usize) -> Score {
        parent_score + Score::from(difficulty) * (1 + uncle_count as Score)
    }

    fn prefer(
        &self,
        candidate: Score,
        candidate_hash: BlockHash,
        incumbent: Score,
        incumbent_hash: BlockHash,
    ) -> bool {
        (candidate, candidate_hash) > (incumbent, incumbent_hash)
    }
}

/// Serializable selector for the shipped engines — the form scenarios and
/// grid axes carry (an `Arc<dyn Consensus>` is neither `PartialEq` nor
/// meaningfully printable, a `ConsensusKind` is both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ConsensusKind {
    /// [`HeaviestChain`] — the golden-pinned default.
    #[default]
    Heaviest,
    /// [`LongestChain`].
    Longest,
    /// [`UncleGhost`].
    UncleGhost,
}

impl ConsensusKind {
    /// Every shipped engine, in declaration order.
    pub const ALL: [ConsensusKind; 3] = [
        ConsensusKind::Heaviest,
        ConsensusKind::Longest,
        ConsensusKind::UncleGhost,
    ];

    /// Instantiates the engine.
    pub fn build(self) -> Arc<dyn Consensus> {
        match self {
            ConsensusKind::Heaviest => Arc::new(HeaviestChain),
            ConsensusKind::Longest => Arc::new(LongestChain),
            ConsensusKind::UncleGhost => Arc::new(UncleGhost),
        }
    }
}

impl fmt::Display for ConsensusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConsensusKind::Heaviest => "heaviest",
            ConsensusKind::Longest => "longest",
            ConsensusKind::UncleGhost => "uncle-ghost",
        })
    }
}

impl std::str::FromStr for ConsensusKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heaviest" => Ok(ConsensusKind::Heaviest),
            "longest" => Ok(ConsensusKind::Longest),
            "uncle-ghost" | "ghost" => Ok(ConsensusKind::UncleGhost),
            other => Err(format!(
                "unknown consensus engine {other:?} (expected heaviest, longest, or uncle-ghost)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use ethmeter_types::PoolId;

    /// Trait-conformance checks shared by every shipped engine.
    fn conformance(kind: ConsensusKind) {
        let engine = kind.build();
        assert_eq!(engine.name(), kind.to_string());
        // Round-trips through the CLI form.
        assert_eq!(kind.to_string().parse::<ConsensusKind>(), Ok(kind));

        // Scores are monotone in the parent score.
        let lo = engine.score(0, 1, 0);
        let hi = engine.score(lo, 1, 0);
        assert!(hi > lo, "{kind}: score must strictly increase");

        // prefer is a strict order: never prefer a candidate over itself.
        let h = BlockHash::mix(7);
        assert!(!engine.prefer(lo, h, lo, h), "{kind}: irreflexive");
        // A strictly greater score always wins, regardless of hashes.
        let (a, b) = (BlockHash::mix(1), BlockHash::mix(2));
        assert!(engine.prefer(hi, a, lo, b));
        assert!(engine.prefer(hi, b, lo, a));
        assert!(!engine.prefer(lo, a, hi, b));

        // Default validation enforces height continuity.
        let parent = BlockBuilder::new(BlockHash::ZERO, 0, PoolId(0)).build();
        let ok = BlockBuilder::new(parent.hash(), 1, PoolId(0)).build();
        let bad = BlockBuilder::new(parent.hash(), 5, PoolId(0)).build();
        assert!(engine.validate(&ok, &parent).is_ok());
        assert!(matches!(
            engine.validate(&bad, &parent),
            Err(InsertError::HeightMismatch {
                expected: 1,
                got: 5,
                ..
            })
        ));

        // Depth markers are sane: safe no deeper than finalized.
        assert!(engine.safe_depth() <= engine.finalized_depth());
    }

    #[test]
    fn all_engines_conform() {
        for kind in ConsensusKind::ALL {
            conformance(kind);
        }
    }

    #[test]
    fn heaviest_matches_the_historical_rule() {
        let e = HeaviestChain;
        // score = parent + difficulty, uncles ignored.
        assert_eq!(e.score(10, 3, 2), 13);
        // Strictly-greater wins; ties keep the incumbent whatever the
        // hashes say — the first-seen behavior the goldens pin.
        let (a, b) = (BlockHash::mix(1), BlockHash::mix(2));
        assert!(e.prefer(11, a, 10, b));
        assert!(!e.prefer(10, a, 10, b));
        assert!(!e.prefer(10, b, 10, a));
        assert!(e.rewards_uncles());
        assert_eq!(e.uncle_policy(), UnclePolicy::Standard);
    }

    #[test]
    fn longest_counts_blocks_not_difficulty() {
        let e = LongestChain;
        assert_eq!(e.score(4, 1_000, 2), 5);
        assert!(!e.rewards_uncles());
        // Ties break on hash: exactly one orientation wins.
        let (a, b) = (BlockHash::mix(1), BlockHash::mix(2));
        assert_ne!(e.prefer(5, a, 5, b), e.prefer(5, b, 5, a));
    }

    #[test]
    fn ghost_weights_uncles() {
        let e = UncleGhost;
        assert_eq!(e.score(0, 1, 0), 1);
        assert_eq!(e.score(0, 1, 2), 3);
        // Same chain with more referenced uncles outweighs a longer bare
        // chain of equal difficulty.
        let with_uncles = e.score(e.score(0, 1, 2), 1, 1);
        let bare = e.score(e.score(e.score(0, 1, 0), 1, 0), 1, 0);
        assert!(with_uncles > bare);
        assert!(e.rewards_uncles());
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!(
            "ghost".parse::<ConsensusKind>(),
            Ok(ConsensusKind::UncleGhost)
        );
        assert!("casper".parse::<ConsensusKind>().is_err());
        assert_eq!(ConsensusKind::default(), ConsensusKind::Heaviest);
        assert_eq!(ConsensusKind::ALL.len(), 3);
    }
}
