//! The discrete-event simulation world.
//!
//! [`SimWorld`] owns every entity of a campaign — the P2P nodes (ordinary
//! peers, pool gateways, instrumented observers), the global block and
//! transaction registries, the ground-truth block tree, the mining races,
//! and the workload generator — and interprets the [`Event`] alphabet for
//! the [`ethmeter_sim::Engine`].
//!
//! Storage is dense end to end: blocks and transactions are interned into
//! contiguous slots at creation time ([`ethmeter_chain::BlockRegistry`] /
//! [`ethmeter_chain::TxRegistry`]), events carry those slots, nodes and
//! pools live in `Vec`s addressed by raw [`NodeId`]/[`PoolId`] indices,
//! and per-node gossip state is slab-indexed (see [`ethmeter_net::Node`]).
//! Real hashes appear exactly where the outside world looks: wire
//! messages and observer logs.
//!
//! Timing model per message: fixed processing overhead + sender-uplink
//! serialization + sampled geographic link latency + receiver-downlink
//! serialization. Block imports additionally pay a validation delay that
//! grows with transaction count (why empty blocks win races), and pools
//! re-target their miners a sampled lag after their gateway switches heads
//! (the stale-mining window behind the fork rate).

use std::collections::HashSet;

use ethmeter_chain::block::{Block, BlockBuilder};
use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::Transaction;
use ethmeter_chain::{BlockRegistry, TxRegistry};
use ethmeter_geo::{BandwidthClass, ClockSkew};
use ethmeter_measure::{BlockMsgKind, ObserverLog, VantagePoint};
use ethmeter_mining::{next_block_delay, BlockPlan, PoolDirectory};
use ethmeter_net::topology::DegreePlan;
use ethmeter_net::{ImportAction, Message, Node, Send, Topology};
use ethmeter_sim::dist::{Exp, LogNormal};
use ethmeter_sim::engine::Scheduler;
use ethmeter_sim::{World, Xoshiro256};
use ethmeter_types::{
    BlockHash, BlockIdx, BlockNumber, ByteSize, NodeId, PoolId, Region, SimDuration, SimTime, TxId,
    TxIdx,
};

use crate::scenario::Scenario;

/// The event alphabet of a campaign.
///
/// Block- and transaction-bearing events carry dense registry slots
/// ([`BlockIdx`]/[`TxIdx`]); wire [`Message`]s keep real hashes.
#[derive(Debug, Clone)]
pub enum Event {
    /// A message arrives at a node.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// A node finishes validating/importing a block.
    ImportDone {
        /// The importing node.
        node: NodeId,
        /// The block's registry slot.
        idx: BlockIdx,
    },
    /// A fetcher timeout fires.
    FetchTimeout {
        /// The fetching node.
        node: NodeId,
        /// The fetched block's registry slot.
        idx: BlockIdx,
    },
    /// A pool's miners solve a block at their current target.
    PoolSolve {
        /// The pool.
        pool: PoolId,
    },
    /// A pool re-reads its primary gateway's head (post-lag).
    PoolRetarget {
        /// The pool.
        pool: PoolId,
    },
    /// A freshly mined block reaches one of the pool's gateways.
    InjectBlock {
        /// The gateway node.
        node: NodeId,
        /// The block's registry slot.
        idx: BlockIdx,
    },
    /// The workload generator plans its next submission.
    NextSubmission,
    /// A planned transaction enters the network at its origin node.
    InjectTx {
        /// The transaction's registry slot.
        idx: TxIdx,
    },
}

/// Counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages delivered.
    pub messages: u64,
    /// Bytes moved (wire sizes).
    pub bytes: u64,
    /// Blocks produced by miners (including duplicates/malfunctions).
    pub blocks_produced: u64,
    /// Duplicate (one-miner fork) blocks produced.
    pub duplicates_produced: u64,
    /// Transactions submitted.
    pub txs_submitted: u64,
    /// Block imports completed across all nodes.
    pub imports: u64,
}

impl RunStats {
    /// Field-wise accumulation, used to aggregate sweeps of campaigns.
    pub fn merge(&mut self, other: &RunStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.blocks_produced += other.blocks_produced;
        self.duplicates_produced += other.duplicates_produced;
        self.txs_submitted += other.txs_submitted;
        self.imports += other.imports;
    }
}

#[derive(Debug, Clone)]
struct DupState {
    parent: BlockHash,
    height: BlockNumber,
    original: BlockHash,
    same_txs: bool,
    txs: Vec<TxId>,
}

struct ObserverState {
    skew: ClockSkew,
}

/// Per-pool mining state, addressed by raw [`PoolId`] index.
struct PoolState {
    /// The pool's gateway nodes (primary first).
    gateways: Vec<NodeId>,
    /// `(parent, height)` the pool's miners currently work on.
    target: (BlockHash, BlockNumber),
    /// Live duplication episode, if any.
    dup: Option<DupState>,
}

/// The campaign world (see module docs).
pub struct SimWorld {
    // Configuration (copied out of the scenario).
    net: ethmeter_net::NetConfig,
    latency: ethmeter_geo::LatencyModel,
    interblock: SimDuration,
    gas_limit: u64,
    miner_lag: Exp,
    import_jitter: LogNormal,
    duration: SimDuration,

    // Entities (all Vec-indexed by raw NodeId).
    nodes: Vec<Node>,
    node_meta: Vec<(Region, BandwidthClass)>,
    gateway_pool: Vec<Option<PoolId>>,
    observer_slot: Vec<Option<usize>>,
    observers: Vec<ObserverState>,
    logs: Vec<ObserverLog>,
    vantages: Vec<VantagePoint>,

    // Registries and ground truth. Blocks and txs are interned at
    // creation; every hot lookup is a dense-slot array index.
    blocks: BlockRegistry,
    txs: TxRegistry,
    truth: BlockTree,

    // Mining (Vec-indexed by raw PoolId).
    pools: PoolDirectory,
    pool_states: Vec<PoolState>,

    // Workload. Accounts are multi-homed: exchanges and wallet backends
    // submit through several geographically distinct nodes, which is what
    // lets burst transactions race each other onto different gossip paths
    // and arrive out of nonce order (§III-C2).
    generator: ethmeter_workload::TxGenerator,
    account_homes: Vec<[NodeId; 3]>,

    // Randomness (one decoupled stream per subsystem).
    rng_net: Xoshiro256,
    rng_mining: Xoshiro256,
    rng_workload: Xoshiro256,
    rng_latency: Xoshiro256,
    rng_clock: Xoshiro256,

    block_salt: u64,
    /// Run counters.
    pub stats: RunStats,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimWorld {{ nodes: {}, pools: {}, blocks: {}, txs: {} }}",
            self.nodes.len(),
            self.pools.len(),
            self.blocks.len(),
            self.txs.len()
        )
    }
}

impl SimWorld {
    /// Builds the world for a scenario (topology, node placement, gateway
    /// wiring, observers) without scheduling anything.
    pub fn new(scenario: &Scenario) -> Self {
        let mut root = Xoshiro256::seed_from_u64(scenario.seed);
        let mut rng_topo = root.fork("topology");
        let mut rng_place = root.fork("placement");
        let rng_net = root.fork("net");
        let rng_mining = root.fork("mining");
        let rng_workload = root.fork("workload");
        let rng_latency = root.fork("latency");
        let mut rng_clock = root.fork("clock");

        let pools = scenario.pools.clone();
        let n_ordinary = scenario.ordinary_nodes;
        let total_gateways: usize = pools.iter().map(|p| p.gateway_count).sum();
        let n_obs = scenario.vantages.len();
        let n = n_ordinary + total_gateways + n_obs;

        // Regions and bandwidth per node.
        let region_weights: Vec<f64> = scenario.region_weights.iter().map(|&(_, w)| w).collect();
        let regions: Vec<Region> = scenario.region_weights.iter().map(|&(r, _)| r).collect();
        let mut node_meta: Vec<(Region, BandwidthClass)> = Vec::with_capacity(n);
        for _ in 0..n_ordinary {
            let region = regions[rng_place.choose_weighted(&region_weights)];
            node_meta.push((region, BandwidthClass::sample_ordinary(&mut rng_place)));
        }
        let mut gateways: Vec<Vec<NodeId>> = vec![Vec::new(); pools.len()];
        let mut gateway_pool: Vec<Option<PoolId>> = vec![None; n_ordinary];
        for pool in pools.iter() {
            for region in pool.plan_gateway_regions() {
                let id = NodeId(node_meta.len() as u32);
                node_meta.push((region, BandwidthClass::Backbone));
                gateway_pool.push(Some(pool.id));
                gateways[pool.id.index()].push(id);
            }
        }
        let mut observer_slot: Vec<Option<usize>> = vec![None; node_meta.len()];
        let mut observers = Vec::new();
        let mut logs = Vec::new();
        for (slot, v) in scenario.vantages.iter().enumerate() {
            let id = NodeId(node_meta.len() as u32);
            node_meta.push((v.region, BandwidthClass::Backbone));
            gateway_pool.push(None);
            observer_slot.push(Some(slot));
            observers.push(ObserverState {
                skew: scenario.clock.skew(&mut rng_clock),
            });
            logs.push(ObserverLog::new());
            let _ = id;
        }

        // Topology: dial targets per role.
        let mut targets = Vec::with_capacity(n);
        let mut caps = Vec::with_capacity(n);
        for i in 0..node_meta.len() {
            if let Some(slot) = observer_slot[i] {
                // The paper's main observers ran "unlimited" peers, which
                // on mainnet meant holding a few percent of the ~15,000
                // nodes. We scale that adjacency *fraction*: observers
                // connect to about a fifth of the network (at least 32
                // peers), so first receptions still travel through public
                // intermediate hops rather than teleporting one hop from
                // every gateway. The redundancy observer keeps Geth's
                // default 25 peers.
                let v = &scenario.vantages[slot];
                let scaled_cap = (node_meta.len() / 3).max(32);
                let t = if v.default_peers {
                    v.peer_target
                } else {
                    v.peer_target.min(scaled_cap)
                };
                targets.push(t);
                caps.push(t + 16);
            } else if gateway_pool[i].is_some() {
                targets.push(scenario.gateway_degree);
                caps.push(scenario.gateway_degree * 2);
            } else {
                // Ordinary Geth: ~half the peer budget is outbound dials.
                targets.push(scenario.net.default_peer_target / 2 + 1);
                caps.push(scenario.net.max_peer_cap);
            }
        }
        // Pool gateways are hidden infrastructure: observers cannot peer
        // with them directly, so measurements see blocks only after at
        // least one public hop — as in the real network.
        let is_observer = |v: usize| observer_slot[v].is_some();
        let is_gateway = |v: usize| gateway_pool[v].is_some();
        let topo = Topology::random_with_constraint(
            &DegreePlan { targets, caps },
            &mut rng_topo,
            |a, b| !((is_observer(a) && is_gateway(b)) || (is_observer(b) && is_gateway(a))),
        );

        let truth = BlockTree::new();
        let genesis = truth.genesis_hash();
        let mut nodes: Vec<Node> = (0..node_meta.len())
            .map(|i| {
                Node::new(
                    NodeId(i as u32),
                    node_meta[i].0,
                    node_meta[i].1,
                    genesis,
                    &scenario.net,
                )
            })
            .collect();
        for i in 0..node_meta.len() {
            for &j in topo.neighbors(NodeId(i as u32)) {
                if j.index() > i {
                    nodes[i].connect(j, &scenario.net);
                    nodes[j.index()].connect(NodeId(i as u32), &scenario.net);
                }
            }
        }
        for list in &gateways {
            for &g in list {
                nodes[g.index()].enable_mempool();
            }
        }

        // Accounts live on ordinary nodes, three submission points each.
        let mut account_homes = Vec::with_capacity(scenario.workload.accounts);
        for _ in 0..scenario.workload.accounts {
            account_homes.push([
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
            ]);
        }

        let pool_states = gateways
            .into_iter()
            .map(|gws| PoolState {
                gateways: gws,
                target: (genesis, 1),
                dup: None,
            })
            .collect();
        SimWorld {
            net: scenario.net.clone(),
            latency: scenario.latency.clone(),
            interblock: scenario.interblock,
            gas_limit: scenario.gas_limit,
            miner_lag: Exp::with_mean(scenario.miner_lag_mean.as_secs_f64().max(1e-6)),
            import_jitter: LogNormal::with_median(1.0, scenario.net.import_jitter_sigma),
            duration: scenario.duration,
            nodes,
            node_meta,
            gateway_pool,
            observer_slot,
            observers,
            logs,
            vantages: scenario.vantages.clone(),
            blocks: BlockRegistry::new(),
            txs: TxRegistry::new(),
            truth,
            pool_states,
            pools,
            generator: ethmeter_workload::TxGenerator::new(scenario.workload.clone()),
            account_homes,
            rng_net,
            rng_mining,
            rng_workload,
            rng_latency,
            rng_clock,
            block_salt: 1,
            stats: RunStats::default(),
        }
    }

    /// The events that bootstrap a run (one solve per pool, the workload
    /// pump).
    pub fn initial_events(&mut self) -> Vec<(SimTime, Event)> {
        let mut evs = Vec::new();
        for pool in 0..self.pools.len() {
            let pid = PoolId(pool as u16);
            let share = self.pools.pool(pid).share;
            if share <= 0.0 {
                continue;
            }
            let d = next_block_delay(share, self.interblock, &mut self.rng_mining);
            evs.push((SimTime::ZERO + d, Event::PoolSolve { pool: pid }));
        }
        evs.push((SimTime::ZERO, Event::NextSubmission));
        evs
    }

    /// Finishes the campaign: hands out observer logs and ground truth.
    pub fn into_campaign(self, duration: SimDuration) -> ethmeter_measure::CampaignData {
        ethmeter_measure::CampaignData {
            observers: self.vantages.into_iter().zip(self.logs).collect(),
            truth: ethmeter_measure::GroundTruth {
                tree: self.truth,
                txs: self.txs.into_map(),
                pool_names: self.pools.iter().map(|p| p.name.clone()).collect(),
                pool_shares: self.pools.iter().map(|p| p.share).collect(),
                interblock: self.interblock,
                duration,
            },
        }
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ground-truth tree (for in-flight inspection).
    pub fn truth(&self) -> &BlockTree {
        &self.truth
    }

    /// Gateway placement per pool: `(pool name, regions of its gateways)`.
    /// Useful for diagnosing geographic calibration.
    pub fn gateway_placement(&self) -> Vec<(String, Vec<Region>)> {
        self.pools
            .iter()
            .map(|p| {
                let regions = self.pool_states[p.id.index()]
                    .gateways
                    .iter()
                    .map(|g| self.node_meta[g.index()].0)
                    .collect();
                (p.name.clone(), regions)
            })
            .collect()
    }

    fn primary_gateway(&self, pool: PoolId) -> NodeId {
        self.pool_states[pool.index()].gateways[0]
    }

    fn import_duration(&mut self, node: NodeId, idx: BlockIdx) -> SimDuration {
        let tx_count = self.blocks.by_idx(idx).txs().len() as u64;
        let base = self.net.import_base + self.net.import_per_tx * tx_count;
        let hw = self.node_meta[node.index()].1.import_factor();
        base.mul_f64(hw * self.import_jitter.sample(&mut self.rng_net))
    }

    /// Applies link timing and schedules delivery of a node's sends.
    fn dispatch_sends(&mut self, from: NodeId, sends: Vec<Send>, sched: &mut Scheduler<Event>) {
        let (from_region, from_bw) = self.node_meta[from.index()];
        for send in sends {
            let size = {
                let blocks = &self.blocks;
                let txs = &self.txs;
                send.msg.size(
                    |h| blocks.get(h).map(|b| b.size()).unwrap_or(ByteSize::ZERO),
                    |t| txs.get(t).map(|x| x.size).unwrap_or(ByteSize::ZERO),
                )
            };
            let (to_region, to_bw) = self.node_meta[send.to.index()];
            let delay = self.net.proc_overhead
                + from_bw.transfer_time(size)
                + self
                    .latency
                    .sample(&mut self.rng_latency, from_region, to_region)
                + to_bw.transfer_time(size);
            self.stats.bytes += size.as_bytes();
            sched.after(
                delay,
                Event::Deliver {
                    from,
                    to: send.to,
                    msg: send.msg,
                },
            );
        }
    }

    /// Transactions already included in the last few ancestors of `parent`
    /// (guards against double inclusion while imports are in flight).
    fn recent_ancestor_txs(&self, parent: BlockHash) -> HashSet<TxId> {
        let mut out = HashSet::new();
        let mut cur = parent;
        for _ in 0..8 {
            let Some(b) = self.blocks.get(cur) else {
                break;
            };
            out.extend(b.txs().iter().copied());
            cur = b.parent();
        }
        out
    }

    fn pack_for(&mut self, pool: PoolId, parent: BlockHash) -> Vec<TxId> {
        let gw = self.primary_gateway(pool);
        let packed = self.nodes[gw.index()]
            .mempool()
            .map(|m| m.pack(self.gas_limit))
            .unwrap_or_default();
        let included = self.recent_ancestor_txs(parent);
        packed
            .into_iter()
            .filter(|t| !included.contains(t))
            .collect()
    }

    /// Registers a block in the registry and ground truth, returning its
    /// dense slot.
    fn register_block(&mut self, block: Block) -> BlockIdx {
        self.stats.blocks_produced += 1;
        let _ = self.truth.insert(block.clone());
        self.blocks.insert(block)
    }

    /// Injects a block at every gateway of its pool. Pools run dedicated
    /// internal distribution (stratum relays), so each gateway — primary
    /// included — receives the sealed block after a small independent
    /// delay rather than via public gossip.
    fn broadcast_from_gateways(
        &mut self,
        pool: PoolId,
        idx: BlockIdx,
        sched: &mut Scheduler<Event>,
    ) {
        let n_gws = self.pool_states[pool.index()].gateways.len();
        let intra = Exp::with_mean(0.015);
        for g in 0..n_gws {
            let gw = self.pool_states[pool.index()].gateways[g];
            let delay = SimDuration::from_millis(5) + intra.sample_duration(&mut self.rng_latency);
            sched.after(delay, Event::InjectBlock { node: gw, idx });
        }
    }

    fn inject_block_at(&mut self, node: NodeId, idx: BlockIdx, sched: &mut Scheduler<Event>) {
        let (sends, action) = {
            let block = self.blocks.by_idx(idx);
            self.nodes[node.index()].on_block_arrival(
                None,
                block,
                idx,
                &self.net,
                &mut self.rng_net,
            )
        };
        if let ImportAction::Schedule(i) = action {
            let d = self.import_duration(node, i);
            sched.after(d, Event::ImportDone { node, idx: i });
        }
        self.dispatch_sends(node, sends, sched);
    }

    /// Builds and publishes one block for `pool` at its current target.
    fn solve_normal(&mut self, pool: PoolId, now: SimTime, sched: &mut Scheduler<Event>) {
        let cfg = self.pools.pool(pool).clone();
        let plan = BlockPlan::decide(&cfg, &mut self.rng_mining);
        let (parent, number) = self.pool_states[pool.index()].target;
        let gw = self.primary_gateway(pool);
        let uncles = self.nodes[gw.index()]
            .chain()
            .select_uncles(parent, cfg.strategy.uncle_policy);
        let txs = if plan.empty {
            Vec::new()
        } else {
            self.pack_for(pool, parent)
        };
        let salt = self.block_salt;
        self.block_salt += 1;
        let block = BlockBuilder::new(parent, number, pool)
            .mined_at(now)
            .txs(txs.clone())
            .uncles(uncles)
            .salt(salt)
            .build();
        let hash = block.hash();
        let idx = self.register_block(block);
        self.broadcast_from_gateways(pool, idx, sched);

        // Malfunction burst: extra same-height siblings released at once.
        for k in 0..plan.malfunction_extra {
            let sibling_txs = if self
                .rng_mining
                .chance(cfg.strategy.duplicate_same_txset_prob)
            {
                txs.clone()
            } else {
                txs.iter().copied().skip(k + 1).collect()
            };
            let salt = self.block_salt;
            self.block_salt += 1;
            let sib = BlockBuilder::new(parent, number, pool)
                .mined_at(now)
                .txs(sibling_txs)
                .salt(salt)
                .build();
            let sib_idx = self.register_block(sib);
            self.stats.duplicates_produced += 1;
            self.broadcast_from_gateways(pool, sib_idx, sched);
        }

        if plan.attempt_duplicate {
            // Keep mining at this height: the next solve yields a
            // duplicate (one-miner fork) instead of extending the chain.
            self.pool_states[pool.index()].dup = Some(DupState {
                parent,
                height: number,
                original: hash,
                same_txs: plan.duplicate_same_txs,
                txs,
            });
        } else {
            self.pool_states[pool.index()].target = (hash, number + 1);
        }
    }

    /// Ends a duplication episode: resume mining at the freshest target.
    fn resume_after_duplication(&mut self, pool: PoolId, ds: &DupState) {
        let gw = self.primary_gateway(pool);
        let head = self.nodes[gw.index()].chain().head();
        let head_number = self.nodes[gw.index()].chain().head_number();
        self.pool_states[pool.index()].target = if head_number >= ds.height {
            (head, head_number + 1)
        } else {
            (ds.original, ds.height + 1)
        };
    }

    fn solve(&mut self, pool: PoolId, now: SimTime, sched: &mut Scheduler<Event>) {
        // Renewal process: the pool mines continuously.
        let share = self.pools.pool(pool).share;
        let d = next_block_delay(share, self.interblock, &mut self.rng_mining);
        sched.after(d, Event::PoolSolve { pool });

        if let Some(ds) = self.pool_states[pool.index()].dup.take() {
            let gw = self.primary_gateway(pool);
            let head_number = self.nodes[gw.index()].chain().head_number();
            // Duplicate is only worth publishing while it can still become
            // an uncle (within 6 generations).
            if head_number < ds.height + 6 {
                let cfg = self.pools.pool(pool).clone();
                let txs = if ds.same_txs {
                    ds.txs.clone()
                } else {
                    self.pack_for(pool, ds.parent)
                };
                let salt = self.block_salt;
                self.block_salt += 1;
                let dup = BlockBuilder::new(ds.parent, ds.height, pool)
                    .mined_at(now)
                    .txs(txs)
                    .salt(salt)
                    .build();
                let dup_idx = self.register_block(dup);
                self.stats.duplicates_produced += 1;
                self.broadcast_from_gateways(pool, dup_idx, sched);
                if BlockPlan::continue_duplicating(&cfg, &mut self.rng_mining) {
                    self.pool_states[pool.index()].dup = Some(ds);
                } else {
                    self.resume_after_duplication(pool, &ds);
                }
                return;
            }
            // Window closed: fall through to a normal solve.
            self.resume_after_duplication(pool, &ds);
        }
        self.solve_normal(pool, now, sched);
    }

    fn record_observation(&mut self, slot: usize, from: NodeId, msg: &Message, now: SimTime) {
        let local = self.observers[slot].skew.read(now, &mut self.rng_clock);
        match msg {
            Message::Announce(hashes) => {
                for &h in hashes {
                    self.logs[slot].record_block_msg(h, BlockMsgKind::Announce, from, local, now);
                }
            }
            Message::NewBlock(h) | Message::BlockBody(h) => {
                self.logs[slot].record_block_msg(*h, BlockMsgKind::FullBlock, from, local, now);
            }
            Message::Transactions(ids) => {
                for &id in ids {
                    self.logs[slot].record_tx(id, from, local, now);
                }
            }
            Message::Tx(id) => {
                self.logs[slot].record_tx(*id, from, local, now);
            }
            Message::GetBlock(_) => {}
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Message,
        sched: &mut Scheduler<Event>,
    ) {
        self.stats.messages += 1;
        if let Some(slot) = self.observer_slot[to.index()] {
            self.record_observation(slot, from, &msg, now);
        }
        match msg {
            Message::Announce(hashes) => {
                let resolve = |blocks: &BlockRegistry, h: BlockHash| {
                    let idx = blocks
                        .idx_of(h)
                        .expect("announced hashes are registered at creation");
                    (h, idx)
                };
                // Announcements carry one hash in practice; resolve on the
                // stack and only fall back to a heap batch for real lists.
                let sends = if let [h] = hashes[..] {
                    let entry = [resolve(&self.blocks, h)];
                    self.nodes[to.index()].on_announce(from, &entry)
                } else {
                    let entries: Vec<(BlockHash, BlockIdx)> =
                        hashes.iter().map(|&h| resolve(&self.blocks, h)).collect();
                    self.nodes[to.index()].on_announce(from, &entries)
                };
                for s in &sends {
                    if let Message::GetBlock(h) = s.msg {
                        let idx = self.blocks.idx_of(h).expect("fetches target known blocks");
                        sched.after(
                            self.net.fetch_timeout,
                            Event::FetchTimeout { node: to, idx },
                        );
                    }
                }
                self.dispatch_sends(to, sends, sched);
            }
            Message::NewBlock(h) | Message::BlockBody(h) => {
                let Some(idx) = self.blocks.idx_of(h) else {
                    return;
                };
                let (sends, action) = {
                    let block = self.blocks.by_idx(idx);
                    self.nodes[to.index()].on_block_arrival(
                        Some(from),
                        block,
                        idx,
                        &self.net,
                        &mut self.rng_net,
                    )
                };
                if let ImportAction::Schedule(i) = action {
                    let d = self.import_duration(to, i);
                    sched.after(d, Event::ImportDone { node: to, idx: i });
                }
                self.dispatch_sends(to, sends, sched);
            }
            Message::GetBlock(h) => {
                let Some(idx) = self.blocks.idx_of(h) else {
                    return;
                };
                let sends = self.nodes[to.index()].on_get_block(from, h, idx);
                self.dispatch_sends(to, sends, sched);
            }
            Message::Tx(id) => {
                // The dominant gossip message: resolve the one transaction
                // on the stack.
                let sends = {
                    let txs = &self.txs;
                    let node = &mut self.nodes[to.index()];
                    match txs.idx_of(id) {
                        Some(ix) => node.on_transactions(
                            Some(from),
                            &[(ix, txs.by_idx(ix))],
                            &self.net,
                            &mut self.rng_net,
                        ),
                        None => Vec::new(),
                    }
                };
                self.dispatch_sends(to, sends, sched);
            }
            Message::Transactions(ids) => {
                let sends = {
                    let txs = &self.txs;
                    let resolved: Vec<(TxIdx, &Transaction)> = ids
                        .iter()
                        .filter_map(|&id| txs.idx_of(id).map(|ix| (ix, txs.by_idx(ix))))
                        .collect();
                    self.nodes[to.index()].on_transactions(
                        Some(from),
                        &resolved,
                        &self.net,
                        &mut self.rng_net,
                    )
                };
                self.dispatch_sends(to, sends, sched);
            }
        }
    }

    fn on_import_done(&mut self, node: NodeId, idx: BlockIdx, sched: &mut Scheduler<Event>) {
        self.stats.imports += 1;
        let result = {
            let block = self.blocks.by_idx(idx);
            let txs = &self.txs;
            let included: Vec<&Transaction> =
                block.txs().iter().filter_map(|&t| txs.get(t)).collect();
            self.nodes[node.index()].on_import_complete(block, idx, &included, &self.net)
        };
        if result.new_head {
            if let Some(pool) = self.gateway_pool[node.index()] {
                if self.primary_gateway(pool) == node {
                    let lag = self.miner_lag.sample_duration(&mut self.rng_mining);
                    sched.after(lag, Event::PoolRetarget { pool });
                }
            }
        }
        self.dispatch_sends(node, result.sends, sched);
    }

    fn on_retarget(&mut self, pool: PoolId) {
        // Only meaningful outside a duplication episode; duplication keeps
        // its own target and resumes from the head afterwards.
        if self.pool_states[pool.index()].dup.is_some() {
            return;
        }
        let gw = self.primary_gateway(pool);
        let head = self.nodes[gw.index()].chain().head();
        let head_number = self.nodes[gw.index()].chain().head_number();
        if head_number + 1 > self.pool_states[pool.index()].target.1 {
            self.pool_states[pool.index()].target = (head, head_number + 1);
        }
    }

    fn on_next_submission(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let ev = self.generator.next_event(&mut self.rng_workload);
        // Stop planning past the horizon; the queue drains naturally.
        if now + ev.delay > SimTime::ZERO + self.duration {
            return;
        }
        sched.after(ev.delay, Event::NextSubmission);
        for planned in ev.txs {
            let id = TxId(self.txs.len() as u64 + 1);
            let homes = &self.account_homes[planned.sender.index() % self.account_homes.len()];
            let origin = homes[self.rng_workload.index(homes.len())];
            let submit_at = now + ev.delay + planned.offset;
            let idx = self.txs.insert(Transaction {
                id,
                sender: planned.sender,
                nonce: planned.nonce,
                gas_price: planned.gas_price,
                gas: planned.gas,
                size: planned.size,
                submitted_at: submit_at,
                origin,
            });
            self.stats.txs_submitted += 1;
            sched.at(submit_at, Event::InjectTx { idx });
        }
    }

    fn on_inject_tx(&mut self, idx: TxIdx, sched: &mut Scheduler<Event>) {
        let origin = self.txs.by_idx(idx).origin;
        let sends = {
            let tx = self.txs.by_idx(idx);
            self.nodes[origin.index()].on_transactions(
                None,
                &[(idx, tx)],
                &self.net,
                &mut self.rng_net,
            )
        };
        self.dispatch_sends(origin, sends, sched);
    }
}

impl World for SimWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::Deliver { from, to, msg } => self.on_deliver(now, from, to, msg, sched),
            Event::ImportDone { node, idx } => self.on_import_done(node, idx, sched),
            Event::FetchTimeout { node, idx } => {
                let hash = self.blocks.by_idx(idx).hash();
                let sends = self.nodes[node.index()].on_fetch_timeout(hash, idx);
                for s in &sends {
                    if let Message::GetBlock(h) = s.msg {
                        let i = self.blocks.idx_of(h).expect("fetches target known blocks");
                        sched.after(self.net.fetch_timeout, Event::FetchTimeout { node, idx: i });
                    }
                }
                self.dispatch_sends(node, sends, sched);
            }
            Event::PoolSolve { pool } => self.solve(pool, now, sched),
            Event::PoolRetarget { pool } => self.on_retarget(pool),
            Event::InjectBlock { node, idx } => self.inject_block_at(node, idx, sched),
            Event::NextSubmission => self.on_next_submission(now, sched),
            Event::InjectTx { idx } => self.on_inject_tx(idx, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Preset, Scenario};
    use ethmeter_sim::Engine;

    fn tiny_world() -> (Scenario, SimWorld) {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(1)
            .duration(SimDuration::from_mins(5))
            .build();
        let world = SimWorld::new(&scenario);
        (scenario, world)
    }

    #[test]
    fn world_builds_expected_population() {
        let (scenario, world) = tiny_world();
        let gw_total: usize = scenario.pools.iter().map(|p| p.gateway_count).sum();
        assert_eq!(
            world.node_count(),
            scenario.ordinary_nodes + gw_total + scenario.vantages.len()
        );
        // All gateways have mempools.
        for (i, pool) in world.gateway_pool.iter().enumerate() {
            if pool.is_some() {
                assert!(world.nodes[i].mempool().is_some(), "gateway {i}");
            }
        }
        // Pool state is dense: one slot per pool, gateways wired.
        assert_eq!(world.pool_states.len(), scenario.pools.len());
        assert!(world
            .pool_states
            .iter()
            .all(|ps| !ps.gateways.is_empty() && ps.dup.is_none()));
    }

    #[test]
    fn five_minutes_produce_blocks_and_observations() {
        let (_, mut world) = tiny_world();
        let initial = world.initial_events();
        let mut engine = Engine::new(world);
        for (t, e) in initial {
            engine.schedule(t, e);
        }
        engine.run_until(SimTime::ZERO + SimDuration::from_mins(5));
        let world = engine.into_world();
        // ~22 blocks expected in 5 minutes at 13.3s.
        let blocks = world.truth().head_number();
        assert!((10..45).contains(&blocks), "blocks {blocks}");
        assert!(world.stats.messages > 1_000);
        assert!(world.stats.txs_submitted > 50);
        // The registries interned every produced artifact.
        assert_eq!(world.blocks.len() as u64, world.stats.blocks_produced);
        assert_eq!(world.txs.len() as u64, world.stats.txs_submitted);
        // Every observer saw most blocks.
        for log in &world.logs {
            assert!(
                log.block_count() as u64 >= blocks * 9 / 10,
                "observer saw {} of {blocks}",
                log.block_count()
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let scenario = Scenario::builder()
                .preset(Preset::Tiny)
                .seed(seed)
                .duration(SimDuration::from_mins(3))
                .build();
            let mut world = SimWorld::new(&scenario);
            let initial = world.initial_events();
            let mut engine = Engine::new(world);
            for (t, e) in initial {
                engine.schedule(t, e);
            }
            engine.run_until(SimTime::ZERO + SimDuration::from_mins(3));
            let w = engine.into_world();
            (
                w.stats,
                w.truth().head(),
                w.truth().len(),
                w.logs.iter().map(|l| l.block_count()).collect::<Vec<_>>(),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the identical run");
        let c = run(8);
        assert_ne!(a.1, c.1, "different seeds diverge");
    }
}
