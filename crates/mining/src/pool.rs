//! Pool configuration and the paper-calibrated directory.
//!
//! Hash-power shares are the ones the paper measured during April 2019 and
//! prints in Figure 3's parentheses (Ethermine 25.32% ... Hiveon 0.77%,
//! remaining miners 8.39%). Gateway regions are calibrated from the same
//! figure's first-observation mix: the large Asian pools (Sparkpool,
//! F2pool, HuoBi, ...) expose gateways in Eastern Asia, Ethermine and
//! Nanopool in Europe — which is what makes Eastern Asia observe ~40% of
//! new blocks first (Figure 2).

use ethmeter_sim::Xoshiro256;
use ethmeter_types::{PoolId, Region};

use crate::behavior::{PoolBehavior, SelfishConfig};
use crate::strategy::Strategy;

/// Static configuration of one mining pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Stable identifier (index into the directory).
    pub id: PoolId,
    /// Public name (coinbase tag).
    pub name: String,
    /// Fraction of total network hash power, in `[0, 1]`.
    pub share: f64,
    /// Weighted gateway placement: `(region, weight)`. Each gateway node
    /// the scenario creates for this pool draws its region from this
    /// distribution.
    pub gateway_regions: Vec<(Region, f64)>,
    /// Number of gateway nodes the pool operates.
    pub gateway_count: usize,
    /// Per-block probabilistic knobs (empty blocks, one-miner forks).
    pub strategy: Strategy,
    /// Stateful publication behavior. [`PoolBehavior::Honest`] (the
    /// default everywhere) publishes at mint time; a selfish pool
    /// withholds and releases at fork-choice time, superseding the
    /// probabilistic duplicate/empty knobs.
    pub behavior: PoolBehavior,
}

impl PoolConfig {
    /// Samples a region for one gateway according to the placement
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if the placement list is empty.
    pub fn sample_gateway_region(&self, rng: &mut Xoshiro256) -> Region {
        assert!(
            !self.gateway_regions.is_empty(),
            "pool {} has no gateway placement",
            self.name
        );
        let weights: Vec<f64> = self.gateway_regions.iter().map(|&(_, w)| w).collect();
        self.gateway_regions[rng.choose_weighted(&weights)].0
    }

    /// Plans the regions of this pool's gateways deterministically by the
    /// largest-remainder method: `gateway_count` seats apportioned to the
    /// placement weights. Deterministic placement keeps the geographic
    /// calibration stable across seeds (i.i.d. sampling occasionally puts
    /// an Asian pool's only gateways in the wrong continent, which swamps
    /// Figure 2 in small campaigns).
    ///
    /// # Panics
    ///
    /// Panics if the placement list is empty.
    pub fn plan_gateway_regions(&self) -> Vec<Region> {
        assert!(
            !self.gateway_regions.is_empty(),
            "pool {} has no gateway placement",
            self.name
        );
        let total: f64 = self.gateway_regions.iter().map(|&(_, w)| w).sum();
        let n = self.gateway_count;
        let quotas: Vec<f64> = self
            .gateway_regions
            .iter()
            .map(|&(_, w)| w / total * n as f64)
            .collect();
        let mut seats: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let mut assigned: usize = seats.iter().sum();
        // Hand remaining seats to the largest remainders (ties: list order).
        let mut order: Vec<usize> = (0..quotas.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).expect("finite").then(a.cmp(&b))
        });
        let mut i = 0;
        while assigned < n {
            seats[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        let mut out = Vec::with_capacity(n);
        for (idx, &(region, _)) in self.gateway_regions.iter().enumerate() {
            for _ in 0..seats[idx] {
                out.push(region);
            }
        }
        out.truncate(n);
        out
    }
}

/// The set of pools mining a scenario.
#[derive(Debug, Clone)]
pub struct PoolDirectory {
    pools: Vec<PoolConfig>,
}

impl PoolDirectory {
    /// Builds a directory from explicit configs.
    ///
    /// # Panics
    ///
    /// Panics if shares don't sum to ≈1, any share is negative, or ids
    /// don't match positions.
    pub fn new(pools: Vec<PoolConfig>) -> Self {
        assert!(!pools.is_empty(), "directory needs at least one pool");
        let total: f64 = pools.iter().map(|p| p.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "pool shares must sum to 1, got {total}"
        );
        for (i, p) in pools.iter().enumerate() {
            assert!(p.share >= 0.0, "negative share for {}", p.name);
            assert_eq!(p.id, PoolId(i as u16), "pool id must equal its index");
        }
        PoolDirectory { pools }
    }

    /// The April-2019 Ethereum mainnet calibration (Figure 3's shares).
    ///
    /// Includes a 16th entry aggregating the remaining miners and a
    /// vanishingly small 17th solo miner that only mines empty blocks (the
    /// paper: "we also observed a miner whose 6 mined blocks during the
    /// experiment were all empty").
    pub fn paper_dsn2020() -> Self {
        use Region::*;
        let mut pools = Vec::new();
        let mut add = |name: &str,
                       pct: f64,
                       regions: Vec<(Region, f64)>,
                       gateways: usize,
                       strategy: Strategy| {
            let id = PoolId(pools.len() as u16);
            pools.push(PoolConfig {
                id,
                name: name.to_owned(),
                share: pct / 100.0,
                gateway_regions: regions,
                gateway_count: gateways,
                strategy,
                behavior: PoolBehavior::Honest,
            });
        };

        // Shares from Figure 3; strategies calibrated to Figure 6 (empty
        // blocks) and §III-C5 (duplicates). The empty-block products sum to
        // ~1.44% of all blocks, the paper's 1.45%; the duplicate products
        // to ~0.9% of blocks, the paper's 1,750 pairs in 201k blocks.
        add(
            "Ethermine",
            25.32,
            // ethermine.org ran public endpoints in Europe, the US, and
            // Asia; Europe carried most of its hash power.
            vec![
                (WesternEurope, 0.45),
                (CentralEurope, 0.20),
                (NorthAmerica, 0.20),
                (EasternAsia, 0.15),
            ],
            3,
            Strategy::honest()
                .with_empty_prob(0.0234)
                .with_duplicate_prob(0.014),
        );
        add(
            "Sparkpool",
            22.88,
            // Sparkpool operated worldwide relay nodes; the majority of
            // its gateways sat in China.
            vec![(EasternAsia, 0.67), (WesternEurope, 0.33)],
            3,
            Strategy::honest()
                .with_empty_prob(0.008)
                .with_duplicate_prob(0.014),
        );
        add(
            "F2pool2",
            12.75,
            vec![(EasternAsia, 1.0)],
            2,
            Strategy::honest()
                .with_empty_prob(0.027)
                .with_duplicate_prob(0.010),
        );
        add(
            "Nanopool",
            12.10,
            vec![
                (CentralEurope, 0.5),
                (WesternEurope, 0.3),
                (EasternEurope, 0.2),
            ],
            2,
            // The paper singles Nanopool out as having mined no empty
            // blocks at all.
            Strategy::honest().with_duplicate_prob(0.004),
        );
        add(
            "Miningpoolhub1",
            5.61,
            vec![(EasternAsia, 0.5), (NorthAmerica, 0.5)],
            2,
            Strategy::honest().with_duplicate_prob(0.004),
        );
        add(
            "HuoBi.pro",
            1.85,
            vec![(EasternAsia, 1.0)],
            1,
            Strategy::honest()
                .with_empty_prob(0.008)
                .with_duplicate_prob(0.004),
        );
        add(
            "Pandapool",
            1.82,
            vec![(EasternAsia, 0.7), (NorthAmerica, 0.3)],
            1,
            Strategy::honest()
                .with_empty_prob(0.010)
                .with_duplicate_prob(0.004),
        );
        add(
            "DwarfPool1",
            1.74,
            vec![(WesternEurope, 0.5), (CentralEurope, 0.5)],
            1,
            Strategy::honest()
                .with_empty_prob(0.005)
                .with_duplicate_prob(0.004),
        );
        add(
            "Xnpool",
            1.34,
            vec![(EasternAsia, 1.0)],
            1,
            Strategy::honest()
                .with_empty_prob(0.010)
                .with_duplicate_prob(0.004),
        );
        add(
            "Uupool",
            1.33,
            vec![(EasternAsia, 1.0)],
            1,
            Strategy::honest()
                .with_empty_prob(0.015)
                .with_duplicate_prob(0.004),
        );
        add(
            "Minerall",
            1.23,
            vec![(EasternEurope, 0.6), (CentralEurope, 0.4)],
            1,
            Strategy::honest()
                .with_empty_prob(0.010)
                .with_duplicate_prob(0.004),
        );
        add(
            "Firepool",
            1.22,
            vec![(EasternAsia, 0.8), (SouthAsia, 0.2)],
            1,
            Strategy::honest()
                .with_empty_prob(0.012)
                .with_duplicate_prob(0.004),
        );
        add(
            "Zhizhu",
            0.85,
            vec![(EasternAsia, 1.0)],
            1,
            // The headline empty-block miner: >25% of its blocks carried
            // no transactions.
            Strategy::honest()
                .with_empty_prob(0.26)
                .with_duplicate_prob(0.004),
        );
        add(
            "MiningExpress",
            0.81,
            vec![(NorthAmerica, 0.5), (SouthAmerica, 0.5)],
            1,
            Strategy::honest()
                .with_empty_prob(0.050)
                .with_duplicate_prob(0.004),
        );
        add(
            "Hiveon",
            0.77,
            vec![(EasternEurope, 0.7), (CentralEurope, 0.3)],
            1,
            Strategy::honest()
                .with_empty_prob(0.010)
                .with_duplicate_prob(0.004),
        );
        // Figure 3 prints "Remaining miners (8.39%)", but the printed
        // percentages sum to 100.01 due to rounding; we shave the
        // remainder so shares form an exact distribution, and carve out
        // the 0.003% always-empty solo miner below.
        add(
            "Remaining miners",
            8.377,
            vec![
                (NorthAmerica, 0.25),
                (WesternEurope, 0.20),
                (CentralEurope, 0.15),
                (EasternEurope, 0.12),
                (EasternAsia, 0.15),
                (SouthAsia, 0.06),
                (SouthAmerica, 0.04),
                (Oceania, 0.03),
            ],
            4,
            // Aggregate of many small miners: mild empty-block rate, rare
            // duplicates, and the occasional malfunction burst that
            // produces the 4- and 7-tuples of §III-C5.
            Strategy::honest()
                .with_empty_prob(0.004)
                .with_duplicate_prob(0.002)
                .with_malfunction_prob(2e-5),
        );
        add(
            "AnonEmptyMiner",
            0.003,
            vec![(NorthAmerica, 1.0)],
            1,
            // The curious solo miner all of whose blocks were empty.
            Strategy::honest().with_empty_prob(1.0),
        );
        PoolDirectory::new(pools)
    }

    /// A synthetic directory of `n` equal pools (for tests/ablations).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize, gateway_count: usize) -> Self {
        assert!(n > 0, "need at least one pool");
        let share = 1.0 / n as f64;
        let pools = (0..n)
            .map(|i| PoolConfig {
                id: PoolId(i as u16),
                name: format!("pool-{i}"),
                share,
                gateway_regions: vec![(Region::ALL[i % Region::COUNT], 1.0)],
                gateway_count,
                strategy: Strategy::honest(),
                behavior: PoolBehavior::Honest,
            })
            .collect();
        PoolDirectory::new(pools)
    }

    /// An adversarial two-sided directory: pool 0 is a selfish attacker
    /// with hash share `alpha` and `attacker_gateways` gateways spread
    /// round-robin over every region (more gateways → the attacker's
    /// releases win more tie races, i.e. a higher effective γ), facing
    /// three equal honest pools that split the remaining power.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)` or `attacker_gateways` is 0.
    pub fn attacker_vs_honest(
        alpha: f64,
        attacker_gateways: usize,
        behavior: SelfishConfig,
    ) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "attacker share must be in (0, 1), got {alpha}"
        );
        assert!(attacker_gateways > 0, "attacker needs at least one gateway");
        let mut pools = vec![PoolConfig {
            id: PoolId(0),
            name: "Attacker".to_owned(),
            share: alpha,
            gateway_regions: (0..attacker_gateways.min(Region::COUNT))
                .map(|i| (Region::ALL[i], 1.0))
                .collect(),
            gateway_count: attacker_gateways,
            strategy: Strategy::honest(),
            behavior: PoolBehavior::Selfish(behavior),
        }];
        let honest = 3usize;
        for i in 0..honest {
            pools.push(PoolConfig {
                id: PoolId(1 + i as u16),
                name: format!("Honest-{i}"),
                share: (1.0 - alpha) / honest as f64,
                gateway_regions: vec![
                    (Region::ALL[(2 * i) % Region::COUNT], 0.6),
                    (Region::ALL[(2 * i + 3) % Region::COUNT], 0.4),
                ],
                gateway_count: 2,
                strategy: Strategy::honest(),
                behavior: PoolBehavior::Honest,
            });
        }
        PoolDirectory::new(pools)
    }

    /// Number of pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True if the directory has no pools (never constructible).
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Pool by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pool(&self, id: PoolId) -> &PoolConfig {
        &self.pools[id.index()]
    }

    /// Mutable pool access (scenario builders tweak strategies).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pool_mut(&mut self, id: PoolId) -> &mut PoolConfig {
        &mut self.pools[id.index()]
    }

    /// Iterates over all pools in id order.
    pub fn iter(&self) -> impl Iterator<Item = &PoolConfig> + '_ {
        self.pools.iter()
    }

    /// Looks a pool up by name.
    pub fn by_name(&self, name: &str) -> Option<&PoolConfig> {
        self.pools.iter().find(|p| p.name == name)
    }

    /// True if any pool runs an adversarial (non-honest) behavior.
    pub fn has_adversary(&self) -> bool {
        self.pools.iter().any(|p| p.behavior.is_adversarial())
    }

    /// Samples the winner of a block according to hash-power shares.
    pub fn sample_winner(&self, rng: &mut Xoshiro256) -> PoolId {
        let weights: Vec<f64> = self.pools.iter().map(|p| p.share).collect();
        PoolId(rng.choose_weighted(&weights) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_directory_is_calibrated() {
        let d = PoolDirectory::paper_dsn2020();
        assert_eq!(d.len(), 17);
        let ethermine = d.by_name("Ethermine").expect("present");
        assert!((ethermine.share - 0.2532).abs() < 1e-9);
        let spark = d.by_name("Sparkpool").expect("present");
        assert!((spark.share - 0.2288).abs() < 1e-9);
        // Nanopool and Miningpoolhub never mine empty blocks (Figure 6).
        assert_eq!(
            d.by_name("Nanopool")
                .expect("present")
                .strategy
                .empty_block_prob,
            0.0
        );
        assert_eq!(
            d.by_name("Miningpoolhub1")
                .expect("present")
                .strategy
                .empty_block_prob,
            0.0
        );
        // Zhizhu's headline rate.
        assert!(
            d.by_name("Zhizhu")
                .expect("present")
                .strategy
                .empty_block_prob
                > 0.25
        );
        // Aggregate empty-block fraction ~ 1.45% (paper §III-C3).
        let agg: f64 = d
            .iter()
            .map(|p| p.share * p.strategy.empty_block_prob)
            .sum();
        assert!(
            (0.013..=0.016).contains(&agg),
            "aggregate empty fraction {agg}"
        );
        // Aggregate duplicate rate ~ 0.87% of blocks (1,750 pairs/201k).
        let dup: f64 = d.iter().map(|p| p.share * p.strategy.duplicate_prob).sum();
        assert!((0.006..=0.012).contains(&dup), "aggregate duplicate {dup}");
    }

    #[test]
    fn asian_pools_dominate_hash_power_in_ea() {
        // The EA-gateway share must be large enough to explain Figure 2's
        // ~40% first observations in Eastern Asia.
        let d = PoolDirectory::paper_dsn2020();
        let ea_weight: f64 = d
            .iter()
            .map(|p| {
                let w: f64 = p
                    .gateway_regions
                    .iter()
                    .filter(|(r, _)| *r == Region::EasternAsia)
                    .map(|&(_, w)| w)
                    .sum();
                let total: f64 = p.gateway_regions.iter().map(|&(_, w)| w).sum();
                p.share * w / total
            })
            .sum();
        assert!(
            (0.35..=0.55).contains(&ea_weight),
            "EA-origin hash power {ea_weight}"
        );
    }

    #[test]
    fn winner_sampling_matches_shares() {
        let d = PoolDirectory::paper_dsn2020();
        let mut rng = Xoshiro256::seed_from_u64(12);
        let n = 200_000;
        let mut counts = vec![0u64; d.len()];
        for _ in 0..n {
            counts[d.sample_winner(&mut rng).index()] += 1;
        }
        let ethermine_frac = counts[0] as f64 / n as f64;
        assert!(
            (ethermine_frac - 0.2532).abs() < 0.005,
            "ethermine {ethermine_frac}"
        );
        let nano_frac = counts[3] as f64 / n as f64;
        assert!((nano_frac - 0.1210).abs() < 0.004, "nanopool {nano_frac}");
    }

    #[test]
    fn gateway_region_sampling() {
        let d = PoolDirectory::paper_dsn2020();
        let spark = d.by_name("Sparkpool").expect("present");
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut ea = 0;
        for _ in 0..1000 {
            if spark.sample_gateway_region(&mut rng) == Region::EasternAsia {
                ea += 1;
            }
        }
        // Sparkpool's placement is 2/3 Eastern Asia.
        assert!((630..=710).contains(&ea), "EA gateway draws {ea}");
        // Deterministic planning puts exactly two of three gateways in EA.
        let plan = spark.plan_gateway_regions();
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.iter().filter(|&&r| r == Region::EasternAsia).count(),
            2
        );
    }

    #[test]
    fn uniform_directory() {
        let d = PoolDirectory::uniform(4, 1);
        assert_eq!(d.len(), 4);
        for p in d.iter() {
            assert!((p.share - 0.25).abs() < 1e-12);
            assert!(!p.strategy.is_selfish());
        }
    }

    #[test]
    fn attacker_directory_shape() {
        let d = PoolDirectory::attacker_vs_honest(0.3, 4, SelfishConfig::classic());
        assert_eq!(d.len(), 4);
        assert!(d.has_adversary());
        let attacker = d.pool(PoolId(0));
        assert_eq!(attacker.name, "Attacker");
        assert!((attacker.share - 0.3).abs() < 1e-12);
        assert_eq!(
            attacker.behavior,
            PoolBehavior::Selfish(SelfishConfig::classic())
        );
        assert_eq!(attacker.gateway_count, 4);
        for i in 1..4 {
            let p = d.pool(PoolId(i));
            assert_eq!(p.behavior, PoolBehavior::Honest);
            assert!((p.share - 0.7 / 3.0).abs() < 1e-12);
        }
        // The paper directory stays behavior-honest.
        assert!(!PoolDirectory::paper_dsn2020().has_adversary());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_shares_rejected() {
        let mut pools = PoolDirectory::uniform(2, 1);
        let cfgs = vec![pools.pool_mut(PoolId(0)).clone()];
        let _ = PoolDirectory::new(cfgs);
    }
}
