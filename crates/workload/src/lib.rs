//! Transaction workload generation.
//!
//! Reproduces the statistical features of the April-2019 transaction flow
//! that the paper's commit-time analysis depends on:
//!
//! - a Poisson base arrival process (21.96M transactions in a month is
//!   ~7.75 tx/s; scaled presets preserve *utilization*, the shape
//!   parameter of queueing delay);
//! - Zipf-skewed sender activity — a few exchanges and contracts emit most
//!   traffic;
//! - **bursts**: active senders submit short runs of consecutive nonces in
//!   quick succession. Burst transactions race each other through
//!   independent gossip paths, which is what produces the 11.54%
//!   out-of-order arrivals of §III-C2;
//! - a gas mix (transfers + contract calls) sized so blocks run ~80% full
//!   with ~100 transactions (§III-C3's context).
//!
//! The generator is a pure planner: [`TxGenerator::next_event`] returns the
//! planned transactions of the next submission event and the driver
//! schedules/injects them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ethmeter_sim::dist::{Exp, LogNormal, Zipf};
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{AccountId, ByteSize, Gas, Nonce, SimDuration};

/// Workload tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Mean global submission rate, transactions per second (counting every
    /// transaction of every burst).
    pub tx_rate: f64,
    /// Number of distinct sender accounts.
    pub accounts: usize,
    /// Zipf exponent of sender activity (0 = uniform).
    pub zipf_s: f64,
    /// Probability that a submission event is a burst (> 1 transaction).
    pub burst_prob: f64,
    /// Mean number of *extra* transactions in a burst (geometric).
    pub burst_extra_mean: f64,
    /// Mean gap between consecutive burst transactions.
    pub burst_gap: SimDuration,
    /// Fraction of plain transfers (21k gas, small) vs contract calls.
    pub transfer_fraction: f64,
    /// Median gas of a contract call (log-normal around this).
    pub contract_gas_median: f64,
    /// Gas price range (uniform, gwei).
    pub gas_price_range: (u64, u64),
}

impl Default for WorkloadConfig {
    /// Paper-scale defaults (7.75 tx/s; ~80% utilization of 8M-gas blocks
    /// at a 13.3s inter-block time).
    fn default() -> Self {
        WorkloadConfig {
            tx_rate: 7.75,
            accounts: 10_000,
            zipf_s: 1.05,
            burst_prob: 0.35,
            burst_extra_mean: 2.5,
            burst_gap: SimDuration::from_millis(40),
            transfer_fraction: 0.60,
            contract_gas_median: 120_000.0,
            gas_price_range: (1, 60),
        }
    }
}

impl WorkloadConfig {
    /// Scales the rate while keeping everything else fixed — used by the
    /// utilization-preserving presets (halve the rate, halve the block
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn with_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid tx rate {rate}");
        self.tx_rate = rate;
        self
    }

    /// Expected gas per transaction under the configured mix.
    pub fn mean_gas(&self) -> f64 {
        // LogNormal(median m, sigma 0.5) has mean m * exp(sigma^2 / 2).
        let contract_mean = self.contract_gas_median * (0.5f64 * 0.5 / 2.0).exp();
        self.transfer_fraction * 21_000.0 + (1.0 - self.transfer_fraction) * contract_mean
    }

    /// Expected block gas utilization given a block gas limit and
    /// inter-block time.
    pub fn utilization(&self, gas_limit: Gas, interblock: SimDuration) -> f64 {
        self.tx_rate * self.mean_gas() * interblock.as_secs_f64() / gas_limit as f64
    }
}

/// One planned transaction, relative to its submission event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedTx {
    /// Offset from the submission event instant.
    pub offset: SimDuration,
    /// The sender.
    pub sender: AccountId,
    /// The sender's next nonce.
    pub nonce: Nonce,
    /// Gas this transaction will consume.
    pub gas: Gas,
    /// Fee bid (gwei per gas).
    pub gas_price: u64,
    /// Wire size.
    pub size: ByteSize,
}

/// A submission event: one or more transactions from one sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionEvent {
    /// Delay from the previous event to this one.
    pub delay: SimDuration,
    /// The planned transactions (offsets are relative to the event).
    pub txs: Vec<PlannedTx>,
}

/// Stateful planner of the transaction stream.
#[derive(Debug, Clone)]
pub struct TxGenerator {
    config: WorkloadConfig,
    next_nonce: Vec<Nonce>,
    zipf: Zipf,
    event_gap: Exp,
    burst_gap: Exp,
    contract_gas: LogNormal,
    emitted: u64,
}

impl TxGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the config has no accounts or a non-positive rate.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.accounts > 0, "workload needs at least one account");
        assert!(
            config.tx_rate > 0.0 && config.tx_rate.is_finite(),
            "invalid tx rate"
        );
        // Events carry 1 + burst_prob * burst_extra_mean transactions on
        // average; the event rate is scaled so the *transaction* rate
        // matches config.tx_rate.
        let txs_per_event = 1.0 + config.burst_prob * config.burst_extra_mean;
        let event_rate = config.tx_rate / txs_per_event;
        TxGenerator {
            next_nonce: vec![0; config.accounts],
            zipf: Zipf::new(config.accounts, config.zipf_s),
            event_gap: Exp::with_rate(event_rate),
            burst_gap: Exp::with_mean(config.burst_gap.as_secs_f64().max(1e-6)),
            contract_gas: LogNormal::with_median(config.contract_gas_median, 0.5),
            emitted: 0,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Total transactions planned so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Plans the next submission event.
    pub fn next_event(&mut self, rng: &mut Xoshiro256) -> SubmissionEvent {
        let delay = self.event_gap.sample_duration(rng);
        let sender = AccountId(self.zipf.sample(rng) as u32);
        let count = if rng.chance(self.config.burst_prob) {
            // A burst always carries at least one extra; the extra count is
            // 1 + Geometric so its mean is exactly `burst_extra_mean`.
            let p = 1.0 / self.config.burst_extra_mean.max(1.0);
            let mut extras = 1usize;
            while !rng.chance(p) && extras < 16 {
                extras += 1;
            }
            1 + extras
        } else {
            1
        };
        let mut txs = Vec::with_capacity(count);
        let mut offset = SimDuration::ZERO;
        for i in 0..count {
            if i > 0 {
                offset += self.burst_gap.sample_duration(rng);
            }
            let nonce = self.next_nonce[sender.index()];
            self.next_nonce[sender.index()] += 1;
            let (gas, size) = self.sample_gas_and_size(rng);
            let (lo, hi) = self.config.gas_price_range;
            txs.push(PlannedTx {
                offset,
                sender,
                nonce,
                gas,
                gas_price: rng.range_u64(lo, hi),
                size,
            });
            self.emitted += 1;
        }
        SubmissionEvent { delay, txs }
    }

    fn sample_gas_and_size(&self, rng: &mut Xoshiro256) -> (Gas, ByteSize) {
        if rng.chance(self.config.transfer_fraction) {
            (21_000, ByteSize::from_bytes(110))
        } else {
            let gas = self.contract_gas.sample(rng).clamp(21_000.0, 2_000_000.0) as Gas;
            // Call data grows loosely with gas.
            let size = 180 + (gas / 500).min(4_000);
            (gas, ByteSize::from_bytes(size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run_events(gen: &mut TxGenerator, rng: &mut Xoshiro256, n: usize) -> Vec<SubmissionEvent> {
        (0..n).map(|_| gen.next_event(rng)).collect()
    }

    #[test]
    fn nonces_are_per_sender_sequential() {
        let mut generator = TxGenerator::new(WorkloadConfig::default());
        let mut rng = Xoshiro256::seed_from_u64(1);
        let events = run_events(&mut generator, &mut rng, 5_000);
        let mut expected: HashMap<AccountId, Nonce> = HashMap::new();
        for ev in &events {
            for tx in &ev.txs {
                let e = expected.entry(tx.sender).or_insert(0);
                assert_eq!(tx.nonce, *e, "sender {:?}", tx.sender);
                *e += 1;
            }
        }
    }

    #[test]
    fn burst_offsets_are_monotone() {
        let mut generator = TxGenerator::new(WorkloadConfig::default());
        let mut rng = Xoshiro256::seed_from_u64(2);
        for ev in run_events(&mut generator, &mut rng, 2_000) {
            for w in ev.txs.windows(2) {
                assert!(w[1].offset > w[0].offset);
                assert_eq!(w[1].sender, w[0].sender);
                assert_eq!(w[1].nonce, w[0].nonce + 1);
            }
        }
    }

    #[test]
    fn average_rate_matches_config() {
        let cfg = WorkloadConfig::default().with_rate(5.0);
        let mut generator = TxGenerator::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let events = run_events(&mut generator, &mut rng, 50_000);
        let total_time: f64 = events.iter().map(|e| e.delay.as_secs_f64()).sum();
        let total_txs: usize = events.iter().map(|e| e.txs.len()).sum();
        let rate = total_txs as f64 / total_time;
        assert!((rate - 5.0).abs() < 0.25, "observed rate {rate}");
    }

    #[test]
    fn burst_fraction_close_to_config() {
        let cfg = WorkloadConfig::default();
        let expected = cfg.burst_prob;
        let mut generator = TxGenerator::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let events = run_events(&mut generator, &mut rng, 50_000);
        let bursts = events.iter().filter(|e| e.txs.len() > 1).count();
        let frac = bursts as f64 / events.len() as f64;
        assert!((frac - expected).abs() < 0.02, "burst fraction {frac}");
    }

    #[test]
    fn utilization_lands_near_eighty_percent() {
        let cfg = WorkloadConfig::default();
        let u = cfg.utilization(8_000_000, SimDuration::from_secs_f64(13.3));
        assert!((0.70..=0.92).contains(&u), "utilization {u}");
        // Scaling rate and capacity together preserves utilization.
        let scaled = cfg.clone().with_rate(1.0);
        let u2 = scaled.utilization(
            (8_000_000.0 / 7.75) as u64,
            SimDuration::from_secs_f64(13.3),
        );
        assert!((u - u2).abs() < 0.01, "{u} vs {u2}");
    }

    #[test]
    fn gas_mix_is_bimodal() {
        let mut generator = TxGenerator::new(WorkloadConfig::default());
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut transfers = 0usize;
        let mut total = 0usize;
        for ev in run_events(&mut generator, &mut rng, 20_000) {
            for tx in &ev.txs {
                total += 1;
                if tx.gas == 21_000 {
                    transfers += 1;
                }
                assert!(tx.gas >= 21_000);
                assert!(tx.size.as_bytes() >= 110);
            }
        }
        let frac = transfers as f64 / total as f64;
        assert!((frac - 0.60).abs() < 0.02, "transfer fraction {frac}");
    }

    #[test]
    fn zipf_concentrates_activity() {
        let mut generator = TxGenerator::new(WorkloadConfig::default());
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut counts: HashMap<AccountId, usize> = HashMap::new();
        for ev in run_events(&mut generator, &mut rng, 30_000) {
            for tx in &ev.txs {
                *counts.entry(tx.sender).or_default() += 1;
            }
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = v.iter().sum();
        let top100: usize = v.iter().take(100).sum();
        // With s = 1.05 over 10k accounts, the top 100 senders carry a
        // large minority of traffic.
        let frac = top100 as f64 / total as f64;
        assert!(frac > 0.25, "top-100 sender share {frac}");
    }

    #[test]
    fn emitted_counter_tracks() {
        let mut generator = TxGenerator::new(WorkloadConfig::default());
        let mut rng = Xoshiro256::seed_from_u64(7);
        let events = run_events(&mut generator, &mut rng, 100);
        let total: usize = events.iter().map(|e| e.txs.len()).sum();
        assert_eq!(generator.emitted(), total as u64);
    }
}
