//! Scheduled, deterministic network dynamics and attack scripts.
//!
//! The paper's measurements (§IV–V) run on a *static* world; this crate
//! supplies the fault-injection layer that stresses it: node churn
//! (leave/rejoin), link failures and heals, regional partitions,
//! bandwidth/latency degradation windows, and the attack scenarios they
//! enable — eclipse/isolation of a victim pool's gateways, transaction
//! floods through the txpool, and the double-spend depth analysis built
//! on top (`P(revert ≥ k)`, see `ethmeter_analysis::reorg`).
//!
//! A [`DynamicsScript`] is a list of `(SimTime, DynamicsEvent)` entries.
//! It is *data only*: the simulation driver (`ethmeter-core`) lowers each
//! entry into its event stream and applies the topology mutations. Every
//! event fires at a pre-declared virtual time, so a scripted campaign is
//! exactly as deterministic as a static one — the same script, scenario,
//! and seed produce bit-identical campaign fingerprints on the sequential
//! and sharded engines alike.
//!
//! ```
//! use ethmeter_dynamics::{DynamicsScript, RegionMask};
//! use ethmeter_types::{Region, SimDuration, SimTime};
//!
//! let asia = RegionMask::of(&[Region::EasternAsia, Region::SouthAsia]);
//! let rest = asia.complement();
//! let script = DynamicsScript::new().partition_window(
//!     SimTime::ZERO + SimDuration::from_mins(5),
//!     SimDuration::from_mins(3),
//!     asia,
//!     rest,
//! );
//! assert_eq!(script.entries().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ethmeter_sim::Xoshiro256;
use ethmeter_types::{NodeId, PoolId, Region, SimDuration, SimTime};

/// A set of [`Region`]s as a bitmask over [`Region::ALL`] indices.
///
/// Used by partition events: a partition severs every link whose
/// endpoints fall on opposite sides of an `(a, b)` mask pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionMask(u8);

impl RegionMask {
    /// The empty set.
    pub const EMPTY: RegionMask = RegionMask(0);

    /// Every region.
    pub const ALL: RegionMask = RegionMask(((1u16 << Region::COUNT) - 1) as u8);

    /// Builds a mask from a list of regions.
    pub fn of(regions: &[Region]) -> Self {
        let mut bits = 0u8;
        for r in regions {
            bits |= 1 << r.index();
        }
        RegionMask(bits)
    }

    /// True if `region` is in the set.
    pub fn contains(self, region: Region) -> bool {
        self.0 & (1 << region.index()) != 0
    }

    /// The regions *not* in this set.
    pub fn complement(self) -> Self {
        RegionMask(!self.0 & Self::ALL.0)
    }

    /// True if no region is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the two sets share a region.
    pub fn intersects(self, other: RegionMask) -> bool {
        self.0 & other.0 != 0
    }
}

/// One scheduled dynamics action.
///
/// Node and pool identifiers refer to the scenario's own numbering: the
/// driver validates them against the world at build time
/// ([`DynamicsScript::validate`]) so a malformed script fails with a
/// structured error naming the offending [`SimTime`] instead of
/// panicking inside a shard worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicsEvent {
    /// The node leaves: every one of its links is torn down (per-link
    /// gossip state dropped on both ends). The torn link set is recorded
    /// for [`DynamicsEvent::NodeUp`].
    NodeDown(NodeId),
    /// The node rejoins: its recorded links are re-dialed (skipping
    /// peers that are themselves still down — those re-dial on their own
    /// rejoin). Fresh links start with empty known-sets, like any new
    /// dial.
    NodeUp(NodeId),
    /// One link fails (both ends forget it). Recorded for
    /// [`DynamicsEvent::LinkUp`].
    LinkDown(NodeId, NodeId),
    /// A previously failed link heals. A no-op if the pair was never
    /// severed or either end is down (the pair then re-dials on rejoin).
    LinkUp(NodeId, NodeId),
    /// Regional partition: every live link with one endpoint in `a` and
    /// the other in `b` is severed (recorded for [`DynamicsEvent::Heal`]).
    Partition {
        /// One side of the cut.
        a: RegionMask,
        /// The other side.
        b: RegionMask,
    },
    /// Heals every severed link whose endpoints match the `a`/`b` masks
    /// (in either orientation) and whose endpoints are both up.
    Heal {
        /// One side of the original cut.
        a: RegionMask,
        /// The other side.
        b: RegionMask,
    },
    /// Multiplies every subsequently sampled link latency by `factor`
    /// (`> 1` degrades, `< 1` upgrades). Stays in force until the next
    /// `LatencyScale`; `1.0` restores nominal latency.
    LatencyScale(f64),
    /// Scales effective access bandwidth by `factor` (transfer times are
    /// divided by it; `< 1` degrades). Stays in force until the next
    /// `BandwidthScale`; `1.0` restores nominal bandwidth.
    BandwidthScale(f64),
    /// Eclipse attack: every gateway of the victim pool is isolated
    /// (all gossip links torn, as [`DynamicsEvent::NodeDown`] per
    /// gateway). The pool keeps mining — its stratum path to its own
    /// gateways is internal — so it extends an island chain that is
    /// reverted on release, which is what drives `P(revert ≥ k)`.
    EclipsePool(PoolId),
    /// Ends an eclipse: every gateway of the pool re-dials its recorded
    /// links (as [`DynamicsEvent::NodeUp`] per gateway).
    ReleasePool(PoolId),
    /// Starts a transaction-spam flood: spam transactions from random
    /// origin nodes are injected into the gossip layer as a Poisson
    /// process at `rate_per_sec`, on top of the normal workload. The
    /// spam stream draws from the dedicated dynamics RNG lane, so the
    /// base workload is untouched.
    FloodStart {
        /// Mean spam injections per simulated second.
        rate_per_sec: f64,
    },
    /// Stops the flood started by the latest [`DynamicsEvent::FloodStart`].
    FloodStop,
}

/// Why a script failed validation. Every variant carries the virtual
/// time of the offending entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicsError {
    /// A node id at or beyond the world's node count.
    UnknownNode {
        /// When the offending entry fires.
        at: SimTime,
        /// The out-of-range node.
        node: NodeId,
    },
    /// A pool id at or beyond the scenario's pool count.
    UnknownPool {
        /// When the offending entry fires.
        at: SimTime,
        /// The out-of-range pool.
        pool: PoolId,
    },
    /// A link event naming the same node on both ends.
    SelfLink {
        /// When the offending entry fires.
        at: SimTime,
        /// The node linked to itself.
        node: NodeId,
    },
    /// A partition/heal with an empty or overlapping region pair.
    BadRegionPair {
        /// When the offending entry fires.
        at: SimTime,
    },
    /// A latency/bandwidth factor that is not finite and positive.
    BadScale {
        /// When the offending entry fires.
        at: SimTime,
        /// The rejected factor.
        factor: f64,
    },
    /// A flood rate that is not finite and positive.
    BadRate {
        /// When the offending entry fires.
        at: SimTime,
        /// The rejected rate.
        rate: f64,
    },
}

impl std::fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicsError::UnknownNode { at, node } => {
                write!(f, "dynamics entry at {at}: unknown node {node}")
            }
            DynamicsError::UnknownPool { at, pool } => {
                write!(f, "dynamics entry at {at}: unknown pool {pool:?}")
            }
            DynamicsError::SelfLink { at, node } => {
                write!(f, "dynamics entry at {at}: self-link on node {node}")
            }
            DynamicsError::BadRegionPair { at } => {
                write!(
                    f,
                    "dynamics entry at {at}: partition sides must be non-empty and disjoint"
                )
            }
            DynamicsError::BadScale { at, factor } => {
                write!(
                    f,
                    "dynamics entry at {at}: scale factor {factor} must be finite and positive"
                )
            }
            DynamicsError::BadRate { at, rate } => {
                write!(
                    f,
                    "dynamics entry at {at}: flood rate {rate} must be finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for DynamicsError {}

/// A deterministic fault-injection script: `(SimTime, DynamicsEvent)`
/// entries attached to a scenario via `ScenarioBuilder::dynamics(...)`.
///
/// Entries need not be sorted; the driver schedules each at its declared
/// time. Entries sharing a timestamp fire in list order. An empty script
/// is the static world: campaigns are bit-identical to a scenario with
/// no dynamics at all (pinned by the golden regression tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicsScript {
    entries: Vec<(SimTime, DynamicsEvent)>,
}

impl DynamicsScript {
    /// An empty script (the static world).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry; returns the script for chaining.
    #[must_use]
    pub fn at(mut self, time: SimTime, event: DynamicsEvent) -> Self {
        self.entries.push((time, event));
        self
    }

    /// The scheduled entries, in list order.
    pub fn entries(&self) -> &[(SimTime, DynamicsEvent)] {
        &self.entries
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Recipe: sever all links between region sets `a` and `b` at
    /// `start`, heal them `duration` later.
    #[must_use]
    pub fn partition_window(
        self,
        start: SimTime,
        duration: SimDuration,
        a: RegionMask,
        b: RegionMask,
    ) -> Self {
        self.at(start, DynamicsEvent::Partition { a, b })
            .at(start + duration, DynamicsEvent::Heal { a, b })
    }

    /// Recipe: eclipse `pool`'s gateways at `start`, release them
    /// `duration` later.
    #[must_use]
    pub fn eclipse_window(self, start: SimTime, duration: SimDuration, pool: PoolId) -> Self {
        self.at(start, DynamicsEvent::EclipsePool(pool))
            .at(start + duration, DynamicsEvent::ReleasePool(pool))
    }

    /// Recipe: flood spam transactions at `rate_per_sec` for `duration`
    /// starting at `start`.
    #[must_use]
    pub fn flood_window(self, start: SimTime, duration: SimDuration, rate_per_sec: f64) -> Self {
        self.at(start, DynamicsEvent::FloodStart { rate_per_sec })
            .at(start + duration, DynamicsEvent::FloodStop)
    }

    /// Recipe: take one node down at `start` and bring it back
    /// `duration` later.
    #[must_use]
    pub fn churn_window(self, start: SimTime, duration: SimDuration, node: NodeId) -> Self {
        self.at(start, DynamicsEvent::NodeDown(node))
            .at(start + duration, DynamicsEvent::NodeUp(node))
    }

    /// Generates a deterministic churn script: over `[start, start +
    /// span)`, a `fraction` of the first `nodes` node ids (sampled
    /// without replacement from `seed`) each go down once at a random
    /// offset and come back after `downtime`. The same arguments always
    /// produce the same script.
    #[must_use]
    pub fn churn(
        mut self,
        seed: u64,
        nodes: u32,
        fraction: f64,
        start: SimTime,
        span: SimDuration,
        downtime: SimDuration,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "churn fraction must be in [0, 1]"
        );
        assert!(nodes > 0, "churn needs a node population");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let churners = ((f64::from(nodes) * fraction).round() as u32).min(nodes);
        // Partial Fisher–Yates over the id range: the first `churners`
        // entries are a uniform sample without replacement.
        let mut ids: Vec<u32> = (0..nodes).collect();
        for i in 0..churners as usize {
            let j = i + (rng.next_u64() as usize) % (ids.len() - i);
            ids.swap(i, j);
        }
        let span_ns = span.as_secs_f64();
        for &id in &ids[..churners as usize] {
            let offset = SimDuration::from_secs_f64(rng.next_f64() * span_ns);
            self = self.churn_window(start + offset, downtime, NodeId(id));
        }
        self
    }

    /// The smallest latency scale factor any entry can put in force
    /// (`1.0` if none scales latency). The sharded engine's lookahead is
    /// `proc_overhead + min_link_delay × min(1, this)`, pre-computed
    /// conservatively before the run so a degradation window can never
    /// undercut the synchronization horizon.
    pub fn min_latency_scale(&self) -> f64 {
        let mut min = 1.0f64;
        for (_, e) in &self.entries {
            if let DynamicsEvent::LatencyScale(factor) = e {
                min = min.min(*factor);
            }
        }
        min
    }

    /// Validates every entry against a world of `nodes` nodes and
    /// `pools` pools, returning the first offense with its [`SimTime`].
    pub fn validate(&self, nodes: usize, pools: usize) -> Result<(), DynamicsError> {
        let check_node = |at: SimTime, n: NodeId| {
            if (n.index()) < nodes {
                Ok(())
            } else {
                Err(DynamicsError::UnknownNode { at, node: n })
            }
        };
        for &(at, ref event) in &self.entries {
            match *event {
                DynamicsEvent::NodeDown(n) | DynamicsEvent::NodeUp(n) => check_node(at, n)?,
                DynamicsEvent::LinkDown(a, b) | DynamicsEvent::LinkUp(a, b) => {
                    check_node(at, a)?;
                    check_node(at, b)?;
                    if a == b {
                        return Err(DynamicsError::SelfLink { at, node: a });
                    }
                }
                DynamicsEvent::Partition { a, b } | DynamicsEvent::Heal { a, b } => {
                    if a.is_empty() || b.is_empty() || a.intersects(b) {
                        return Err(DynamicsError::BadRegionPair { at });
                    }
                }
                DynamicsEvent::LatencyScale(factor) | DynamicsEvent::BandwidthScale(factor) => {
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(DynamicsError::BadScale { at, factor });
                    }
                }
                DynamicsEvent::EclipsePool(p) | DynamicsEvent::ReleasePool(p) => {
                    if p.0 as usize >= pools {
                        return Err(DynamicsError::UnknownPool { at, pool: p });
                    }
                }
                DynamicsEvent::FloodStart { rate_per_sec } => {
                    if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
                        return Err(DynamicsError::BadRate {
                            at,
                            rate: rate_per_sec,
                        });
                    }
                }
                DynamicsEvent::FloodStop => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn region_mask_basics() {
        let asia = RegionMask::of(&[Region::EasternAsia, Region::SouthAsia]);
        assert!(asia.contains(Region::EasternAsia));
        assert!(!asia.contains(Region::Oceania));
        assert!(asia.complement().contains(Region::Oceania));
        assert!(!asia.intersects(asia.complement()));
        assert!(RegionMask::ALL.contains(Region::SouthAmerica));
        assert!(RegionMask::EMPTY.is_empty());
        assert_eq!(RegionMask::ALL.complement(), RegionMask::EMPTY);
    }

    #[test]
    fn recipes_expand_to_paired_entries() {
        let asia = RegionMask::of(&[Region::EasternAsia]);
        let script = DynamicsScript::new()
            .partition_window(t(10), SimDuration::from_secs(60), asia, asia.complement())
            .eclipse_window(t(5), SimDuration::from_secs(30), PoolId(0))
            .flood_window(t(1), SimDuration::from_secs(2), 50.0)
            .churn_window(t(7), SimDuration::from_secs(3), NodeId(4));
        assert_eq!(script.entries().len(), 8);
        assert_eq!(
            script.entries()[1],
            (
                t(70),
                DynamicsEvent::Heal {
                    a: asia,
                    b: asia.complement()
                }
            )
        );
        assert_eq!(
            script.entries()[3],
            (t(35), DynamicsEvent::ReleasePool(PoolId(0)))
        );
        assert!(script.validate(10, 1).is_ok());
    }

    #[test]
    fn churn_is_deterministic_and_sized() {
        let a = DynamicsScript::new().churn(
            9,
            40,
            0.25,
            t(0),
            SimDuration::from_mins(10),
            SimDuration::from_mins(1),
        );
        let b = DynamicsScript::new().churn(
            9,
            40,
            0.25,
            t(0),
            SimDuration::from_mins(10),
            SimDuration::from_mins(1),
        );
        assert_eq!(a, b, "same seed, same script");
        assert_eq!(a.entries().len(), 2 * 10, "25% of 40 nodes, down+up each");
        // Distinct churners (sample without replacement).
        let mut ids: Vec<u32> = a
            .entries()
            .iter()
            .filter_map(|(_, e)| match e {
                DynamicsEvent::NodeDown(n) => Some(n.0),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        let c = DynamicsScript::new().churn(
            10,
            40,
            0.25,
            t(0),
            SimDuration::from_mins(10),
            SimDuration::from_mins(1),
        );
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn validation_names_the_offending_time() {
        let bad = DynamicsScript::new().at(t(33), DynamicsEvent::NodeDown(NodeId(99)));
        assert_eq!(
            bad.validate(10, 1),
            Err(DynamicsError::UnknownNode {
                at: t(33),
                node: NodeId(99)
            })
        );
        let self_link =
            DynamicsScript::new().at(t(2), DynamicsEvent::LinkDown(NodeId(3), NodeId(3)));
        assert_eq!(
            self_link.validate(10, 1),
            Err(DynamicsError::SelfLink {
                at: t(2),
                node: NodeId(3)
            })
        );
        let overlap = DynamicsScript::new().at(
            t(4),
            DynamicsEvent::Partition {
                a: RegionMask::ALL,
                b: RegionMask::of(&[Region::Oceania]),
            },
        );
        assert_eq!(
            overlap.validate(10, 1),
            Err(DynamicsError::BadRegionPair { at: t(4) })
        );
        let bad_scale = DynamicsScript::new().at(t(6), DynamicsEvent::LatencyScale(0.0));
        assert!(matches!(
            bad_scale.validate(10, 1),
            Err(DynamicsError::BadScale { .. })
        ));
        let bad_pool = DynamicsScript::new().at(t(8), DynamicsEvent::EclipsePool(PoolId(7)));
        assert!(matches!(
            bad_pool.validate(10, 2),
            Err(DynamicsError::UnknownPool { .. })
        ));
        let bad_rate = DynamicsScript::new().at(
            t(9),
            DynamicsEvent::FloodStart {
                rate_per_sec: f64::NAN,
            },
        );
        assert!(matches!(
            bad_rate.validate(10, 1),
            Err(DynamicsError::BadRate { .. })
        ));
    }

    #[test]
    fn min_latency_scale_is_conservative() {
        let s = DynamicsScript::new()
            .at(t(1), DynamicsEvent::LatencyScale(2.0))
            .at(t(2), DynamicsEvent::LatencyScale(0.25))
            .at(t(3), DynamicsEvent::LatencyScale(1.0));
        assert_eq!(s.min_latency_scale(), 0.25);
        assert_eq!(DynamicsScript::new().min_latency_scale(), 1.0);
    }
}
