//! Figure 6: empty blocks per mining pool.
//!
//! "We measure the number of empty blocks in the network, and the mining
//! pools from which they originate" (§III-C3). The report also surfaces
//! the paper's anecdote: miners **all** of whose blocks were empty.

use std::collections::HashMap;
use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{pct, Table};
use ethmeter_types::PoolId;

/// One pool's row in Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyBlockRow {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share.
    pub hash_share: f64,
    /// Canonical blocks mined during the campaign.
    pub blocks: u64,
    /// Canonical blocks with zero transactions.
    pub empty: u64,
}

impl EmptyBlockRow {
    /// Fraction of this pool's blocks that were empty.
    pub fn empty_fraction(&self) -> f64 {
        self.empty as f64 / self.blocks.max(1) as f64
    }
}

/// Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyBlockReport {
    /// Per-pool rows, ordered by descending hash share, tail folded into a
    /// "Remaining pools" row.
    pub rows: Vec<EmptyBlockRow>,
    /// Total canonical blocks.
    pub total_blocks: u64,
    /// Total empty canonical blocks.
    pub total_empty: u64,
    /// Pools whose every block was empty (with ≥1 block) — the paper's
    /// always-empty miner.
    pub all_empty_miners: Vec<(String, u64)>,
}

impl EmptyBlockReport {
    /// Overall empty fraction (paper: 1.45%).
    pub fn empty_fraction(&self) -> f64 {
        self.total_empty as f64 / self.total_blocks.max(1) as f64
    }
}

/// Computes Figure 6 over the canonical chain, keeping `top_n` pools.
pub fn analyze(data: &CampaignData, top_n: usize) -> EmptyBlockReport {
    let mut blocks: HashMap<PoolId, (u64, u64)> = HashMap::new();
    let mut total_blocks = 0u64;
    let mut total_empty = 0u64;
    for block in data.truth.tree.canonical_blocks() {
        if block.number() == 0 {
            continue;
        }
        total_blocks += 1;
        let e = blocks.entry(block.miner()).or_default();
        e.0 += 1;
        if block.is_empty() {
            e.1 += 1;
            total_empty += 1;
        }
    }
    let mut pool_ids: Vec<PoolId> = blocks.keys().copied().collect();
    pool_ids.sort_by(|a, b| {
        data.truth
            .pool_share(*b)
            .partial_cmp(&data.truth.pool_share(*a))
            .expect("finite")
            .then(a.cmp(b))
    });
    let mut rows = Vec::new();
    let mut rest = (0u64, 0u64);
    let mut rest_share = 0.0;
    let mut all_empty_miners = Vec::new();
    for (rank, pool) in pool_ids.iter().enumerate() {
        let (b, e) = blocks[pool];
        let name = data.truth.pool_name(*pool);
        if e == b && b > 0 {
            all_empty_miners.push((name.clone(), b));
        }
        if rank < top_n {
            rows.push(EmptyBlockRow {
                pool: *pool,
                name,
                hash_share: data.truth.pool_share(*pool),
                blocks: b,
                empty: e,
            });
        } else {
            rest.0 += b;
            rest.1 += e;
            rest_share += data.truth.pool_share(*pool);
        }
    }
    if rest.0 > 0 {
        rows.push(EmptyBlockRow {
            pool: PoolId(u16::MAX),
            name: "Remaining pools".into(),
            hash_share: rest_share,
            blocks: rest.0,
            empty: rest.1,
        });
    }
    EmptyBlockReport {
        rows,
        total_blocks,
        total_empty,
        all_empty_miners,
    }
}

impl fmt::Display for EmptyBlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — empty blocks per pool: {} of {} main blocks empty ({}; paper: 1.45%)",
            self.total_empty,
            self.total_blocks,
            pct(self.empty_fraction())
        )?;
        let mut t = Table::new(vec!["Pool", "Share", "Blocks", "Empty", "Empty %"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.hash_share),
                r.blocks.to_string(),
                r.empty.to_string(),
                pct(r.empty_fraction()),
            ]);
        }
        write!(f, "{t}")?;
        for (name, b) in &self.all_empty_miners {
            writeln!(f)?;
            write!(f, "note: {name} mined {b} blocks, all empty")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_measure::CampaignData;
    use ethmeter_types::{SimTime, TxId};

    /// Chain where pool 0 mines blocks with txs, pool 1 mines empty ones.
    fn campaign() -> CampaignData {
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        for i in 0..10u64 {
            let miner = PoolId((i % 2) as u16);
            let txs = if miner == PoolId(0) {
                vec![TxId(i)]
            } else {
                vec![]
            };
            let b = BlockBuilder::new(parent, i + 1, miner)
                .mined_at(SimTime::from_secs(i))
                .txs(txs)
                .salt(i)
                .build();
            parent = b.hash();
            tree.insert(b).expect("ok");
        }
        CampaignData {
            observers: vec![],
            truth: testutil::truth(tree, Default::default()),
        }
    }

    #[test]
    fn per_pool_counts() {
        let r = analyze(&campaign(), 15);
        assert_eq!(r.total_blocks, 10);
        assert_eq!(r.total_empty, 5);
        assert!((r.empty_fraction() - 0.5).abs() < 1e-9);
        let ethermine = r.rows.iter().find(|x| x.name == "Ethermine").expect("row");
        assert_eq!(ethermine.blocks, 5);
        assert_eq!(ethermine.empty, 0);
        let spark = r.rows.iter().find(|x| x.name == "Sparkpool").expect("row");
        assert_eq!(spark.empty, 5);
        assert!((spark.empty_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_empty_miner_flagged() {
        let r = analyze(&campaign(), 15);
        assert_eq!(r.all_empty_miners, vec![("Sparkpool".to_owned(), 5)]);
        assert!(r.to_string().contains("all empty"));
    }

    #[test]
    fn tail_folding() {
        let r = analyze(&campaign(), 1);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1].name, "Remaining pools");
        assert_eq!(r.rows[1].blocks, 5);
    }

    #[test]
    fn display_renders() {
        assert!(analyze(&campaign(), 15).to_string().contains("Figure 6"));
    }
}
