//! Interning: contiguous `u32` slots for hash-like identifiers.
//!
//! The simulation hot path touches per-peer "known" state for every
//! delivered message. Keying that state by 64-bit hashes forces a SipHash
//! computation plus a hash-map probe per peer per message; keying it by a
//! *dense interned index* turns the same operations into array indexing.
//! [`Interner`] is the slot allocator: the first time a key is seen it is
//! assigned the next `u32` slot, and both directions (key → slot,
//! slot → key) stay O(1) thereafter.
//!
//! Determinism: slots are assigned in interning order, which the
//! simulation driver makes deterministic (blocks and transactions are
//! interned at creation time). The internal hash map is used only for
//! point lookups — its iteration order never influences results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A minimal Fx-style hasher for small integer keys (ids and mixed
/// 64-bit hashes). Multiplicative mixing is plenty here: every key type
/// in this workspace is either sequential or already well mixed (see
/// [`crate::BlockHash::mix`]), and the map is never iterated for output,
/// so the only requirements are speed and determinism.
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    state: u64,
}

/// Golden-ratio multiplier (same constant as SplitMix64's increment).
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(26) ^ v).wrapping_mul(PHI64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`]; plug into `HashMap`/`HashSet` for
/// deterministic, cheap hashing of integer-like keys.
pub type BuildFxHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed through [`FxHasher64`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildFxHasher>;

/// A `HashSet` keyed through [`FxHasher64`].
pub type FxHashSet<T> = HashSet<T, BuildFxHasher>;

/// Assigns contiguous `u32` slots to keys in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct Interner<K> {
    slots: FxHashMap<K, u32>,
    keys: Vec<K>,
}

impl<K: Copy + Eq + Hash> Interner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            slots: FxHashMap::default(),
            keys: Vec::new(),
        }
    }

    /// Creates an empty interner with room for `cap` keys.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            slots: FxHashMap::with_capacity_and_hasher(cap, BuildFxHasher::default()),
            keys: Vec::with_capacity(cap),
        }
    }

    /// Returns `key`'s slot, assigning the next free one on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are interned.
    #[inline]
    pub fn intern(&mut self, key: K) -> u32 {
        if let Some(&slot) = self.slots.get(&key) {
            return slot;
        }
        let slot = u32::try_from(self.keys.len()).expect("interner slot space exhausted");
        self.slots.insert(key, slot);
        self.keys.push(key);
        slot
    }

    /// The slot of an already-interned key.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<u32> {
        self.slots.get(&key).copied()
    }

    /// The key occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never assigned.
    #[inline]
    pub fn resolve(&self, slot: u32) -> K {
        self.keys[slot as usize]
    }

    /// Number of interned keys (== the next free slot).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys, in slot order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Forgets every key, retaining the allocated capacity so a reused
    /// interner starts its next campaign allocation-free.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockHash;

    #[test]
    fn interning_is_first_seen_dense() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern(BlockHash(50)), 0);
        assert_eq!(i.intern(BlockHash(7)), 1);
        assert_eq!(i.intern(BlockHash(50)), 0, "idempotent");
        assert_eq!(i.len(), 2);
        assert_eq!(i.lookup(BlockHash(7)), Some(1));
        assert_eq!(i.lookup(BlockHash(8)), None);
        assert_eq!(i.resolve(0), BlockHash(50));
        assert_eq!(i.keys(), &[BlockHash(50), BlockHash(7)]);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = Interner::with_capacity(16);
        let mut b = Interner::new();
        for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            assert_eq!(a.intern(k), b.intern(k));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic]
    fn resolve_of_unassigned_slot_panics() {
        let i: Interner<u64> = Interner::new();
        let _ = i.resolve(0);
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut h = FxHasher64::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential keys land in distinct buckets of a small table.
        let buckets: std::collections::HashSet<u64> = (0..64).map(|v| h(v) >> 58).collect();
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The interner must agree with the obvious `HashMap` model on
        /// every operation: slots are dense, first-seen ordered, stable
        /// under re-interning, and resolve round-trips.
        #[test]
        fn interner_equivalent_to_hashmap_model(
            keys in proptest::collection::vec(0u64..64, 0..256),
        ) {
            let mut interner: Interner<u64> = Interner::new();
            let mut model: HashMap<u64, u32> = HashMap::new();
            for &k in &keys {
                let next = model.len() as u32;
                let slot = interner.intern(k);
                let expected = *model.entry(k).or_insert(next);
                prop_assert_eq!(slot, expected, "slot of {}", k);
                prop_assert_eq!(interner.resolve(slot), k, "resolve roundtrip");
            }
            prop_assert_eq!(interner.len(), model.len());
            for probe in 0..64u64 {
                prop_assert_eq!(interner.lookup(probe), model.get(&probe).copied());
            }
            // Slot order is exactly first-seen order.
            let mut seen = Vec::new();
            for &k in &keys {
                if !seen.contains(&k) {
                    seen.push(k);
                }
            }
            prop_assert_eq!(interner.keys(), &seen[..]);
        }
    }
}
