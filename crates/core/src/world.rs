//! The discrete-event simulation world.
//!
//! [`SimWorld`] owns every entity of a campaign — the P2P nodes (ordinary
//! peers, pool gateways, instrumented observers), the global block and
//! transaction registries, the mining races, and the workload generator —
//! and interprets the [`Event`] alphabet for the [`ethmeter_sim::Engine`].
//!
//! Storage is dense end to end: blocks and transactions are interned into
//! contiguous slots at creation time ([`ethmeter_chain::BlockRegistry`] /
//! [`ethmeter_chain::TxRegistry`]), events carry those slots, nodes and
//! pools live in `Vec`s addressed by raw [`NodeId`]/[`PoolId`] indices,
//! and per-node gossip state is slab-indexed (see [`ethmeter_net::Node`]).
//! Real hashes appear exactly where the outside world looks: wire
//! messages and observer logs.
//!
//! The steady state is also allocation-free: node handlers append their
//! outgoing messages to one world-owned `Vec<Send>` recycled across every
//! event, the scheduler writes follow-up events straight into the
//! engine's queue slab, small wire payloads live inline in the
//! [`Message`] itself, fan-out sampling and block packing run through
//! world- and node-owned scratch buffers, and the ground-truth block tree
//! is materialized from the registry only at the campaign boundary — the
//! hot path never clones a block.
//!
//! Worlds are reusable: [`SimWorld::reset`] rewinds everything to what
//! `SimWorld::new` would build for a scenario while retaining every
//! allocation (registries, node tables, known-set probe tables, observer
//! logs), which is what lets sweep workers run whole job streams without
//! rebuilding their heap footprint per seed.
//!
//! Timing model per message: fixed processing overhead + sender-uplink
//! serialization + sampled geographic link latency + receiver-downlink
//! serialization. Block imports additionally pay a validation delay that
//! grows with transaction count (why empty blocks win races), and pools
//! re-target their miners a sampled lag after their gateway switches heads
//! (the stale-mining window behind the fork rate).

use ethmeter_chain::block::{Block, BlockBuilder};
use ethmeter_chain::consensus::{Consensus, ConsensusKind};
use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::Transaction;
use ethmeter_chain::uncles::UnclePolicy;
use ethmeter_chain::{BlockRegistry, TxRegistry};
use ethmeter_dynamics::{DynamicsEvent, RegionMask};
use ethmeter_geo::{BandwidthClass, ClockSkew};
use ethmeter_measure::{BlockMsgKind, ObserverLog, SpillConfig, VantagePoint};
use ethmeter_mining::{
    next_block_delay, BlockPlan, PoolBehavior, PoolDirectory, SelfishOutcome, SelfishState,
};
use ethmeter_net::topology::DegreePlan;
use ethmeter_net::{
    ImportAction, Message, Node, RemoteEvent, RemoteEventKind, Send, ShardMap, Topology,
};
use ethmeter_sim::dist::{Exp, LogNormal};
use ethmeter_sim::engine::Scheduler;
use ethmeter_sim::{World, Xoshiro256};
use ethmeter_types::{
    AccountId, BlockHash, BlockIdx, BlockNumber, ByteSize, FxHashMap, FxHashSet, NodeId, PoolId,
    Region, SimDuration, SimTime, TxId, TxIdx,
};
use std::sync::Arc;

use crate::scenario::Scenario;

/// The event alphabet of a campaign.
///
/// Block- and transaction-bearing events carry dense registry slots
/// ([`BlockIdx`]/[`TxIdx`]); wire [`Message`]s keep real hashes.
#[derive(Debug, Clone)]
pub enum Event {
    /// A message arrives at a node.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// A node finishes validating/importing a block.
    ImportDone {
        /// The importing node.
        node: NodeId,
        /// The block's registry slot.
        idx: BlockIdx,
    },
    /// A fetcher timeout fires.
    FetchTimeout {
        /// The fetching node.
        node: NodeId,
        /// The fetched block's registry slot.
        idx: BlockIdx,
    },
    /// A pool's miners solve a block at their current target.
    PoolSolve {
        /// The pool.
        pool: PoolId,
    },
    /// A pool re-reads its primary gateway's head (post-lag).
    PoolRetarget {
        /// The pool.
        pool: PoolId,
    },
    /// A freshly mined block reaches one of the pool's gateways.
    InjectBlock {
        /// The gateway node.
        node: NodeId,
        /// The block's registry slot.
        idx: BlockIdx,
    },
    /// A selfish pool publishes a (previously withheld) block — decided
    /// at fork-choice time by its behavior machine, never at mint time.
    PoolRelease {
        /// The releasing pool.
        pool: PoolId,
        /// The withheld block's registry slot.
        idx: BlockIdx,
    },
    /// The workload generator plans its next submission.
    NextSubmission,
    /// A planned transaction enters the network at its origin node.
    InjectTx {
        /// The transaction's registry slot.
        idx: TxIdx,
    },
    /// A scheduled [`DynamicsEvent`] from the scenario's
    /// [`ethmeter_dynamics::DynamicsScript`] fires. Carries the script
    /// entry index; the event itself is looked up in the world's copy of
    /// the script. Like [`Event::NextSubmission`], dynamics events are
    /// *replicated*: every shard of a parallel run executes every one of
    /// them (topology and degradation scalars are part of the replicated
    /// world), and the merge subtracts the duplicates from event totals.
    Dynamics {
        /// Index into the scenario's dynamics script.
        entry: u32,
    },
    /// The next spam transaction of an active tx-flood window is due.
    /// Replicated on every shard (the spam stream is part of the global
    /// workload, like [`Event::NextSubmission`]); only the shard owning
    /// the drawn origin node injects.
    FloodTick,
}

/// Counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages delivered.
    pub messages: u64,
    /// Bytes moved (wire sizes).
    pub bytes: u64,
    /// Blocks produced by miners (including duplicates/malfunctions).
    pub blocks_produced: u64,
    /// Duplicate (one-miner fork) blocks produced.
    pub duplicates_produced: u64,
    /// Transactions submitted.
    pub txs_submitted: u64,
    /// Block imports completed across all nodes.
    pub imports: u64,
    /// Blocks withheld on a private branch at mint time (selfish pools).
    pub blocks_withheld: u64,
    /// Blocks published through fork-choice-time release events (matches,
    /// overrides, tie releases, abandoned-branch uncle bait, race wins).
    pub blocks_released: u64,
}

impl RunStats {
    /// Field-wise accumulation, used to aggregate sweeps of campaigns.
    pub fn merge(&mut self, other: &RunStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.blocks_produced += other.blocks_produced;
        self.duplicates_produced += other.duplicates_produced;
        self.txs_submitted += other.txs_submitted;
        self.imports += other.imports;
        self.blocks_withheld += other.blocks_withheld;
        self.blocks_released += other.blocks_released;
    }
}

#[derive(Debug, Clone)]
struct DupState {
    parent: BlockHash,
    height: BlockNumber,
    original: BlockHash,
    same_txs: bool,
    txs: Vec<TxId>,
}

struct ObserverState {
    skew: ClockSkew,
}

/// Per-pool mining state, addressed by raw [`PoolId`] index.
struct PoolState {
    /// The pool's gateway nodes (primary first).
    gateways: Vec<NodeId>,
    /// `(parent, height)` the pool's miners currently work on.
    target: (BlockHash, BlockNumber),
    /// Per-pool hash salt counter. Block hashes mix in the miner id, so
    /// per-pool counters keep hashes campaign-unique while letting each
    /// pool's salt sequence be independent of every other pool's mining
    /// activity (which is what lets shards mint blocks concurrently).
    salt: u64,
    /// Live duplication episode, if any (honest pools only).
    dup: Option<DupState>,
    /// The selfish-mining machine, for pools running
    /// [`PoolBehavior::Selfish`]. `None` keeps honest pools on the
    /// pre-behavior code path bit for bit.
    selfish: Option<SelfishState<BlockIdx>>,
}

/// Mutable runtime-dynamics state: degradation scalars, which nodes are
/// down (with their parked links), which links a partition severed, and
/// the live flood window. Replicated identically on every shard — all of
/// it is driven by replicated [`Event::Dynamics`]/[`Event::FloodTick`]
/// events and the dedicated `rng_dynamics` stream.
#[derive(Debug, Clone)]
struct DynamicsState {
    /// Multiplier on every sampled link latency (1.0 = nominal).
    latency_scale: f64,
    /// Divisor-style multiplier on bandwidth: transfer times are scaled
    /// by `1 / bandwidth_scale` (1.0 = nominal, 0.5 = half throughput).
    bandwidth_scale: f64,
    /// Nodes currently down, each with the peer links parked at teardown
    /// (re-dialed on [`DynamicsEvent::NodeUp`]). Insertion-ordered.
    down: Vec<(NodeId, Vec<NodeId>)>,
    /// Links severed by [`DynamicsEvent::Partition`]/`LinkDown`, awaiting
    /// a heal. Stored `(a, b)` in severance order.
    severed: Vec<(NodeId, NodeId)>,
    /// Spam rate of the active flood window, if any (txs per sim-second).
    flood_rate: Option<f64>,
    /// Sequence number for spam-sender account ids (top of the u32 range,
    /// far above any workload account).
    spam_seq: u32,
    /// `Dynamics` + `FloodTick` events processed (replicated on every
    /// shard; the parallel merge subtracts the duplicates, exactly like
    /// `submissions`).
    fired: u64,
}

impl DynamicsState {
    fn reset(&mut self) {
        self.latency_scale = 1.0;
        self.bandwidth_scale = 1.0;
        self.down.clear();
        self.severed.clear();
        self.flood_rate = None;
        self.spam_seq = 0;
        self.fired = 0;
    }
}

impl Default for DynamicsState {
    fn default() -> Self {
        let mut s = DynamicsState {
            latency_scale: 0.0,
            bandwidth_scale: 0.0,
            down: Vec::new(),
            severed: Vec::new(),
            flood_rate: None,
            spam_seq: 0,
            fired: 0,
        };
        s.reset();
        s
    }
}

/// The campaign world (see module docs).
pub struct SimWorld {
    // Configuration (copied out of the scenario).
    net: ethmeter_net::NetConfig,
    latency: ethmeter_geo::LatencyModel,
    interblock: SimDuration,
    gas_limit: u64,
    miner_lag: Exp,
    import_jitter: LogNormal,
    /// Intra-pool distribution delay of a sealed block to each gateway,
    /// built once here instead of per broadcast.
    intra_gateway_delay: Exp,
    duration: SimDuration,

    // Entities (all Vec-indexed by raw NodeId).
    nodes: Vec<Node>,
    node_meta: Vec<(Region, BandwidthClass)>,
    gateway_pool: Vec<Option<PoolId>>,
    observer_slot: Vec<Option<usize>>,
    observers: Vec<ObserverState>,
    logs: Vec<ObserverLog>,
    vantages: Vec<VantagePoint>,

    // Registries. Blocks and txs are interned at creation; every hot
    // lookup is a dense-slot array index. The registry is also the single
    // owner of every block: ground truth is derived from it at the
    // campaign boundary instead of being cloned block-by-block during the
    // run.
    blocks: BlockRegistry,
    txs: TxRegistry,
    genesis: BlockHash,
    /// Consensus engine shared by every node's chain view and the
    /// ground-truth tree (from [`Scenario::consensus`]).
    consensus: Arc<dyn Consensus>,

    // Mining (Vec-indexed by raw PoolId).
    pools: PoolDirectory,
    pool_states: Vec<PoolState>,

    // Workload. Accounts are multi-homed: exchanges and wallet backends
    // submit through several geographically distinct nodes, which is what
    // lets burst transactions race each other onto different gossip paths
    // and arrive out of nonce order (§III-C2).
    generator: ethmeter_workload::TxGenerator,
    account_homes: Vec<[NodeId; 3]>,

    // Randomness. The workload stream is world-global (and replayed
    // verbatim by every shard of a parallel run); all other draws come
    // from per-entity lanes — one stream per node, per pool, and per
    // observer clock — so executing only an ownership subset of events
    // never perturbs any other entity's stream. Sequential execution
    // consumes the lanes in exactly the same per-lane order.
    lanes_node: Vec<Xoshiro256>,
    lanes_pool: Vec<Xoshiro256>,
    lanes_clock: Vec<Xoshiro256>,
    rng_workload: Xoshiro256,
    /// Stream for dynamics draws (flood inter-arrival gaps and origin
    /// picks). World-global and replayed verbatim on every shard, like
    /// the workload stream; forked *after* the lanes so static worlds
    /// (empty script, no draws) keep their historical streams bit for bit.
    rng_dynamics: Xoshiro256,

    /// The scenario's dynamics script, copied at reset. Empty for static
    /// worlds, in which case none of the dynamics machinery runs and the
    /// hot path is byte-identical to the pre-dynamics code.
    dyn_script: Vec<(SimTime, DynamicsEvent)>,
    /// Runtime dynamics state (see [`DynamicsState`]).
    dynamics: DynamicsState,

    // Recycled per-event buffers (cleared before use; never observable).
    /// Outgoing-message buffer shared by every handler invocation.
    send_scratch: Vec<Send>,
    /// Mempool packing buffer.
    pack_buf: Vec<TxId>,
    /// Recent-ancestor transaction set for double-inclusion guarding.
    ancestor_scratch: FxHashSet<TxId>,

    /// Sharded-execution context. `None` (the default after every
    /// [`SimWorld::reset`]) is the sequential reference: the world owns
    /// every entity and schedules everything locally. `Some` makes the
    /// world one shard of a parallel run: events addressed to foreign
    /// entities divert to the outbox for the next window barrier.
    shard: Option<ShardCtx>,
    /// `NextSubmission` events processed (replicated on every shard;
    /// the parallel merge subtracts the duplicates from event totals).
    submissions: u64,
    /// Campaign ordinal on this world (increments per [`SimWorld::reset`]).
    /// Folded into spill-segment file names so a reused runner's past
    /// campaigns — whose extracted data may still reference its segment
    /// files — never collide with the next campaign's spill output.
    measure_epoch: u64,
    /// Run counters.
    pub stats: RunStats,
}

/// One shard's view of a partitioned campaign (see [`crate::par`]).
struct ShardCtx {
    /// The shared node → shard ownership table.
    map: Arc<ShardMap>,
    /// This shard's id.
    me: u32,
    /// Per-pool ownership: a pool belongs to the shard owning its
    /// primary gateway, which co-locates the only cross-entity mutable
    /// coupling (pool state ↔ primary-gateway chain view).
    owned_pools: Vec<bool>,
    /// Cross-shard events emitted this window, in emission order.
    outbox: Vec<RemoteEvent>,
    /// Monotone emission counter feeding [`RemoteEvent::seq`].
    emit_seq: u64,
    /// Registry slots below this watermark have already been replicated
    /// to the other shards (or arrived as replicas from them).
    block_watermark: usize,
    /// Registry slots of locally minted blocks, in creation order — the
    /// merge rebuilds the global creation order from these.
    local_created: Vec<usize>,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimWorld {{ nodes: {}, pools: {}, blocks: {}, txs: {} }}",
            self.nodes.len(),
            self.pools.len(),
            self.blocks.len(),
            self.txs.len()
        )
    }
}

impl SimWorld {
    /// Builds the world for a scenario (topology, node placement, gateway
    /// wiring, observers) without scheduling anything.
    pub fn new(scenario: &Scenario) -> Self {
        let genesis = BlockTree::shared_genesis_hash();
        let mut world = SimWorld {
            net: scenario.net.clone(),
            latency: scenario.latency.clone(),
            interblock: scenario.interblock,
            gas_limit: scenario.gas_limit,
            miner_lag: Exp::with_mean(1.0),
            import_jitter: LogNormal::with_median(1.0, 0.1),
            intra_gateway_delay: Exp::with_mean(0.015),
            duration: scenario.duration,
            nodes: Vec::new(),
            node_meta: Vec::new(),
            gateway_pool: Vec::new(),
            observer_slot: Vec::new(),
            observers: Vec::new(),
            logs: Vec::new(),
            vantages: Vec::new(),
            blocks: BlockRegistry::new(),
            txs: TxRegistry::new(),
            genesis,
            consensus: ConsensusKind::Heaviest.build(),
            pools: scenario.pools.clone(),
            pool_states: Vec::new(),
            generator: ethmeter_workload::TxGenerator::new(scenario.workload.clone()),
            account_homes: Vec::new(),
            lanes_node: Vec::new(),
            lanes_pool: Vec::new(),
            lanes_clock: Vec::new(),
            rng_workload: Xoshiro256::seed_from_u64(0),
            rng_dynamics: Xoshiro256::seed_from_u64(0),
            dyn_script: Vec::new(),
            dynamics: DynamicsState::default(),
            send_scratch: Vec::new(),
            pack_buf: Vec::new(),
            ancestor_scratch: FxHashSet::default(),
            shard: None,
            submissions: 0,
            measure_epoch: 0,
            stats: RunStats::default(),
        };
        world.reset(scenario);
        world
    }

    /// Rewinds the world to exactly what `SimWorld::new(scenario)` builds
    /// — same topology, same placement, same RNG streams, same observers —
    /// while reusing every allocation already held: the registries, the
    /// node slabs and their known-set probe tables, the observer-log maps,
    /// and the scratch buffers. `new` itself is implemented through this
    /// method, so the fresh and reused paths cannot diverge.
    ///
    /// A world whose campaign was extracted with [`SimWorld::take_campaign`]
    /// must be reset before its next run.
    pub fn reset(&mut self, scenario: &Scenario) {
        let epoch = self.measure_epoch;
        self.measure_epoch += 1;
        let mut root = Xoshiro256::seed_from_u64(scenario.seed);
        let mut rng_topo = root.fork("topology");
        let mut rng_place = root.fork("placement");
        self.rng_workload = root.fork("workload");
        let mut rng_clock = root.fork("clock");
        let mut lane_src = root.fork("lanes");
        // Forked last: static worlds never draw from it, so the streams
        // above (and thus every pre-dynamics golden) are untouched.
        self.rng_dynamics = root.fork("dynamics");

        self.net = scenario.net.clone();
        self.latency = scenario.latency.clone();
        self.interblock = scenario.interblock;
        self.gas_limit = scenario.gas_limit;
        self.miner_lag = Exp::with_mean(scenario.miner_lag_mean.as_secs_f64().max(1e-6));
        self.import_jitter = LogNormal::with_median(1.0, scenario.net.import_jitter_sigma);
        self.intra_gateway_delay = Exp::with_mean(0.015);
        self.duration = scenario.duration;
        self.pools = scenario.pools.clone();
        self.vantages = scenario.vantages.clone();

        let n_ordinary = scenario.ordinary_nodes;
        let total_gateways: usize = self.pools.iter().map(|p| p.gateway_count).sum();
        let n_obs = scenario.vantages.len();
        let n = n_ordinary + total_gateways + n_obs;

        // Regions and bandwidth per node.
        let region_weights: Vec<f64> = scenario.region_weights.iter().map(|&(_, w)| w).collect();
        let regions: Vec<Region> = scenario.region_weights.iter().map(|&(r, _)| r).collect();
        self.node_meta.clear();
        self.node_meta.reserve(n);
        for _ in 0..n_ordinary {
            let region = regions[rng_place.choose_weighted(&region_weights)];
            self.node_meta
                .push((region, BandwidthClass::sample_ordinary(&mut rng_place)));
        }
        let mut gateways: Vec<Vec<NodeId>> = vec![Vec::new(); self.pools.len()];
        self.gateway_pool.clear();
        self.gateway_pool.resize(n_ordinary, None);
        for pool in self.pools.iter() {
            for region in pool.plan_gateway_regions() {
                let id = NodeId(self.node_meta.len() as u32);
                self.node_meta.push((region, BandwidthClass::Backbone));
                self.gateway_pool.push(Some(pool.id));
                gateways[pool.id.index()].push(id);
            }
        }
        self.observer_slot.clear();
        self.observer_slot.resize(self.node_meta.len(), None);
        self.observers.clear();
        for (slot, v) in scenario.vantages.iter().enumerate() {
            self.node_meta.push((v.region, BandwidthClass::Backbone));
            self.gateway_pool.push(None);
            self.observer_slot.push(Some(slot));
            self.observers.push(ObserverState {
                skew: scenario.clock.skew(&mut rng_clock),
            });
            // Observer logs are reused across campaigns: clear in place
            // (releasing oversized buffers per the log's shrink policy).
            match self.logs.get_mut(slot) {
                Some(log) => log.clear(),
                None => self.logs.push(ObserverLog::new()),
            }
            // Budgeted campaigns spill to per-vantage columnar segments.
            // The epoch in the prefix keeps this campaign's files disjoint
            // from any still-referenced files of earlier campaigns on a
            // reused world.
            if let Some(dir) = &scenario.spill_dir {
                let budget =
                    (scenario.measure_budget_bytes / scenario.vantages.len().max(1)).max(1);
                self.logs[slot].set_spill(Some(SpillConfig {
                    dir: dir.clone(),
                    budget_bytes: budget,
                    prefix: format!("{}-e{epoch:04}", SpillConfig::sanitize(&v.name)),
                }));
            }
        }
        self.logs.truncate(n_obs);

        // Per-entity RNG lanes, derived positionally from one dedicated
        // stream: node lanes first, then pool lanes, then observer clock
        // lanes. Every shard of a parallel run replays this construction
        // identically, so lane `k` is the same stream everywhere.
        self.lanes_node.clear();
        self.lanes_node.extend(
            (0..self.node_meta.len()).map(|_| Xoshiro256::seed_from_u64(lane_src.next_u64())),
        );
        self.lanes_pool.clear();
        self.lanes_pool
            .extend((0..self.pools.len()).map(|_| Xoshiro256::seed_from_u64(lane_src.next_u64())));
        self.lanes_clock.clear();
        self.lanes_clock
            .extend((0..n_obs).map(|_| Xoshiro256::seed_from_u64(lane_src.next_u64())));

        // Topology: dial targets per role.
        let mut targets = Vec::with_capacity(n);
        let mut caps = Vec::with_capacity(n);
        for i in 0..self.node_meta.len() {
            if let Some(slot) = self.observer_slot[i] {
                // The paper's main observers ran "unlimited" peers, which
                // on mainnet meant holding a few percent of the ~15,000
                // nodes. We scale that adjacency *fraction*: observers
                // connect to about a fifth of the network (at least 32
                // peers), so first receptions still travel through public
                // intermediate hops rather than teleporting one hop from
                // every gateway. The redundancy observer keeps Geth's
                // default 25 peers.
                let v = &scenario.vantages[slot];
                let scaled_cap = (self.node_meta.len() / 3).max(32);
                let t = if v.default_peers {
                    v.peer_target
                } else {
                    v.peer_target.min(scaled_cap)
                };
                targets.push(t);
                caps.push(t + 16);
            } else if self.gateway_pool[i].is_some() {
                targets.push(scenario.gateway_degree);
                caps.push(scenario.gateway_degree * 2);
            } else {
                // Ordinary Geth: ~half the peer budget is outbound dials.
                targets.push(scenario.net.default_peer_target / 2 + 1);
                caps.push(scenario.net.max_peer_cap);
            }
        }
        // Pool gateways are hidden infrastructure: observers cannot peer
        // with them directly, so measurements see blocks only after at
        // least one public hop — as in the real network.
        let observer_slot = &self.observer_slot;
        let gateway_pool = &self.gateway_pool;
        let is_observer = |v: usize| observer_slot[v].is_some();
        let is_gateway = |v: usize| gateway_pool[v].is_some();
        let topo = Topology::random_with_constraint(
            &DegreePlan { targets, caps },
            &mut rng_topo,
            |a, b| !((is_observer(a) && is_gateway(b)) || (is_observer(b) && is_gateway(a))),
        );

        self.genesis = BlockTree::shared_genesis_hash();
        self.consensus = scenario.consensus.build();
        let consensus = Arc::clone(&self.consensus);
        for i in 0..self.node_meta.len() {
            let (region, bandwidth) = self.node_meta[i];
            match self.nodes.get_mut(i) {
                Some(node) => node.reset(
                    NodeId(i as u32),
                    region,
                    bandwidth,
                    self.genesis,
                    &scenario.net,
                    Arc::clone(&consensus),
                ),
                None => self.nodes.push(Node::new(
                    NodeId(i as u32),
                    region,
                    bandwidth,
                    self.genesis,
                    &scenario.net,
                    Arc::clone(&consensus),
                )),
            }
        }
        self.nodes.truncate(self.node_meta.len());
        for i in 0..self.node_meta.len() {
            for &j in topo.neighbors(NodeId(i as u32)) {
                if j.index() > i {
                    self.nodes[i]
                        .try_add_link(j, &scenario.net)
                        .expect("topology produces well-formed links");
                    self.nodes[j.index()]
                        .try_add_link(NodeId(i as u32), &scenario.net)
                        .expect("topology produces well-formed links");
                }
            }
        }
        for list in &gateways {
            for &g in list {
                self.nodes[g.index()].enable_mempool();
            }
        }

        // Accounts live on ordinary nodes, three submission points each.
        self.account_homes.clear();
        self.account_homes.reserve(scenario.workload.accounts);
        for _ in 0..scenario.workload.accounts {
            self.account_homes.push([
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
                NodeId(rng_place.index(n_ordinary.max(1)) as u32),
            ]);
        }

        self.pool_states.clear();
        let (genesis, pools) = (self.genesis, &self.pools);
        self.pool_states
            .extend(
                gateways
                    .into_iter()
                    .zip(pools.iter())
                    .map(|(gws, cfg)| PoolState {
                        gateways: gws,
                        target: (genesis, 1),
                        salt: 1,
                        dup: None,
                        selfish: match cfg.behavior {
                            PoolBehavior::Honest => None,
                            PoolBehavior::Selfish(scfg) => Some(SelfishState::new(scfg, genesis)),
                        },
                    }),
            );

        self.blocks.clear();
        self.txs.clear();
        self.generator = ethmeter_workload::TxGenerator::new(scenario.workload.clone());
        self.send_scratch.clear();
        self.pack_buf.clear();
        self.ancestor_scratch.clear();
        self.shard = None;
        self.submissions = 0;
        self.dyn_script.clear();
        self.dyn_script
            .extend_from_slice(scenario.dynamics.entries());
        self.dynamics.reset();
        self.stats = RunStats::default();
    }

    /// The events that bootstrap a run (one solve per pool, the workload
    /// pump). On a shard, only locally owned pools get their solve — but
    /// the workload pump runs everywhere (the transaction stream is
    /// replicated so every shard can resolve any `TxId`).
    pub fn initial_events(&mut self) -> Vec<(SimTime, Event)> {
        let mut evs = Vec::new();
        for pool in 0..self.pools.len() {
            let pid = PoolId(pool as u16);
            let share = self.pools.pool(pid).share;
            if share <= 0.0 || !self.owns_pool(pid) {
                continue;
            }
            let d = next_block_delay(share, self.interblock, &mut self.lanes_pool[pid.index()]);
            evs.push((SimTime::ZERO + d, Event::PoolSolve { pool: pid }));
        }
        evs.push((SimTime::ZERO, Event::NextSubmission));
        // The whole dynamics script is scheduled up front, on every shard
        // (replicated — topology mutations and degradation scalars apply
        // to the replicated world wholesale).
        for (i, &(at, _)) in self.dyn_script.iter().enumerate() {
            evs.push((at, Event::Dynamics { entry: i as u32 }));
        }
        evs
    }

    /// Materializes the ground-truth block tree from the registry by
    /// replaying every block in creation order — identical to the tree an
    /// incremental builder would have produced, because parents are always
    /// registered before children.
    pub(crate) fn build_truth_tree(
        engine: Arc<dyn Consensus>,
        blocks: impl IntoIterator<Item = Block>,
    ) -> BlockTree {
        let mut tree = BlockTree::with_consensus(engine);
        for block in blocks {
            // Duplicate hashes cannot occur (the registry deduplicates at
            // interning time); orphans cannot occur (creation order).
            tree.insert(block)
                .expect("truth replay cannot orphan or duplicate");
        }
        tree
    }

    /// Finishes the campaign without consuming the world: observer logs
    /// and the transaction table are cloned out (the world keeps its
    /// allocations for the next [`SimWorld::reset`]), while ground-truth
    /// blocks are *moved* out of the registry — the world must be reset
    /// before it runs again.
    pub fn take_campaign(&mut self, duration: SimDuration) -> ethmeter_measure::CampaignData {
        let tree = Self::build_truth_tree(Arc::clone(&self.consensus), self.blocks.take_blocks());
        ethmeter_measure::CampaignData {
            observers: self
                .vantages
                .iter()
                .cloned()
                .zip(self.logs.iter().cloned())
                .collect(),
            truth: ethmeter_measure::GroundTruth {
                tree,
                txs: self.txs.to_map(),
                pool_names: self.pools.iter().map(|p| p.name.clone()).collect(),
                pool_shares: self.pools.iter().map(|p| p.share).collect(),
                interblock: self.interblock,
                duration,
            },
        }
    }

    /// Finishes the campaign: hands out observer logs and ground truth.
    /// Unlike [`SimWorld::take_campaign`], this consumes the world and
    /// *moves* the logs and the transaction table into the dataset — the
    /// one-shot path pays no clone of the campaign's largest structures.
    pub fn into_campaign(mut self, duration: SimDuration) -> ethmeter_measure::CampaignData {
        let tree = Self::build_truth_tree(Arc::clone(&self.consensus), self.blocks.take_blocks());
        ethmeter_measure::CampaignData {
            observers: self.vantages.into_iter().zip(self.logs).collect(),
            truth: ethmeter_measure::GroundTruth {
                tree,
                txs: self.txs.into_map(),
                pool_names: self.pools.iter().map(|p| p.name.clone()).collect(),
                pool_shares: self.pools.iter().map(|p| p.share).collect(),
                interblock: self.interblock,
                duration,
            },
        }
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ground-truth tree, materialized from the registry (for in-flight
    /// or post-run inspection; the campaign boundary builds the same tree
    /// without cloning).
    pub fn truth(&self) -> BlockTree {
        Self::build_truth_tree(
            Arc::clone(&self.consensus),
            self.blocks.blocks().iter().cloned(),
        )
    }

    /// Gateway placement per pool: `(pool name, regions of its gateways)`.
    /// Useful for diagnosing geographic calibration.
    pub fn gateway_placement(&self) -> Vec<(String, Vec<Region>)> {
        self.pools
            .iter()
            .map(|p| {
                let regions = self.pool_states[p.id.index()]
                    .gateways
                    .iter()
                    .map(|g| self.node_meta[g.index()].0)
                    .collect();
                (p.name.clone(), regions)
            })
            .collect()
    }

    fn primary_gateway(&self, pool: PoolId) -> NodeId {
        self.pool_states[pool.index()].gateways[0]
    }

    fn import_duration(&mut self, node: NodeId, idx: BlockIdx) -> SimDuration {
        let tx_count = self.blocks.by_idx(idx).txs().len() as u64;
        let base = self.net.import_base + self.net.import_per_tx * tx_count;
        let hw = self.node_meta[node.index()].1.import_factor();
        base.mul_f64(
            hw * self
                .import_jitter
                .sample(&mut self.lanes_node[node.index()]),
        )
    }

    /// Applies link timing and schedules delivery of a node's sends,
    /// draining the buffer so it can be recycled.
    fn dispatch_sends(
        &mut self,
        from: NodeId,
        sends: &mut Vec<Send>,
        sched: &mut Scheduler<Event>,
    ) {
        let (from_region, from_bw) = self.node_meta[from.index()];
        let dynamics_on = !self.dyn_script.is_empty();
        for send in sends.drain(..) {
            // Runtime topology mutations can sever a link between a
            // request and its reply: a handler may address a node that is
            // no longer a peer. Such sends die on the torn-down link.
            // Dropping happens *before* the lane draw — the link no
            // longer exists, so it costs no latency sample — and the node
            // peer tables are replicated, so every shard agrees. Static
            // worlds skip the check entirely (handlers only ever address
            // live peers there).
            if dynamics_on && !self.nodes[from.index()].is_peer(send.to) {
                continue;
            }
            let size = {
                let blocks = &self.blocks;
                let txs = &self.txs;
                send.msg.size(
                    |h| blocks.get(h).map(|b| b.size()).unwrap_or(ByteSize::ZERO),
                    |t| txs.get(t).map(|x| x.size).unwrap_or(ByteSize::ZERO),
                )
            };
            let (to_region, to_bw) = self.node_meta[send.to.index()];
            // The link draw always comes from the *sender's* lane — the
            // sender is local by construction, so the draw happens on
            // exactly one shard, in the sender's processing order,
            // whether or not the destination is foreign.
            let mut link =
                self.latency
                    .sample(&mut self.lanes_node[from.index()], from_region, to_region);
            let mut xfer = from_bw.transfer_time(size) + to_bw.transfer_time(size);
            if dynamics_on {
                // Degradation scalars apply to the sampled values only
                // when a script is attached; the explicit `!= 1.0` guards
                // are exact (the scalars are only ever set, never
                // computed). A sub-1.0 latency scale stays safe for the
                // sharded engine because its lookahead bound tightens by
                // the script's *minimum* scale (see `crate::par`).
                if self.dynamics.latency_scale != 1.0 {
                    link = link.mul_f64(self.dynamics.latency_scale);
                }
                if self.dynamics.bandwidth_scale != 1.0 {
                    xfer = xfer.mul_f64(1.0 / self.dynamics.bandwidth_scale);
                }
            }
            let delay = self.net.proc_overhead + link + xfer;
            self.stats.bytes += size.as_bytes();
            if let Some(ctx) = self.shard.as_mut() {
                if !ctx.map.owns(ctx.me as usize, send.to) {
                    ctx.outbox.push(RemoteEvent {
                        at: sched.now() + delay,
                        origin: from,
                        seq: ctx.emit_seq,
                        kind: RemoteEventKind::Deliver {
                            from,
                            to: send.to,
                            msg: send.msg,
                        },
                    });
                    ctx.emit_seq += 1;
                    continue;
                }
            }
            sched.after(
                delay,
                Event::Deliver {
                    from,
                    to: send.to,
                    msg: send.msg,
                },
            );
        }
    }

    /// Packs a block template for `pool` on top of `parent`, filtering
    /// out transactions already included in the last few ancestors (the
    /// guard against double inclusion while imports are in flight). Runs
    /// entirely on world-owned scratch; only the returned template (which
    /// the block will own) is allocated.
    fn pack_for(&mut self, pool: PoolId, parent: BlockHash) -> Vec<TxId> {
        let gw = self.primary_gateway(pool);
        let mut packed = std::mem::take(&mut self.pack_buf);
        match self.nodes[gw.index()].mempool() {
            Some(m) => m.pack_into(self.gas_limit, &mut packed),
            None => packed.clear(),
        }
        self.ancestor_scratch.clear();
        let mut cur = parent;
        for _ in 0..8 {
            let Some(b) = self.blocks.get(cur) else {
                break;
            };
            self.ancestor_scratch.extend(b.txs().iter().copied());
            cur = b.parent();
        }
        let included = &self.ancestor_scratch;
        let out = packed
            .iter()
            .copied()
            .filter(|t| !included.contains(t))
            .collect();
        self.pack_buf = packed;
        out
    }

    /// Registers a block, returning its dense slot. The registry is the
    /// single owner; ground truth is derived from it at the campaign
    /// boundary. On a shard, the slot is also recorded as locally minted
    /// so the window barrier can replicate it and the merge can rebuild
    /// global creation order.
    /// The uncle-reference policy in force for a minting pool: the
    /// engine's policy when it imposes one, otherwise the pool's
    /// configured strategy. The shipped engines impose
    /// [`UnclePolicy::Standard`] — defer to the pool — preserving the
    /// historical per-pool ablation behavior bit for bit.
    fn effective_uncle_policy(&self, pool_policy: UnclePolicy) -> UnclePolicy {
        match self.consensus.uncle_policy() {
            UnclePolicy::Standard => pool_policy,
            stricter => stricter,
        }
    }

    fn register_block(&mut self, block: Block) -> BlockIdx {
        self.stats.blocks_produced += 1;
        // Mint-time consensus validation. The parent is absent only for
        // children of the (unregistered) genesis, which have nothing to
        // validate against.
        if let Some(parent) = self.blocks.get(block.parent()) {
            self.consensus
                .validate(&block, parent)
                .expect("minted block must satisfy the consensus engine");
        }
        let idx = self.blocks.insert(block);
        if let Some(ctx) = self.shard.as_mut() {
            ctx.local_created.push(idx.index());
        }
        idx
    }

    /// Injects a block at every gateway of its pool. Pools run dedicated
    /// internal distribution (stratum relays), so each gateway — primary
    /// included — receives the sealed block after a small independent
    /// delay rather than via public gossip.
    fn broadcast_from_gateways(
        &mut self,
        pool: PoolId,
        idx: BlockIdx,
        sched: &mut Scheduler<Event>,
    ) {
        let n_gws = self.pool_states[pool.index()].gateways.len();
        let hash = self.blocks.by_idx(idx).hash();
        for g in 0..n_gws {
            let gw = self.pool_states[pool.index()].gateways[g];
            // Pool-lane draw: only the pool's owner shard runs this, so
            // the lane order matches sequential execution exactly.
            let delay = SimDuration::from_millis(5)
                + self
                    .intra_gateway_delay
                    .sample_duration(&mut self.lanes_pool[pool.index()]);
            if let Some(ctx) = self.shard.as_mut() {
                if !ctx.map.owns(ctx.me as usize, gw) {
                    // Foreign gateway: the injection crosses by hash and
                    // re-resolves after the receiver ingests replicas.
                    ctx.outbox.push(RemoteEvent {
                        at: sched.now() + delay,
                        origin: gw,
                        seq: ctx.emit_seq,
                        kind: RemoteEventKind::Inject {
                            node: gw,
                            block: hash,
                        },
                    });
                    ctx.emit_seq += 1;
                    continue;
                }
            }
            sched.after(delay, Event::InjectBlock { node: gw, idx });
        }
    }

    fn inject_block_at(&mut self, node: NodeId, idx: BlockIdx, sched: &mut Scheduler<Event>) {
        let mut sends = std::mem::take(&mut self.send_scratch);
        let action = {
            let block = self.blocks.by_idx(idx);
            self.nodes[node.index()].on_block_arrival(
                None,
                block,
                idx,
                &self.net,
                &mut self.lanes_node[node.index()],
                &mut sends,
            )
        };
        if let ImportAction::Schedule(i) = action {
            let d = self.import_duration(node, i);
            sched.after(d, Event::ImportDone { node, idx: i });
        }
        self.dispatch_sends(node, &mut sends, sched);
        self.send_scratch = sends;
    }

    /// Builds and publishes one block for `pool` at its current target.
    fn solve_normal(&mut self, pool: PoolId, now: SimTime, sched: &mut Scheduler<Event>) {
        let cfg = self.pools.pool(pool).clone();
        let plan = BlockPlan::decide(&cfg, &mut self.lanes_pool[pool.index()]);
        let (parent, number) = self.pool_states[pool.index()].target;
        let gw = self.primary_gateway(pool);
        let policy = self.effective_uncle_policy(cfg.strategy.uncle_policy);
        let uncles = self.nodes[gw.index()].chain().select_uncles(parent, policy);
        let txs = if plan.empty {
            Vec::new()
        } else {
            self.pack_for(pool, parent)
        };
        let salt = self.next_salt(pool);
        let block = BlockBuilder::new(parent, number, pool)
            .mined_at(now)
            .txs(txs.clone())
            .uncles(uncles)
            .salt(salt)
            .build();
        let hash = block.hash();
        let idx = self.register_block(block);
        self.broadcast_from_gateways(pool, idx, sched);

        // Malfunction burst: extra same-height siblings released at once.
        for k in 0..plan.malfunction_extra {
            let sibling_txs =
                if self.lanes_pool[pool.index()].chance(cfg.strategy.duplicate_same_txset_prob) {
                    txs.clone()
                } else {
                    txs.iter().copied().skip(k + 1).collect()
                };
            let salt = self.next_salt(pool);
            let sib = BlockBuilder::new(parent, number, pool)
                .mined_at(now)
                .txs(sibling_txs)
                .salt(salt)
                .build();
            let sib_idx = self.register_block(sib);
            self.stats.duplicates_produced += 1;
            self.broadcast_from_gateways(pool, sib_idx, sched);
        }

        if plan.attempt_duplicate {
            // Keep mining at this height: the next solve yields a
            // duplicate (one-miner fork) instead of extending the chain.
            self.pool_states[pool.index()].dup = Some(DupState {
                parent,
                height: number,
                original: hash,
                same_txs: plan.duplicate_same_txs,
                txs,
            });
        } else {
            self.pool_states[pool.index()].target = (hash, number + 1);
        }
    }

    /// Ends a duplication episode: resume mining at the freshest target.
    fn resume_after_duplication(&mut self, pool: PoolId, ds: &DupState) {
        let gw = self.primary_gateway(pool);
        let head = self.nodes[gw.index()].chain().head();
        let head_number = self.nodes[gw.index()].chain().head_number();
        self.pool_states[pool.index()].target = if head_number >= ds.height {
            (head, head_number + 1)
        } else {
            (ds.original, ds.height + 1)
        };
    }

    /// Mines one block onto a selfish pool's private branch — or, mid
    /// tie-race, publishes it on the spot. The behavior machine owns the
    /// mining target; publication happens only through
    /// [`Event::PoolRelease`].
    fn solve_selfish(&mut self, pool: PoolId, now: SimTime, sched: &mut Scheduler<Event>) {
        let mut state = self.pool_states[pool.index()]
            .selfish
            .take()
            .expect("solve_selfish is only dispatched to selfish pools");
        let (parent, number) = state.target();
        let gw = self.primary_gateway(pool);
        // Only the first private block sits on a parent the gateway's
        // public view knows; it references orphaned honest blocks as
        // uncles (the Niu–Feng revenue channel). Deeper private parents
        // are invisible to the view, so deeper blocks reference none.
        let uncles = if self.nodes[gw.index()].chain().contains(parent) {
            let policy = self.effective_uncle_policy(self.pools.pool(pool).strategy.uncle_policy);
            self.nodes[gw.index()].chain().select_uncles(parent, policy)
        } else {
            Vec::new()
        };
        let txs = self.pack_for(pool, parent);
        let salt = self.next_salt(pool);
        let block = BlockBuilder::new(parent, number, pool)
            .mined_at(now)
            .txs(txs)
            .uncles(uncles)
            .salt(salt)
            .build();
        let hash = block.hash();
        let idx = self.register_block(block);
        let (outcome, releases) = state.on_solve(hash, idx);
        if outcome == SelfishOutcome::Withheld {
            self.stats.blocks_withheld += 1;
        }
        for r in releases {
            sched.now_event(Event::PoolRelease { pool, idx: r });
        }
        self.pool_states[pool.index()].selfish = Some(state);
    }

    /// Fork-choice-time hook: the selfish pool's primary gateway adopted
    /// a new head, and the behavior machine decides what to release.
    fn selfish_head_update(&mut self, pool: PoolId, sched: &mut Scheduler<Event>) {
        let gw = self.primary_gateway(pool);
        let head = self.nodes[gw.index()].chain().head();
        let head_number = self.nodes[gw.index()].chain().head_number();
        let mut state = self.pool_states[pool.index()]
            .selfish
            .take()
            .expect("head updates are only routed to selfish pools");
        // Did the network adopt our branch? Withheld tips can never be
        // ancestors of a public head, so this is false until we release.
        let extends_tip = state.tip().is_some_and(|(tip, tip_number)| {
            head_number >= tip_number
                && self.nodes[gw.index()].chain().ancestor_at(head, tip_number) == Some(tip)
        });
        let (_, releases) = state.on_public_head(head, head_number, extends_tip);
        for r in releases {
            sched.now_event(Event::PoolRelease { pool, idx: r });
        }
        self.pool_states[pool.index()].selfish = Some(state);
    }

    fn on_pool_release(&mut self, pool: PoolId, idx: BlockIdx, sched: &mut Scheduler<Event>) {
        self.stats.blocks_released += 1;
        self.broadcast_from_gateways(pool, idx, sched);
    }

    /// The next hash salt of `pool`'s counter.
    fn next_salt(&mut self, pool: PoolId) -> u64 {
        let salt = self.pool_states[pool.index()].salt;
        self.pool_states[pool.index()].salt += 1;
        salt
    }

    fn solve(&mut self, pool: PoolId, now: SimTime, sched: &mut Scheduler<Event>) {
        // Renewal process: the pool mines continuously.
        let share = self.pools.pool(pool).share;
        let d = next_block_delay(share, self.interblock, &mut self.lanes_pool[pool.index()]);
        sched.after(d, Event::PoolSolve { pool });

        if self.pool_states[pool.index()].selfish.is_some() {
            self.solve_selfish(pool, now, sched);
            return;
        }
        if let Some(ds) = self.pool_states[pool.index()].dup.take() {
            let gw = self.primary_gateway(pool);
            let head_number = self.nodes[gw.index()].chain().head_number();
            // Duplicate is only worth publishing while it can still become
            // an uncle (within 6 generations).
            if head_number < ds.height + 6 {
                let cfg = self.pools.pool(pool).clone();
                let txs = if ds.same_txs {
                    ds.txs.clone()
                } else {
                    self.pack_for(pool, ds.parent)
                };
                let salt = self.next_salt(pool);
                let dup = BlockBuilder::new(ds.parent, ds.height, pool)
                    .mined_at(now)
                    .txs(txs)
                    .salt(salt)
                    .build();
                let dup_idx = self.register_block(dup);
                self.stats.duplicates_produced += 1;
                self.broadcast_from_gateways(pool, dup_idx, sched);
                if BlockPlan::continue_duplicating(&cfg, &mut self.lanes_pool[pool.index()]) {
                    self.pool_states[pool.index()].dup = Some(ds);
                } else {
                    self.resume_after_duplication(pool, &ds);
                }
                return;
            }
            // Window closed: fall through to a normal solve.
            self.resume_after_duplication(pool, &ds);
        }
        self.solve_normal(pool, now, sched);
    }

    fn record_observation(&mut self, slot: usize, from: NodeId, msg: &Message, now: SimTime) {
        let local = self.observers[slot]
            .skew
            .read(now, &mut self.lanes_clock[slot]);
        match msg {
            Message::Announce(hashes) => {
                for &h in hashes.iter() {
                    self.logs[slot].record_block_msg(h, BlockMsgKind::Announce, from, local, now);
                }
            }
            Message::NewBlock(h) | Message::BlockBody(h) => {
                self.logs[slot].record_block_msg(*h, BlockMsgKind::FullBlock, from, local, now);
            }
            Message::Transactions(ids) => {
                for &id in ids.iter() {
                    self.logs[slot].record_tx(id, from, local, now);
                }
            }
            Message::Tx(id) => {
                self.logs[slot].record_tx(*id, from, local, now);
            }
            Message::GetBlock(_) => {}
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Message,
        sched: &mut Scheduler<Event>,
    ) {
        self.stats.messages += 1;
        if let Some(slot) = self.observer_slot[to.index()] {
            self.record_observation(slot, from, &msg, now);
        }
        let mut sends = std::mem::take(&mut self.send_scratch);
        match msg {
            Message::Announce(hashes) => {
                let resolve = |blocks: &BlockRegistry, h: BlockHash| {
                    let idx = blocks
                        .idx_of(h)
                        .expect("announced hashes are registered at creation");
                    (h, idx)
                };
                // Announcements carry one hash in practice; resolve on the
                // stack and only fall back to a heap batch for real lists.
                if let [h] = hashes[..] {
                    let entry = [resolve(&self.blocks, h)];
                    self.nodes[to.index()].on_announce(from, &entry, &mut sends);
                } else {
                    let entries: Vec<(BlockHash, BlockIdx)> =
                        hashes.iter().map(|&h| resolve(&self.blocks, h)).collect();
                    self.nodes[to.index()].on_announce(from, &entries, &mut sends);
                }
                for s in &sends {
                    if let Message::GetBlock(h) = s.msg {
                        let idx = self.blocks.idx_of(h).expect("fetches target known blocks");
                        sched.after(
                            self.net.fetch_timeout,
                            Event::FetchTimeout { node: to, idx },
                        );
                    }
                }
                self.dispatch_sends(to, &mut sends, sched);
            }
            Message::NewBlock(h) | Message::BlockBody(h) => {
                if let Some(idx) = self.blocks.idx_of(h) {
                    let action = {
                        let block = self.blocks.by_idx(idx);
                        self.nodes[to.index()].on_block_arrival(
                            Some(from),
                            block,
                            idx,
                            &self.net,
                            &mut self.lanes_node[to.index()],
                            &mut sends,
                        )
                    };
                    if let ImportAction::Schedule(i) = action {
                        let d = self.import_duration(to, i);
                        sched.after(d, Event::ImportDone { node: to, idx: i });
                    }
                    self.dispatch_sends(to, &mut sends, sched);
                }
            }
            Message::GetBlock(h) => {
                if let Some(idx) = self.blocks.idx_of(h) {
                    self.nodes[to.index()].on_get_block(from, h, idx, &mut sends);
                    self.dispatch_sends(to, &mut sends, sched);
                }
            }
            Message::Tx(id) => {
                // The dominant gossip message: resolve the one transaction
                // on the stack.
                {
                    let txs = &self.txs;
                    let node = &mut self.nodes[to.index()];
                    if let Some(ix) = txs.idx_of(id) {
                        node.on_transactions(
                            Some(from),
                            &[(ix, txs.by_idx(ix))],
                            &self.net,
                            &mut self.lanes_node[to.index()],
                            &mut sends,
                        );
                    }
                }
                self.dispatch_sends(to, &mut sends, sched);
            }
            Message::Transactions(ids) => {
                {
                    let txs = &self.txs;
                    let resolved: Vec<(TxIdx, &Transaction)> = ids
                        .iter()
                        .filter_map(|&id| txs.idx_of(id).map(|ix| (ix, txs.by_idx(ix))))
                        .collect();
                    self.nodes[to.index()].on_transactions(
                        Some(from),
                        &resolved,
                        &self.net,
                        &mut self.lanes_node[to.index()],
                        &mut sends,
                    );
                }
                self.dispatch_sends(to, &mut sends, sched);
            }
        }
        debug_assert!(sends.is_empty(), "dispatch_sends drains the buffer");
        self.send_scratch = sends;
    }

    fn on_import_done(&mut self, node: NodeId, idx: BlockIdx, sched: &mut Scheduler<Event>) {
        self.stats.imports += 1;
        let mut sends = std::mem::take(&mut self.send_scratch);
        let new_head = {
            let block = self.blocks.by_idx(idx);
            let txs = &self.txs;
            let included: Vec<&Transaction> =
                block.txs().iter().filter_map(|&t| txs.get(t)).collect();
            self.nodes[node.index()]
                .on_import_complete(block, idx, &included, &self.net, &mut sends)
        };
        if new_head {
            if let Some(pool) = self.gateway_pool[node.index()] {
                if self.primary_gateway(pool) == node {
                    if self.pool_states[pool.index()].selfish.is_some() {
                        // Adversarial pools react at fork-choice time:
                        // the release decision happens now, not after the
                        // honest retarget lag.
                        self.selfish_head_update(pool, sched);
                    } else {
                        let lag = self
                            .miner_lag
                            .sample_duration(&mut self.lanes_pool[pool.index()]);
                        sched.after(lag, Event::PoolRetarget { pool });
                    }
                }
            }
        }
        self.dispatch_sends(node, &mut sends, sched);
        self.send_scratch = sends;
    }

    fn on_retarget(&mut self, pool: PoolId) {
        // Only meaningful outside a duplication episode; duplication keeps
        // its own target and resumes from the head afterwards. Selfish
        // pools never schedule retargets (their machine owns the target).
        if self.pool_states[pool.index()].dup.is_some()
            || self.pool_states[pool.index()].selfish.is_some()
        {
            return;
        }
        let gw = self.primary_gateway(pool);
        let head = self.nodes[gw.index()].chain().head();
        let head_number = self.nodes[gw.index()].chain().head_number();
        if head_number + 1 > self.pool_states[pool.index()].target.1 {
            self.pool_states[pool.index()].target = (head, head_number + 1);
        }
    }

    fn on_next_submission(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        self.submissions += 1;
        let ev = self.generator.next_event(&mut self.rng_workload);
        // Stop planning past the horizon; the queue drains naturally.
        if now + ev.delay > SimTime::ZERO + self.duration {
            return;
        }
        sched.after(ev.delay, Event::NextSubmission);
        for planned in ev.txs {
            let id = TxId(self.txs.len() as u64 + 1);
            let homes = &self.account_homes[planned.sender.index() % self.account_homes.len()];
            let origin = homes[self.rng_workload.index(homes.len())];
            let submit_at = now + ev.delay + planned.offset;
            // Every shard interns every transaction (so any shard can
            // resolve any `TxId`), but only the origin's owner counts it
            // and performs the injection.
            let idx = self.txs.insert(Transaction {
                id,
                sender: planned.sender,
                nonce: planned.nonce,
                gas_price: planned.gas_price,
                gas: planned.gas,
                size: planned.size,
                submitted_at: submit_at,
                origin,
            });
            if self.owns_node(origin) {
                self.stats.txs_submitted += 1;
                sched.at(submit_at, Event::InjectTx { idx });
            }
        }
    }

    fn on_inject_tx(&mut self, idx: TxIdx, sched: &mut Scheduler<Event>) {
        let origin = self.txs.by_idx(idx).origin;
        let mut sends = std::mem::take(&mut self.send_scratch);
        {
            let tx = self.txs.by_idx(idx);
            self.nodes[origin.index()].on_transactions(
                None,
                &[(idx, tx)],
                &self.net,
                &mut self.lanes_node[origin.index()],
                &mut sends,
            );
        }
        self.dispatch_sends(origin, &mut sends, sched);
        self.send_scratch = sends;
    }

    // ---- Runtime dynamics (scripted churn, partitions, attacks) ----

    /// Executes one scheduled script entry. Replicated: every shard runs
    /// every entry (topology and degradation scalars are part of the
    /// replicated world), so no draw or mutation here may depend on
    /// ownership — only flood *injection* (inside [`Self::on_flood_tick`])
    /// is ownership-gated.
    fn on_dynamics(&mut self, entry: u32, sched: &mut Scheduler<Event>) {
        self.dynamics.fired += 1;
        let (_, ev) = self.dyn_script[entry as usize];
        match ev {
            DynamicsEvent::NodeDown(n) => self.node_down(n),
            DynamicsEvent::NodeUp(n) => self.node_up(n),
            DynamicsEvent::LinkDown(a, b) => {
                // Only a live link can fail; severing a parked or absent
                // link is a no-op (the script may race node churn).
                if self.nodes[a.index()].is_peer(b) {
                    self.sever(a, b);
                    self.dynamics.severed.push((a, b));
                }
            }
            DynamicsEvent::LinkUp(a, b) => {
                self.unsever(a, b);
                self.reconnect_or_defer(a, b);
            }
            DynamicsEvent::Partition { a, b } => self.partition(a, b),
            DynamicsEvent::Heal { a, b } => self.heal_regions(a, b),
            DynamicsEvent::LatencyScale(f) => self.dynamics.latency_scale = f,
            DynamicsEvent::BandwidthScale(f) => self.dynamics.bandwidth_scale = f,
            DynamicsEvent::EclipsePool(p) => {
                let gws = self.pool_states[p.index()].gateways.clone();
                for g in gws {
                    self.node_down(g);
                }
            }
            DynamicsEvent::ReleasePool(p) => {
                let gws = self.pool_states[p.index()].gateways.clone();
                for g in gws {
                    self.node_up(g);
                }
            }
            DynamicsEvent::FloodStart { rate_per_sec } => {
                // A start during an active window just retunes the rate;
                // the existing tick chain carries on (exactly one chain
                // is ever live).
                let chain_live = self.dynamics.flood_rate.is_some();
                self.dynamics.flood_rate = Some(rate_per_sec);
                if !chain_live {
                    self.schedule_flood_tick(rate_per_sec, sched);
                }
            }
            DynamicsEvent::FloodStop => self.dynamics.flood_rate = None,
        }
    }

    /// Injects one spam transaction of the active flood window and
    /// schedules the next tick. Replicated: every shard draws the same
    /// origin and gap and interns the same transaction; only the origin's
    /// owner injects (mirror of [`Self::on_next_submission`]).
    fn on_flood_tick(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        self.dynamics.fired += 1;
        let Some(rate) = self.dynamics.flood_rate else {
            // The window closed while this tick was in flight; the chain
            // dies here (a later FloodStart spawns a fresh one).
            return;
        };
        let origin = NodeId(self.rng_dynamics.index(self.nodes.len()) as u32);
        // Spam senders get one-shot account ids from the top of the u32
        // range, far above any workload account, so every spam tx is
        // nonce-0 of its own account and immediately includable.
        let sender = AccountId(u32::MAX - self.dynamics.spam_seq);
        self.dynamics.spam_seq = self.dynamics.spam_seq.wrapping_add(1);
        let id = TxId(self.txs.len() as u64 + 1);
        let idx = self.txs.insert(Transaction {
            id,
            sender,
            nonce: 0,
            gas_price: 1,
            gas: ethmeter_chain::tx::SIMPLE_TX_GAS,
            size: ByteSize::from_bytes(180),
            submitted_at: now,
            origin,
        });
        if self.owns_node(origin) {
            self.stats.txs_submitted += 1;
            self.on_inject_tx(idx, sched);
        }
        self.schedule_flood_tick(rate, sched);
    }

    /// Draws the next flood inter-arrival gap and schedules the tick,
    /// unless it would land past the campaign horizon. The draw happens
    /// unconditionally (every shard consumes the same stream).
    fn schedule_flood_tick(&mut self, rate: f64, sched: &mut Scheduler<Event>) {
        let gap = Exp::with_mean(1.0 / rate).sample_duration(&mut self.rng_dynamics);
        if sched.now() + gap <= SimTime::ZERO + self.duration {
            sched.after(gap, Event::FloodTick);
        }
    }

    /// Whether `n` is currently scripted down.
    fn is_down(&self, n: NodeId) -> bool {
        self.dynamics.down.iter().any(|&(d, _)| d == n)
    }

    /// Tears down the `a`↔`b` link on both endpoints.
    fn sever(&mut self, a: NodeId, b: NodeId) {
        let da = self.nodes[a.index()].disconnect(b);
        let db = self.nodes[b.index()].disconnect(a);
        debug_assert_eq!(da, db, "asymmetric link {a}<->{b}");
    }

    /// Re-establishes the `a`↔`b` link on both endpoints. Idempotent: a
    /// heal of an already-live link is a no-op (`Duplicate` is the
    /// expected answer when scripts overlap), and a malformed runtime
    /// join surfaces as a structured [`ethmeter_net::LinkError`] instead
    /// of a panic inside a shard worker.
    fn redial(&mut self, a: NodeId, b: NodeId) {
        let _ = self.nodes[a.index()].try_add_link(b, &self.net);
        let _ = self.nodes[b.index()].try_add_link(a, &self.net);
    }

    /// Drops the `(a, b)` pair (either orientation) from the severed
    /// list, if present.
    fn unsever(&mut self, a: NodeId, b: NodeId) {
        if let Some(pos) = self
            .dynamics
            .severed
            .iter()
            .position(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        {
            self.dynamics.severed.remove(pos);
        }
    }

    /// Heals the `a`↔`b` link now, or — when an endpoint is itself down —
    /// parks the link on that endpoint's churn record so it comes back
    /// with the node's rejoin.
    fn reconnect_or_defer(&mut self, a: NodeId, b: NodeId) {
        let park_on = if self.is_down(a) {
            Some((a, b))
        } else if self.is_down(b) {
            Some((b, a))
        } else {
            None
        };
        match park_on {
            Some((down, other)) => {
                let rec = self
                    .dynamics
                    .down
                    .iter_mut()
                    .find(|(d, _)| *d == down)
                    .expect("is_down implies a record");
                if !rec.1.contains(&other) {
                    rec.1.push(other);
                }
            }
            None => self.redial(a, b),
        }
    }

    /// Takes `n` offline: every live link is torn down and parked on the
    /// node's churn record. Idempotent while already down.
    fn node_down(&mut self, n: NodeId) {
        if self.is_down(n) {
            return;
        }
        let peers: Vec<NodeId> = self.nodes[n.index()].peers().to_vec();
        for &p in &peers {
            self.sever(n, p);
        }
        self.dynamics.down.push((n, peers));
    }

    /// Brings `n` back: every parked link is re-dialed — or re-parked on
    /// the *other* endpoint when that endpoint is itself still down. A
    /// rejoin deliberately restores recorded links even across an active
    /// partition (rejoining nodes re-dial their old peer set; the
    /// deterministic, documented semantics).
    fn node_up(&mut self, n: NodeId) {
        let Some(pos) = self.dynamics.down.iter().position(|&(d, _)| d == n) else {
            return;
        };
        let (_, links) = self.dynamics.down.remove(pos);
        for p in links {
            self.reconnect_or_defer(n, p);
        }
    }

    /// Severs every live link between a node in region set `a` and a node
    /// in region set `b`, recording each for a later heal. Sweeps nodes
    /// in id order and handles each unordered pair once.
    fn partition(&mut self, a: RegionMask, b: RegionMask) {
        for i in 0..self.nodes.len() {
            let ri = self.node_meta[i].0;
            let (in_a, in_b) = (a.contains(ri), b.contains(ri));
            if !in_a && !in_b {
                continue;
            }
            let peers: Vec<NodeId> = self.nodes[i].peers().to_vec();
            for p in peers {
                if p.index() < i {
                    continue; // pair already visited from the lower id
                }
                let rp = self.node_meta[p.index()].0;
                if (in_a && b.contains(rp)) || (in_b && a.contains(rp)) {
                    let n = NodeId(i as u32);
                    self.sever(n, p);
                    self.dynamics.severed.push((n, p));
                }
            }
        }
    }

    /// Heals every severed link whose endpoints straddle region sets `a`
    /// and `b`, in severance order.
    fn heal_regions(&mut self, a: RegionMask, b: RegionMask) {
        let mut to_heal = Vec::new();
        let mut i = 0;
        while i < self.dynamics.severed.len() {
            let (x, y) = self.dynamics.severed[i];
            let rx = self.node_meta[x.index()].0;
            let ry = self.node_meta[y.index()].0;
            if (a.contains(rx) && b.contains(ry)) || (a.contains(ry) && b.contains(rx)) {
                self.dynamics.severed.remove(i);
                to_heal.push((x, y));
            } else {
                i += 1;
            }
        }
        for (x, y) in to_heal {
            self.reconnect_or_defer(x, y);
        }
    }

    // ---- Sharded-execution plumbing (driven by `crate::par`) ----

    /// True when this world (or this shard of it) owns `node`.
    fn owns_node(&self, node: NodeId) -> bool {
        self.shard
            .as_ref()
            .is_none_or(|c| c.map.owns(c.me as usize, node))
    }

    /// True when this world (or this shard of it) owns `pool`.
    fn owns_pool(&self, pool: PoolId) -> bool {
        self.shard
            .as_ref()
            .is_none_or(|c| c.owned_pools[pool.index()])
    }

    /// The region of every node, in id order — the input to
    /// [`ShardMap::by_region`].
    pub(crate) fn node_regions(&self) -> Vec<Region> {
        self.node_meta.iter().map(|&(r, _)| r).collect()
    }

    /// Turns this freshly reset world into shard `me` of a partitioned
    /// run. Must be called before [`SimWorld::initial_events`]; pools are
    /// owned by the shard owning their primary gateway.
    pub(crate) fn attach_shard(&mut self, map: Arc<ShardMap>, me: usize) {
        let owned_pools = self
            .pool_states
            .iter()
            .map(|ps| map.owns(me, ps.gateways[0]))
            .collect();
        self.shard = Some(ShardCtx {
            map,
            me: me as u32,
            owned_pools,
            outbox: Vec::new(),
            emit_seq: 0,
            block_watermark: self.blocks.len(),
            local_created: Vec::new(),
        });
    }

    /// Drains this window's cross-shard events and newly minted blocks
    /// into the barrier exchange buffers and advances the replication
    /// watermark.
    pub(crate) fn drain_shard_output(
        &mut self,
        remotes: &mut Vec<RemoteEvent>,
        blocks: &mut Vec<Block>,
    ) {
        let Some(ctx) = self.shard.as_mut() else {
            return;
        };
        remotes.append(&mut ctx.outbox);
        for slot in ctx.block_watermark..self.blocks.len() {
            blocks.push(self.blocks.by_idx(BlockIdx(slot as u32)).clone());
        }
        ctx.block_watermark = self.blocks.len();
    }

    /// Interns the other shards' newly minted blocks. Slot assignment is
    /// made deterministic (independent of which shard posted first) by
    /// sorting into canonical creation order before insertion. Must run
    /// *before* the window's remote events are scheduled, so hash →
    /// slot resolution always succeeds.
    pub(crate) fn ingest_replica_blocks(&mut self, blocks: &mut Vec<Block>) {
        blocks.sort_by_key(|b| (b.mined_at(), b.miner().raw(), b.hash().raw()));
        for b in blocks.drain(..) {
            // Same mint-time consensus check as `register_block`. A
            // replica's parent may be a genesis child (no registered
            // parent) or may itself arrive later in this sorted batch;
            // only parent-present blocks can be validated here.
            if let Some(parent) = self.blocks.get(b.parent()) {
                self.consensus
                    .validate(&b, parent)
                    .expect("replica block must satisfy the consensus engine");
            }
            self.blocks.insert(b);
        }
        if let Some(ctx) = self.shard.as_mut() {
            ctx.block_watermark = self.blocks.len();
        }
    }

    /// Resolves a cross-shard event against the local registries.
    ///
    /// # Panics
    ///
    /// Panics if an injected block's replica was not ingested first —
    /// a violation of the window-barrier protocol.
    pub(crate) fn resolve_remote(&self, kind: RemoteEventKind) -> Event {
        match kind {
            RemoteEventKind::Deliver { from, to, msg } => Event::Deliver { from, to, msg },
            RemoteEventKind::Inject { node, block } => Event::InjectBlock {
                node,
                idx: self
                    .blocks
                    .idx_of(block)
                    .expect("replica blocks are ingested before remote events"),
            },
        }
    }

    /// Moves out the locally minted blocks, in creation order (replicas
    /// from other shards are dropped). The world must be reset before it
    /// runs again.
    pub(crate) fn take_local_blocks(&mut self) -> Vec<Block> {
        let blocks = self.blocks.take_blocks();
        let Some(ctx) = self.shard.as_ref() else {
            return blocks;
        };
        let mut want = ctx.local_created.iter().copied().peekable();
        let mut out = Vec::with_capacity(ctx.local_created.len());
        for (slot, block) in blocks.into_iter().enumerate() {
            if want.peek() == Some(&slot) {
                want.next();
                out.push(block);
            }
        }
        out
    }

    /// Moves out every observer log, in vantage order (non-owned slots
    /// are empty on a shard).
    pub(crate) fn take_logs(&mut self) -> Vec<ObserverLog> {
        std::mem::take(&mut self.logs)
    }

    /// The node id hosting each observer slot, in vantage order.
    pub(crate) fn observer_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<(usize, NodeId)> = self
            .observer_slot
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|slot| (slot, NodeId(i as u32))))
            .collect();
        out.sort_by_key(|&(slot, _)| slot);
        out.into_iter().map(|(_, n)| n).collect()
    }

    /// Moves out the transaction table as the ground-truth map.
    pub(crate) fn take_tx_map(&mut self) -> FxHashMap<TxId, Transaction> {
        std::mem::take(&mut self.txs).into_map()
    }

    /// `NextSubmission` events processed by this world.
    pub(crate) fn submission_events(&self) -> u64 {
        self.submissions
    }

    /// `Dynamics` + `FloodTick` events processed by this world (replicated
    /// on every shard, like submissions).
    pub(crate) fn dynamics_events(&self) -> u64 {
        self.dynamics.fired
    }

    /// The current peer list of `node`, in slab order. Exposed for
    /// topology assertions (e.g. reachability after a partition heals).
    pub fn peers_of(&self, node: NodeId) -> &[NodeId] {
        self.nodes[node.index()].peers()
    }

    /// Pool names by id (replicated, identical on every shard).
    pub(crate) fn pool_names(&self) -> Vec<String> {
        self.pools.iter().map(|p| p.name.clone()).collect()
    }

    /// Pool hash-power shares by id (replicated, identical on every shard).
    pub(crate) fn pool_shares(&self) -> Vec<f64> {
        self.pools.iter().map(|p| p.share).collect()
    }
}

impl World for SimWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::Deliver { from, to, msg } => self.on_deliver(now, from, to, msg, sched),
            Event::ImportDone { node, idx } => self.on_import_done(node, idx, sched),
            Event::FetchTimeout { node, idx } => {
                let hash = self.blocks.by_idx(idx).hash();
                let mut sends = std::mem::take(&mut self.send_scratch);
                self.nodes[node.index()].on_fetch_timeout(hash, idx, &mut sends);
                for s in &sends {
                    if let Message::GetBlock(h) = s.msg {
                        let i = self.blocks.idx_of(h).expect("fetches target known blocks");
                        sched.after(self.net.fetch_timeout, Event::FetchTimeout { node, idx: i });
                    }
                }
                self.dispatch_sends(node, &mut sends, sched);
                self.send_scratch = sends;
            }
            Event::PoolSolve { pool } => self.solve(pool, now, sched),
            Event::PoolRetarget { pool } => self.on_retarget(pool),
            Event::PoolRelease { pool, idx } => self.on_pool_release(pool, idx, sched),
            Event::InjectBlock { node, idx } => self.inject_block_at(node, idx, sched),
            Event::NextSubmission => self.on_next_submission(now, sched),
            Event::InjectTx { idx } => self.on_inject_tx(idx, sched),
            Event::Dynamics { entry } => self.on_dynamics(entry, sched),
            Event::FloodTick => self.on_flood_tick(now, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Preset, Scenario};
    use ethmeter_sim::Engine;

    fn tiny_world() -> (Scenario, SimWorld) {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(1)
            .duration(SimDuration::from_mins(5))
            .build();
        let world = SimWorld::new(&scenario);
        (scenario, world)
    }

    #[test]
    fn world_builds_expected_population() {
        let (scenario, world) = tiny_world();
        let gw_total: usize = scenario.pools.iter().map(|p| p.gateway_count).sum();
        assert_eq!(
            world.node_count(),
            scenario.ordinary_nodes + gw_total + scenario.vantages.len()
        );
        // All gateways have mempools.
        for (i, pool) in world.gateway_pool.iter().enumerate() {
            if pool.is_some() {
                assert!(world.nodes[i].mempool().is_some(), "gateway {i}");
            }
        }
        // Pool state is dense: one slot per pool, gateways wired.
        assert_eq!(world.pool_states.len(), scenario.pools.len());
        assert!(world
            .pool_states
            .iter()
            .all(|ps| !ps.gateways.is_empty() && ps.dup.is_none()));
    }

    #[test]
    fn five_minutes_produce_blocks_and_observations() {
        let (_, mut world) = tiny_world();
        let initial = world.initial_events();
        let mut engine = Engine::new(world);
        for (t, e) in initial {
            engine.schedule(t, e);
        }
        engine.run_until(SimTime::ZERO + SimDuration::from_mins(5));
        let world = engine.into_world();
        // ~22 blocks expected in 5 minutes at 13.3s.
        let blocks = world.truth().head_number();
        assert!((10..45).contains(&blocks), "blocks {blocks}");
        assert!(world.stats.messages > 1_000);
        assert!(world.stats.txs_submitted > 50);
        // The registries interned every produced artifact.
        assert_eq!(world.blocks.len() as u64, world.stats.blocks_produced);
        assert_eq!(world.txs.len() as u64, world.stats.txs_submitted);
        // Every observer saw most blocks.
        for log in &world.logs {
            assert!(
                log.block_count() as u64 >= blocks * 9 / 10,
                "observer saw {} of {blocks}",
                log.block_count()
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let scenario = Scenario::builder()
                .preset(Preset::Tiny)
                .seed(seed)
                .duration(SimDuration::from_mins(3))
                .build();
            let mut world = SimWorld::new(&scenario);
            let initial = world.initial_events();
            let mut engine = Engine::new(world);
            for (t, e) in initial {
                engine.schedule(t, e);
            }
            engine.run_until(SimTime::ZERO + SimDuration::from_mins(3));
            let w = engine.into_world();
            (
                w.stats,
                w.truth().head(),
                w.truth().len(),
                w.logs.iter().map(|l| l.block_count()).collect::<Vec<_>>(),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the identical run");
        let c = run(8);
        assert_ne!(a.1, c.1, "different seeds diverge");
    }

    #[test]
    fn reset_reproduces_a_fresh_world() {
        let scenario_a = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(21)
            .duration(SimDuration::from_mins(3))
            .build();
        let scenario_b = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(22)
            .ordinary_nodes(48)
            .duration(SimDuration::from_mins(3))
            .build();

        let run_fresh = |scenario: &Scenario| {
            let mut world = SimWorld::new(scenario);
            let initial = world.initial_events();
            let mut engine = Engine::new(world);
            for (t, e) in initial {
                engine.schedule(t, e);
            }
            engine.run_until(SimTime::ZERO + scenario.duration);
            let mut w = engine.into_world();
            (w.stats, w.take_campaign(scenario.duration).fingerprint())
        };

        // One world, reset across two differently-shaped scenarios (node
        // counts differ, so slabs shrink and regrow), must match fresh
        // construction bit for bit.
        let mut engine = Engine::new(SimWorld::new(&scenario_a));
        let run_reused = |engine: &mut Engine<SimWorld>, scenario: &Scenario| {
            engine.reset();
            engine.world_mut().reset(scenario);
            let initial = engine.world_mut().initial_events();
            for (t, e) in initial {
                engine.schedule(t, e);
            }
            engine.run_until(SimTime::ZERO + scenario.duration);
            let stats = engine.world_mut().stats;
            (
                stats,
                engine
                    .world_mut()
                    .take_campaign(scenario.duration)
                    .fingerprint(),
            )
        };
        for scenario in [&scenario_a, &scenario_b, &scenario_a] {
            assert_eq!(
                run_reused(&mut engine, scenario),
                run_fresh(scenario),
                "reused world diverged on seed {}",
                scenario.seed
            );
        }
    }
}
