//! Shared helpers for the benchmark harness and the `repro` binary.
//!
//! Benches and the reproduction CLI share scenario construction so the
//! numbers printed by `repro` and measured by `cargo bench` come from the
//! same configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ethmeter_core::{Preset, Scenario};
use ethmeter_types::SimDuration;

/// The scenario used by per-figure Criterion benches: small enough to run
/// in a bench iteration, large enough that every analyzer has data.
pub fn bench_scenario(seed: u64) -> Scenario {
    Scenario::builder()
        .preset(Preset::Tiny)
        .seed(seed)
        .duration(SimDuration::from_mins(10))
        .build()
}

/// The scenario used for figure-quality runs in `repro` (overridable by
/// CLI flags).
pub fn repro_scenario(preset: Preset, seed: u64) -> Scenario {
    Scenario::builder().preset(preset).seed(seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_small() {
        let s = bench_scenario(1);
        assert!(s.ordinary_nodes <= 100);
        assert_eq!(s.duration, SimDuration::from_mins(10));
    }
}
