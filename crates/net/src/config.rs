//! Network protocol configuration.

use ethmeter_types::SimDuration;

/// How transactions fan out from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxRelayPolicy {
    /// Geth 1.8 behavior: forward to every peer not known to have the
    /// transaction. Exact, but O(edges) messages per transaction.
    #[default]
    All,
    /// Forward to √(peers) unknowing peers. A scaling approximation for
    /// large runs: coverage stays near-complete (gossip still reaches
    /// everyone with high probability) while message volume drops by an
    /// order of magnitude. Arrival-order statistics — what §III-C2 needs —
    /// are preserved.
    Sqrt,
}

/// Tunables of the simulated devp2p layer, with Geth-1.8 defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Target peer count of an ordinary node (Geth default: 25).
    pub default_peer_target: usize,
    /// Hard cap on an ordinary node's degree (inbound included).
    pub max_peer_cap: usize,
    /// Peer target for measurement nodes in the paper's main campaign
    /// ("we set it to unlimited"): they connect to this many peers or the
    /// whole network, whichever is smaller.
    pub observer_peer_target: usize,
    /// Transaction relay fanout policy.
    pub tx_relay: TxRelayPolicy,
    /// Relay blocks that are *not* head candidates? Geth relays any valid
    /// recent block; disabling is an ablation that starves uncle
    /// recognition.
    pub relay_non_head: bool,
    /// How far behind the local head a block may lag and still be relayed.
    pub relay_window: u64,
    /// Fetcher timeout before re-requesting an announced block elsewhere.
    pub fetch_timeout: SimDuration,
    /// Base block validation/import latency (header checks, PoW verify).
    pub import_base: SimDuration,
    /// Additional import latency per transaction (state execution).
    pub import_per_tx: SimDuration,
    /// Log-normal sigma applied multiplicatively to import latency.
    pub import_jitter_sigma: f64,
    /// Fixed per-message processing overhead at the receiver.
    pub proc_overhead: SimDuration,
    /// Heights of history a node's header view retains.
    pub header_window: u64,
    /// Capacity of per-peer known-block sets (Geth: 1024).
    pub known_blocks_cap: usize,
    /// Capacity of per-peer and node-level known-tx sets. Geth uses
    /// 32,768; deduplication only needs a horizon comfortably longer than
    /// network propagation, and one set exists per (node, peer) pair, so
    /// the simulator defaults far lower to keep large campaigns in memory.
    pub known_txs_cap: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            default_peer_target: 25,
            max_peer_cap: 60,
            observer_peer_target: 200,
            tx_relay: TxRelayPolicy::All,
            relay_non_head: true,
            relay_window: 7,
            fetch_timeout: SimDuration::from_millis(500),
            // Geth 1.8-era mainnet imports (header + PoW check + state
            // execution) take 100-300ms; the base dominates because scaled
            // scenarios carry fewer transactions per block than mainnet.
            import_base: SimDuration::from_millis(150),
            import_per_tx: SimDuration::from_micros(900),
            import_jitter_sigma: 0.5,
            proc_overhead: SimDuration::from_micros(300),
            header_window: 96,
            known_blocks_cap: 1024,
            known_txs_cap: 3_000,
        }
    }
}

impl NetConfig {
    /// Geth's direct-propagation fanout: √(peer count), at least 1 for a
    /// connected node.
    pub fn push_fanout(&self, peer_count: usize) -> usize {
        if peer_count == 0 {
            0
        } else {
            (peer_count as f64).sqrt().ceil() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_geth() {
        let c = NetConfig::default();
        assert_eq!(c.default_peer_target, 25);
        assert_eq!(c.tx_relay, TxRelayPolicy::All);
        assert!(c.relay_non_head);
        assert_eq!(c.known_blocks_cap, 1024);
    }

    #[test]
    fn push_fanout_is_sqrt() {
        let c = NetConfig::default();
        assert_eq!(c.push_fanout(25), 5);
        assert_eq!(c.push_fanout(24), 5); // ceil
        assert_eq!(c.push_fanout(1), 1);
        assert_eq!(c.push_fanout(0), 0);
        assert_eq!(c.push_fanout(100), 10);
    }
}
