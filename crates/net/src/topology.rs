//! Overlay topology construction.
//!
//! Ethereum's discovery assigns neighbors "based on a random node
//! identifier ... independent of the geographic location" (§III-B1). We
//! reproduce that: each node dials uniformly random peers until it reaches
//! its target degree, subject to a per-node cap; measurement nodes get a
//! larger target (the paper ran its observers with unlimited peers, and a
//! complementary one at the default 25).

use ethmeter_sim::Xoshiro256;
use ethmeter_types::{FxHashSet, NodeId};

/// An undirected overlay graph.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    adjacency: Vec<Vec<NodeId>>,
}

/// Per-node degree targets used by [`Topology::random`].
#[derive(Debug, Clone)]
pub struct DegreePlan {
    /// Target degree per node (dialing stops at the target; accepting
    /// stops at the cap).
    pub targets: Vec<usize>,
    /// Hard cap per node.
    pub caps: Vec<usize>,
}

impl Topology {
    /// Builds a random graph over `plan.targets.len()` nodes: each node
    /// dials random distinct partners until its target degree is met or
    /// the candidate pool is exhausted; both endpoints must be under their
    /// caps. The graph is then patched to be connected.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty or `targets`/`caps` lengths differ.
    pub fn random(plan: &DegreePlan, rng: &mut Xoshiro256) -> Self {
        Self::random_with_constraint(plan, rng, |_, _| true)
    }

    /// Like [`Topology::random`], but only creates edges `(a, b)` for
    /// which `allowed(a, b)` holds. Used to model hidden pool gateways:
    /// "mining pools have been known to place gateways in several
    /// geographical locations ... without disclosing their precise
    /// location" (§III-B2) — so measurement nodes cannot peer with them
    /// directly. The connectivity patch ignores the constraint as a last
    /// resort.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty or `targets`/`caps` lengths differ.
    pub fn random_with_constraint<F>(plan: &DegreePlan, rng: &mut Xoshiro256, allowed: F) -> Self
    where
        F: Fn(usize, usize) -> bool,
    {
        let n = plan.targets.len();
        assert!(n >= 2, "topology needs at least two nodes");
        assert_eq!(plan.targets.len(), plan.caps.len(), "plan length mismatch");
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();

        let add_edge = |a: usize,
                        b: usize,
                        adjacency: &mut Vec<Vec<NodeId>>,
                        edges: &mut FxHashSet<(u32, u32)>| {
            let key = (a.min(b) as u32, a.max(b) as u32);
            if a == b || edges.contains(&key) {
                return false;
            }
            edges.insert(key);
            adjacency[a].push(NodeId(b as u32));
            adjacency[b].push(NodeId(a as u32));
            true
        };

        // Dial in random node order so no node systematically fills first.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for &i in &order {
            let mut attempts = 0;
            while adjacency[i].len() < plan.targets[i] && attempts < 40 * n {
                attempts += 1;
                let j = rng.index(n);
                if j == i
                    || adjacency[j].len() >= plan.caps[j]
                    || adjacency[i].len() >= plan.caps[i]
                    || !allowed(i, j)
                {
                    continue;
                }
                add_edge(i, j, &mut adjacency, &mut edges);
            }
        }

        // Connectivity patch: link each secondary component to the
        // component of node 0 (ignoring caps; isolation would break the
        // simulation entirely).
        let mut comp = vec![usize::MAX; n];
        let mut comp_count = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = comp_count;
            comp_count += 1;
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                for &w in &adjacency[v] {
                    let w = w.index();
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        stack.push(w);
                    }
                }
            }
        }
        if comp_count > 1 {
            // Attach a representative of each non-zero component to a
            // random member of component 0.
            let comp0: Vec<usize> = (0..n).filter(|&v| comp[v] == comp[0]).collect();
            for c in 0..comp_count {
                if c == comp[0] {
                    continue;
                }
                let rep = (0..n).find(|&v| comp[v] == c).expect("component member");
                let anchor = comp0[rng.index(comp0.len())];
                add_edge(rep, anchor, &mut adjacency, &mut edges);
            }
        }

        Topology { n, adjacency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes (never produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Total undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// True if every node can reach every other.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adjacency[v] {
                let w = w.index();
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_plan(n: usize, target: usize, cap: usize) -> DegreePlan {
        DegreePlan {
            targets: vec![target; n],
            caps: vec![cap; n],
        }
    }

    #[test]
    fn builds_connected_graph_with_target_degrees() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let plan = uniform_plan(200, 13, 60);
        let topo = Topology::random(&plan, &mut rng);
        assert_eq!(topo.len(), 200);
        assert!(topo.is_connected());
        // Mean degree ~ 2 * target (each dial creates degree at both ends).
        let mean: f64 = (0..200)
            .map(|i| topo.neighbors(NodeId(i as u32)).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(
            (13.0..=40.0).contains(&mean),
            "mean degree {mean} out of band"
        );
        // No node exceeds its cap (patching can exceed by a few; allow +4).
        for i in 0..200 {
            assert!(topo.neighbors(NodeId(i)).len() <= 64);
        }
    }

    #[test]
    fn heterogeneous_targets_respected() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut plan = uniform_plan(100, 8, 30);
        // Node 0 is an observer with a large target.
        plan.targets[0] = 60;
        plan.caps[0] = 99;
        let topo = Topology::random(&plan, &mut rng);
        assert!(
            topo.neighbors(NodeId(0)).len() >= 55,
            "observer degree {}",
            topo.neighbors(NodeId(0)).len()
        );
        assert!(topo.is_connected());
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let topo = Topology::random(&uniform_plan(50, 6, 20), &mut rng);
        for i in 0..50u32 {
            let neigh = topo.neighbors(NodeId(i));
            assert!(!neigh.contains(&NodeId(i)), "self loop at {i}");
            let set: std::collections::HashSet<_> = neigh.iter().collect();
            assert_eq!(set.len(), neigh.len(), "duplicate edge at {i}");
        }
    }

    #[test]
    fn symmetry() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let topo = Topology::random(&uniform_plan(60, 5, 20), &mut rng);
        for i in 0..60u32 {
            for &j in topo.neighbors(NodeId(i)) {
                assert!(
                    topo.neighbors(j).contains(&NodeId(i)),
                    "asymmetric edge {i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let plan = uniform_plan(80, 7, 25);
        let a = Topology::random(&plan, &mut Xoshiro256::seed_from_u64(3));
        let b = Topology::random(&plan, &mut Xoshiro256::seed_from_u64(3));
        for i in 0..80u32 {
            assert_eq!(a.neighbors(NodeId(i)), b.neighbors(NodeId(i)));
        }
    }

    #[test]
    fn tiny_graph_connects() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let topo = Topology::random(&uniform_plan(2, 1, 5), &mut rng);
        assert!(topo.is_connected());
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn constraint_forbids_edges() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        // Nodes 0..5 may not connect to nodes 45..50 (hidden gateways).
        let hidden = |v: usize| (45..50).contains(&v);
        let observer = |v: usize| v < 5;
        let topo = Topology::random_with_constraint(&uniform_plan(50, 8, 25), &mut rng, |a, b| {
            !((observer(a) && hidden(b)) || (observer(b) && hidden(a)))
        });
        assert!(topo.is_connected());
        for o in 0..5u32 {
            for &n in topo.neighbors(NodeId(o)) {
                assert!(!hidden(n.index()), "observer {o} connected to hidden {n}");
            }
        }
    }
}
