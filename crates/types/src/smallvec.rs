//! A fixed-capacity small-vector that spills to the heap.
//!
//! Gossip messages overwhelmingly carry one or two payload ids — a single
//! announced block hash, a singleton transaction batch — yet a `Vec`
//! payload costs a heap allocation per message, and the per-peer fan-out
//! of a broadcast multiplies that by the node degree. [`InlineVec`] stores
//! up to `N` elements inline (so constructing and cloning the common case
//! is a plain memcpy) and transparently spills to a `Vec` beyond that, so
//! correctness never depends on the inline bound.
//!
//! The type is deliberately minimal: it derefs to a slice for all reading,
//! and only supports `push`/`clear` mutation — exactly what building a
//! wire message needs.

use std::ops::Deref;

/// A vector of `Copy` elements with inline storage for up to `N` of them.
///
/// Equality and iteration behave exactly like a slice of the elements: an
/// inline value and a spilled value holding the same elements are equal.
#[derive(Debug, Clone)]
pub enum InlineVec<T: Copy + Default, const N: usize> {
    /// At most `N` elements, stored inline. Only the first `len` entries
    /// of `buf` are meaningful.
    Inline {
        /// Number of live elements in `buf`.
        len: u8,
        /// Inline storage (tail entries beyond `len` are padding).
        buf: [T; N],
    },
    /// More than `N` elements, stored on the heap.
    Spilled(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no allocation).
    #[inline]
    pub fn new() -> Self {
        InlineVec::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Creates a vector holding a single element (no allocation).
    #[inline]
    pub fn one(value: T) -> Self {
        let mut buf = [T::default(); N];
        buf[0] = value;
        InlineVec::Inline { len: 1, buf }
    }

    /// Copies a slice into a new vector (allocates only beyond `N`).
    pub fn from_slice(values: &[T]) -> Self {
        if values.len() <= N {
            let mut buf = [T::default(); N];
            buf[..values.len()].copy_from_slice(values);
            InlineVec::Inline {
                len: values.len() as u8,
                buf,
            }
        } else {
            InlineVec::Spilled(values.to_vec())
        }
    }

    /// Appends an element, spilling to the heap when the inline capacity
    /// is exceeded.
    pub fn push(&mut self, value: T) {
        match self {
            InlineVec::Inline { len, buf } => {
                let n = *len as usize;
                if n < N {
                    buf[n] = value;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(N + 1);
                    spilled.extend_from_slice(&buf[..n]);
                    spilled.push(value);
                    *self = InlineVec::Spilled(spilled);
                }
            }
            InlineVec::Spilled(v) => v.push(value),
        }
    }

    /// Removes every element. An inline value stays inline; a spilled
    /// value keeps its heap buffer for reuse.
    pub fn clear(&mut self) {
        match self {
            InlineVec::Inline { len, .. } => *len = 0,
            InlineVec::Spilled(v) => v.clear(),
        }
    }

    /// The live elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { len, buf } => &buf[..*len as usize],
            InlineVec::Spilled(v) => v,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len as usize,
            InlineVec::Spilled(v) => v.len(),
        }
    }

    /// True if no elements are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the elements live inline (diagnostics/tests).
    pub fn is_inline(&self) -> bool {
        matches!(self, InlineVec::Inline { .. })
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(values: Vec<T>) -> Self {
        if values.len() <= N {
            Self::from_slice(&values)
        } else {
            InlineVec::Spilled(values)
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u64, 2>;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v = V::new();
        assert!(v.is_empty() && v.is_inline());
        v.push(1);
        v.push(2);
        assert!(v.is_inline());
        assert_eq!(&v[..], &[1, 2]);
        v.push(3);
        assert!(!v.is_inline(), "third element spills");
        assert_eq!(&v[..], &[1, 2, 3]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn constructors() {
        assert_eq!(&V::one(7)[..], &[7]);
        assert!(V::one(7).is_inline());
        assert_eq!(&V::from_slice(&[1, 2])[..], &[1, 2]);
        assert!(!V::from_slice(&[1, 2, 3]).is_inline());
        let from_vec: V = vec![9, 8, 7].into();
        assert_eq!(&from_vec[..], &[9, 8, 7]);
        let collected: V = (0..2).collect();
        assert!(collected.is_inline());
    }

    #[test]
    fn equality_ignores_representation() {
        let inline = V::from_slice(&[1, 2]);
        let spilled = {
            let mut s = V::from_slice(&[1, 2, 3]);
            // Rebuild [1, 2] in spilled form.
            s.clear();
            s.push(1);
            s.push(2);
            s
        };
        assert!(!spilled.is_inline());
        assert_eq!(inline, spilled);
        assert_ne!(inline, V::from_slice(&[1]));
    }

    #[test]
    fn clear_keeps_spilled_buffer() {
        let mut v = V::from_slice(&[1, 2, 3]);
        v.clear();
        assert!(v.is_empty());
        assert!(!v.is_inline(), "spilled buffer retained for reuse");
        let mut i = V::from_slice(&[1]);
        i.clear();
        assert!(i.is_empty() && i.is_inline());
    }

    #[test]
    fn slice_like_reads() {
        let v = V::from_slice(&[4, 5]);
        assert_eq!(v.iter().copied().sum::<u64>(), 9);
        assert_eq!(v.first(), Some(&4));
        if let [a, b] = v[..] {
            assert_eq!((a, b), (4, 5));
        } else {
            panic!("slice pattern must match");
        }
    }
}
