//! Fixture: a crate root missing `#![warn(missing_docs)]`.

#![forbid(unsafe_code)]

pub fn noop() {}
