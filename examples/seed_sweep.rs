//! Seed sweep: fan one scenario out across eight seeds on parallel
//! workers, then show that the parallel results are bit-identical to
//! sequential `run_campaign` calls — the paper's many-independent-runs
//! methodology as one API call.
//!
//! ```sh
//! cargo run --release --example seed_sweep
//! ```

use ethmeter::prelude::*;

fn main() {
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .duration(SimDuration::from_mins(6))
        .build();

    println!(
        "sweeping {} ordinary nodes x {} simulated across 8 seeds ...",
        base.ordinary_nodes, base.duration
    );

    // The sweep clones the base scenario per seed and runs the campaigns
    // on a pool of worker threads (here at least two; 0 = one per CPU).
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let sweep = Sweep::new(base.clone())
        .seed_range(100, 8)
        .threads(threads)
        .run();

    println!(
        "done on {} threads: {} events, {} blocks produced, {} txs submitted\n",
        sweep.threads_used, sweep.events, sweep.totals.blocks_produced, sweep.totals.txs_submitted
    );

    println!("seed   head-number  head-hash          messages");
    for run in &sweep.runs {
        let truth = &run.outcome.campaign.truth;
        println!(
            "{:<6} {:<12} {:<18} {}",
            run.seed,
            truth.tree.head_number(),
            truth.tree.head(),
            run.outcome.stats.messages
        );
    }
    println!(
        "\n{} distinct canonical heads across {} seeds",
        sweep.distinct_heads(),
        sweep.runs.len()
    );

    // Spot-check determinism: re-run one grid point sequentially and
    // compare against the parallel result bit for bit.
    let mut check = base;
    check.seed = sweep.runs[3].seed;
    let sequential = run_campaign(&check);
    let parallel = &sweep.runs[3].outcome;
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(sequential.events, parallel.events);
    assert_eq!(
        sequential.campaign.truth.tree.head(),
        parallel.campaign.truth.tree.head()
    );
    println!("\nsequential spot-check for seed {}: identical", check.seed);
}
