//! Deterministic discrete-event simulation engine.
//!
//! This crate is the execution substrate for every experiment in the
//! workspace. It provides:
//!
//! - [`rng`]: a fully in-repo, seedable PRNG ([`rng::Xoshiro256``]) so
//!   simulation streams are bit-stable forever, independent of external
//!   crate versions;
//! - [`dist`]: the probability distributions the network model needs
//!   (exponential inter-block times, lognormal latency jitter, Zipf sender
//!   activity, ...);
//! - [`event`]: a time-ordered event queue with deterministic FIFO
//!   tie-breaking for simultaneous events;
//! - [`engine`]: the run loop driving a user-supplied [`engine::World`].
//!
//! # Example
//!
//! ```
//! use ethmeter_sim::engine::{Engine, Scheduler, World};
//! use ethmeter_types::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.after(SimDuration::from_secs(1), ());
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(3600));
//! assert_eq!(engine.world().fired, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;

pub use engine::{Engine, Scheduler, World};
pub use event::EventQueue;
pub use rng::Xoshiro256;
