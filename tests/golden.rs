//! Golden determinism fingerprints.
//!
//! Each pinned constant is the [`CampaignData::fingerprint`] digest of one
//! fully specified campaign (preset + seed + duration), captured from the
//! seed implementation *before* the dense-state hot-path rewrite. Any
//! change to gossip decisions, RNG stream consumption, event ordering, or
//! observer recording shifts these digests — so a performance refactor
//! that is supposed to be behavior-preserving must leave every constant
//! untouched.
//!
//! If a change is *intended* to alter campaign behavior (a model fix, a
//! calibration change), re-capture with:
//!
//! ```text
//! ETHMETER_BLESS=1 cargo test --test golden -- --nocapture
//! ```
//!
//! and update the constants in `tests/common/mod.rs` (the one shared
//! golden table), explaining the behavioral change in the commit message.

use ethmeter::prelude::*;

mod common;
use common::GOLDENS;

fn scenario(preset: Preset, seed: u64, mins: u64) -> Scenario {
    Scenario::builder()
        .preset(preset)
        .seed(seed)
        .duration(SimDuration::from_mins(mins))
        .build()
}

#[test]
fn campaign_fingerprints_match_goldens() {
    let bless = std::env::var_os("ETHMETER_BLESS").is_some();
    let mut failures = Vec::new();
    for &(label, preset, seed, mins, expected) in &GOLDENS {
        let got = run_campaign(&scenario(preset, seed, mins))
            .campaign
            .fingerprint();
        if bless {
            println!("(\"{label}\", Preset::{preset:?}, {seed}, {mins}, {got:#018x}),");
        } else if got != expected {
            failures.push(format!(
                "{label}: fingerprint {got:#018x}, pinned {expected:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "campaign output diverged from the pinned goldens:\n  {}\n\
         (ETHMETER_BLESS=1 re-captures; only bless intentional behavior changes)",
        failures.join("\n  ")
    );
}

#[test]
fn sharded_campaigns_match_the_sequential_goldens() {
    // The parallel engine must land on the *same* pinned digests as the
    // sequential reference at every shard count — the goldens are
    // shard-count-invariant, not merely reproducible per count.
    for &(label, preset, seed, mins, expected) in &GOLDENS {
        for shards in [2, 4, 8] {
            let s = Scenario::builder()
                .preset(preset)
                .seed(seed)
                .duration(SimDuration::from_mins(mins))
                .shards(shards)
                .build();
            let got = run_campaign(&s).campaign.fingerprint();
            assert_eq!(
                got, expected,
                "{label} at {shards} shards: fingerprint {got:#018x}, pinned {expected:#018x}"
            );
        }
    }
}

#[test]
fn fingerprint_is_reproducible_and_seed_sensitive() {
    let s = scenario(Preset::Tiny, 101, 5);
    let a = run_campaign(&s).campaign.fingerprint();
    let b = run_campaign(&s).campaign.fingerprint();
    assert_eq!(a, b, "same scenario, same digest");
    let c = run_campaign(&scenario(Preset::Tiny, 102, 5))
        .campaign
        .fingerprint();
    assert_ne!(a, c, "different seeds must diverge");
}
