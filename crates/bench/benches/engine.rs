//! Simulator-throughput benchmarks and the `BENCH_engine.json` report.
//!
//! Two jobs in one harness:
//!
//! 1. Classic criterion-style microbenches: end-to-end campaign
//!    execution, chain-only sequence generation (Figure 7 / §III-D's
//!    substrate), the exact run-length theory, and the event-queue
//!    push/pop hot path.
//! 2. An events/sec throughput survey over the `tiny`/`small`/`medium`
//!    presets, written to `BENCH_engine.json` at the repo root so the
//!    trajectory of the simulation core is tracked across PRs. The file
//!    also embeds the frozen pre-dense-rewrite baseline (measured on the
//!    same reference container from the seed implementation), so the
//!    report always answers "how much faster than the original hot path
//!    are we now?".
//!
//! Run `cargo bench -p ethmeter-bench --bench engine` for the full
//! survey, or append `-- --quick` for the CI smoke mode (seconds, not
//! minutes; same JSON schema, `"mode": "quick"`).

use criterion::Criterion;
use ethmeter_core::chainonly::{run_chain_only, ChainOnlyConfig};
use ethmeter_core::{run_campaign, Preset, Scenario};
use ethmeter_sim::event::EventQueue;
use ethmeter_stats::runs::{expected_maximal_runs, prob_run_at_least};
use ethmeter_types::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;

/// Seed-implementation events/sec (commit "golden determinism harness",
/// pre-dense-rewrite), measured in full mode on the reference container.
/// Frozen so every future report carries its own yardstick.
const SEED_BASELINE_EPS: [(&str, f64); 3] = [
    ("tiny", 1_425_095.0),
    ("small", 1_080_124.0),
    ("medium", 911_207.0),
];

/// One preset's throughput measurement.
struct PresetThroughput {
    name: &'static str,
    sim_seconds: f64,
    events: u64,
    best_wall_seconds: f64,
    events_per_sec: f64,
}

fn measure_preset(
    name: &'static str,
    preset: Preset,
    duration: SimDuration,
    samples: u32,
) -> PresetThroughput {
    let scenario = Scenario::builder()
        .preset(preset)
        .seed(7)
        .duration(duration)
        .build();
    let mut events = 0;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let outcome = black_box(run_campaign(&scenario));
        let wall = start.elapsed().as_secs_f64();
        events = outcome.events;
        if wall < best {
            best = wall;
        }
    }
    let eps = events as f64 / best;
    println!(
        "  throughput/{name}: {events} events in {best:.3}s best-of-{samples} \
         ({eps:.0} events/sec)"
    );
    PresetThroughput {
        name,
        sim_seconds: duration.as_secs_f64(),
        events,
        best_wall_seconds: best,
        events_per_sec: eps,
    }
}

/// Event-queue microbench: ns per push+pop at a realistic pending-queue
/// depth, with colliding timestamps to exercise the FIFO tie-break.
fn measure_queue(samples: u32) -> f64 {
    const DEPTH: usize = 4_096;
    const OPS: usize = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut q = EventQueue::with_capacity(DEPTH);
        for i in 0..DEPTH {
            q.push(SimTime::from_nanos((i % 97) as u64), i as u64);
        }
        let start = Instant::now();
        for i in 0..OPS {
            let (t, _) = q.pop().expect("queue stays primed");
            q.push(t + SimDuration::from_nanos((i % 131) as u64), i as u64);
        }
        let wall = start.elapsed().as_secs_f64();
        black_box(&q);
        let ns = wall * 1e9 / OPS as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("  queue/push_pop: {best:.1} ns per push+pop (depth {DEPTH})");
    best
}

fn classic_benches(c: &mut Criterion, quick: bool) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(if quick { 2 } else { 10 });

    // A 3-simulated-minute micro-campaign: measures end-to-end event
    // throughput (topology build + gossip + mining + analysis handoff).
    let micro = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(3))
        .build();
    g.bench_function("campaign_3min_60nodes", |b| {
        b.iter(|| black_box(run_campaign(&micro)))
    });

    // Figure 7's substrate: a paper-month of block winners.
    let month = ChainOnlyConfig::paper_month(1);
    g.bench_function("chain_only_201k_blocks", |b| {
        b.iter(|| black_box(run_chain_only(&month)))
    });

    // §III-D exact theory at paper scale.
    g.bench_function("prob_run_at_least_201k", |b| {
        b.iter(|| black_box(prob_run_at_least(201_086, 0.259, 12)))
    });
    g.bench_function("expected_maximal_runs", |b| {
        b.iter(|| black_box(expected_maximal_runs(201_086, 0.259, 8)))
    });
    g.finish();
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn write_report(
    mode: &str,
    presets: &[PresetThroughput],
    queue_push_pop_ns: f64,
    criterion: &Criterion,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ethmeter-bench-engine/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"baseline\": {\n");
    out.push_str(
        "    \"note\": \"seed implementation (pre dense-state rewrite), full mode, reference container\",\n",
    );
    for (i, (name, eps)) in SEED_BASELINE_EPS.iter().enumerate() {
        let comma = if i + 1 < SEED_BASELINE_EPS.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    \"{name}_events_per_sec\": {}{comma}\n",
            json_f64(*eps)
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (i, p) in presets.iter().enumerate() {
        let baseline = SEED_BASELINE_EPS
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, e)| *e);
        let speedup = baseline.map_or(f64::NAN, |b| p.events_per_sec / b);
        let comma = if i + 1 < presets.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_seconds\": {}, \"events\": {}, \
             \"best_wall_seconds\": {}, \"events_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{comma}\n",
            p.name,
            json_f64(p.sim_seconds),
            p.events,
            json_f64(p.best_wall_seconds),
            json_f64(p.events_per_sec),
            json_f64(speedup),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"queue_push_pop_ns\": {},\n",
        json_f64(queue_push_pop_ns)
    ));
    out.push_str("  \"microbenches\": [\n");
    let results = criterion.results();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{comma}\n",
            r.name,
            r.median.as_nanos(),
            r.samples
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("engine bench ({mode} mode)");

    let mut criterion = Criterion::default();
    classic_benches(&mut criterion, quick);

    println!("group: throughput");
    let (samples, tiny_d, small_d, medium_d) = if quick {
        (
            1,
            SimDuration::from_mins(2),
            SimDuration::from_mins(2),
            SimDuration::from_mins(1),
        )
    } else {
        (
            3,
            SimDuration::from_mins(20),
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
        )
    };
    let presets = vec![
        measure_preset("tiny", Preset::Tiny, tiny_d, samples),
        measure_preset("small", Preset::Small, small_d, samples),
        measure_preset("medium", Preset::Medium, medium_d, samples),
    ];

    println!("group: queue");
    let queue_ns = measure_queue(if quick { 1 } else { 5 });

    let report = write_report(mode, &presets, queue_ns, &criterion);
    // CARGO_MANIFEST_DIR = crates/bench; the report lives at the repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &report).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
