//! Score-based fork choice with explicit `head`/`safe`/`finalized` markers.
//!
//! [`ForkChoiceTree`] is the part of chain selection that is pure
//! fork-choice state: the score of every known block under a pluggable
//! [`Consensus`] engine, the current head, and the trailing safe/finalized
//! markers derived from the engine's confirmation depths. It deliberately
//! holds no block bodies — [`crate::tree::BlockTree`] embeds one and keeps
//! the bodies, children, and canonical index around it, and lighter
//! consumers (header-only views, replay tools) can drive one directly.
//!
//! Inserts are `Result`-based: an unknown parent or a duplicate hash is an
//! explicit [`ForkChoiceError`], never a silent no-op, so callers that
//! replay known-good chains can `expect` and callers that ingest untrusted
//! streams must handle the failure.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ethmeter_types::{BlockHash, FxHashMap};

use crate::consensus::{Consensus, Score};

/// Why a block could not join the fork-choice tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkChoiceError {
    /// The block's parent is not in the tree (and is not the genesis the
    /// tree was rooted at).
    UnknownParent {
        /// The rejected block.
        hash: BlockHash,
        /// The parent it referenced.
        parent: BlockHash,
    },
    /// A block with this hash is already scored.
    Duplicate(BlockHash),
}

impl fmt::Display for ForkChoiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkChoiceError::UnknownParent { hash, parent } => {
                write!(f, "block {hash} references unknown parent {parent}")
            }
            ForkChoiceError::Duplicate(hash) => write!(f, "block {hash} already in fork choice"),
        }
    }
}

impl Error for ForkChoiceError {}

/// Fork-choice state under a pluggable [`Consensus`] engine: per-block
/// scores plus the `head`/`safe`/`finalized` markers.
#[derive(Debug, Clone)]
pub struct ForkChoiceTree {
    engine: Arc<dyn Consensus>,
    scores: FxHashMap<BlockHash, Score>,
    head: BlockHash,
    safe: BlockHash,
    finalized: BlockHash,
}

impl ForkChoiceTree {
    /// A tree rooted at `genesis` (score 0) under `engine`. All three
    /// markers start at the genesis.
    pub fn new(genesis: BlockHash, engine: Arc<dyn Consensus>) -> Self {
        let mut scores = FxHashMap::default();
        scores.insert(genesis, 0);
        ForkChoiceTree {
            engine,
            scores,
            head: genesis,
            safe: genesis,
            finalized: genesis,
        }
    }

    /// Scores `hash` against its already-scored `parent` and runs head
    /// selection. Returns `Ok(true)` iff the head moved to `hash`.
    ///
    /// The caller owns canonical-index maintenance on a head switch (and
    /// should then call [`Self::update_markers`]); this keeps the tree
    /// free of body/ancestry knowledge.
    pub fn insert(
        &mut self,
        hash: BlockHash,
        parent: BlockHash,
        difficulty: u64,
        uncle_count: usize,
    ) -> Result<bool, ForkChoiceError> {
        if self.scores.contains_key(&hash) {
            return Err(ForkChoiceError::Duplicate(hash));
        }
        let Some(&parent_score) = self.scores.get(&parent) else {
            return Err(ForkChoiceError::UnknownParent { hash, parent });
        };
        let score = self.engine.score(parent_score, difficulty, uncle_count);
        self.scores.insert(hash, score);
        let head_score = self.scores[&self.head];
        if self.engine.prefer(score, hash, head_score, self.head) {
            self.head = hash;
            return Ok(true);
        }
        Ok(false)
    }

    /// Recomputes the `safe`/`finalized` markers from the canonical chain
    /// (genesis first, head last) using the engine's confirmation depths.
    /// Markers saturate at the genesis on short chains.
    pub fn update_markers(&mut self, canonical: &[BlockHash]) {
        let Some(last) = canonical.len().checked_sub(1) else {
            return;
        };
        let at = |depth: u64| {
            let idx = last.saturating_sub(usize::try_from(depth).unwrap_or(usize::MAX));
            canonical[idx]
        };
        self.safe = at(self.engine.safe_depth());
        self.finalized = at(self.engine.finalized_depth());
    }

    /// The engine driving this tree.
    pub fn consensus(&self) -> &Arc<dyn Consensus> {
        &self.engine
    }

    /// The current head.
    pub fn head(&self) -> BlockHash {
        self.head
    }

    /// The newest block at least [`Consensus::safe_depth`] confirmations
    /// behind the head (as of the last [`Self::update_markers`] call).
    pub fn safe(&self) -> BlockHash {
        self.safe
    }

    /// The newest block at least [`Consensus::finalized_depth`]
    /// confirmations behind the head.
    pub fn finalized(&self) -> BlockHash {
        self.finalized
    }

    /// The score of `hash`, if it is in the tree.
    pub fn score(&self, hash: BlockHash) -> Option<Score> {
        self.scores.get(&hash).copied()
    }

    /// Whether `hash` has been scored.
    pub fn contains(&self, hash: BlockHash) -> bool {
        self.scores.contains_key(&hash)
    }

    /// Number of scored blocks, including the genesis.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True only for a freshly rooted tree... never: genesis is always in.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::ConsensusKind;

    fn h(n: u64) -> BlockHash {
        BlockHash::mix(n)
    }

    fn tree(kind: ConsensusKind) -> ForkChoiceTree {
        ForkChoiceTree::new(h(0), kind.build())
    }

    #[test]
    fn linear_inserts_move_the_head() {
        let mut t = tree(ConsensusKind::Heaviest);
        assert_eq!(t.head(), h(0));
        assert!(t.insert(h(1), h(0), 1, 0).unwrap());
        assert!(t.insert(h(2), h(1), 1, 0).unwrap());
        assert_eq!(t.head(), h(2));
        assert_eq!(t.score(h(2)), Some(2));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn unknown_parent_is_an_error() {
        let mut t = tree(ConsensusKind::Heaviest);
        assert_eq!(
            t.insert(h(5), h(99), 1, 0),
            Err(ForkChoiceError::UnknownParent {
                hash: h(5),
                parent: h(99)
            })
        );
        assert!(!t.contains(h(5)));
    }

    #[test]
    fn duplicate_is_an_error() {
        let mut t = tree(ConsensusKind::Heaviest);
        t.insert(h(1), h(0), 1, 0).unwrap();
        assert_eq!(
            t.insert(h(1), h(0), 1, 0),
            Err(ForkChoiceError::Duplicate(h(1)))
        );
        // Errors render usefully for expect-style callers.
        let msg = ForkChoiceError::Duplicate(h(1)).to_string();
        assert!(msg.contains("already in fork choice"), "{msg}");
    }

    #[test]
    fn heaviest_keeps_first_seen_on_ties() {
        let mut t = tree(ConsensusKind::Heaviest);
        assert!(t.insert(h(1), h(0), 1, 0).unwrap());
        // Equal-score sibling does not displace the head.
        assert!(!t.insert(h(2), h(0), 1, 0).unwrap());
        assert_eq!(t.head(), h(1));
    }

    #[test]
    fn hash_ordered_engines_are_insertion_order_independent() {
        for kind in [ConsensusKind::Longest, ConsensusKind::UncleGhost] {
            let mut a = tree(kind);
            a.insert(h(1), h(0), 1, 0).unwrap();
            a.insert(h(2), h(0), 1, 0).unwrap();
            let mut b = tree(kind);
            b.insert(h(2), h(0), 1, 0).unwrap();
            b.insert(h(1), h(0), 1, 0).unwrap();
            assert_eq!(a.head(), b.head(), "{kind}: head must not depend on order");
            assert_eq!(a.head(), h(1).max(h(2)));
        }
    }

    #[test]
    fn ghost_prefers_uncle_heavy_branches() {
        let mut t = tree(ConsensusKind::UncleGhost);
        // Branch A: two plain blocks. Branch B: one block citing two uncles.
        t.insert(h(1), h(0), 1, 0).unwrap();
        t.insert(h(2), h(1), 1, 0).unwrap();
        assert_eq!(t.head(), h(2));
        assert!(t.insert(h(3), h(0), 1, 2).unwrap());
        assert_eq!(t.head(), h(3));
        assert_eq!(t.score(h(3)), Some(3));
    }

    #[test]
    fn markers_trail_the_canonical_chain() {
        let mut t = tree(ConsensusKind::Heaviest);
        let chain: Vec<BlockHash> = (0..=14).map(h).collect();
        for w in chain.windows(2) {
            t.insert(w[1], w[0], 1, 0).unwrap();
        }
        // Short prefix: both markers saturate at genesis.
        t.update_markers(&chain[..4]);
        assert_eq!(t.safe(), h(0));
        assert_eq!(t.finalized(), h(0));
        // Full chain of height 14: safe = head-6, finalized = head-12.
        t.update_markers(&chain);
        assert_eq!(t.safe(), h(8));
        assert_eq!(t.finalized(), h(2));
        // Empty canonical slice is a no-op.
        t.update_markers(&[]);
        assert_eq!(t.safe(), h(8));
    }
}
