//! Reorg-depth analysis: `P(revert ≥ k)` versus the confirmation policy.
//!
//! The double-spend question behind every confirmation rule: a client
//! that accepts a transaction after `k` confirmations loses iff the block
//! carrying it is later reverted by a branch at least `k` deep. This
//! module measures that risk from ground truth — no estimator model, the
//! simulator knows exactly which blocks were abandoned and how deep the
//! branch on top of them grew.
//!
//! **Revert depth** of an abandoned block `b`: the height of the tallest
//! block in `b`'s (entirely non-canonical) subtree minus `b`'s height,
//! plus one — i.e. the maximum confirmation count a transaction in `b`
//! ever exhibited before the branch lost. A client on a `k`-confirmation
//! policy accepted from `b` iff `depth(b) ≥ k`.
//!
//! **At-risk set** for `k`: every block that ever reached `k`
//! confirmations — the abandoned blocks with `depth ≥ k` plus the
//! canonical blocks with at least `k` blocks on top (a chain of length
//! `N` has `N − k + 1` of those). Then
//!
//! ```text
//! P(revert ≥ k) = reverted_ge(k) / (reverted_ge(k) + canonical_ge(k))
//! ```
//!
//! the fraction of `k`-confirmed accept decisions that were later
//! reverted. Under attack scenarios (an eclipsed pool mining an island
//! chain that loses on release) the numerator grows with the eclipse
//! duration; the streaming [`Reorg`] reduction makes the curve cheap to
//! pool across campaign grids.

use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_types::{BlockHash, BlockNumber, FxHashMap};

use crate::Reduce;

/// Depths beyond this are clamped into the last bucket; the report
/// prints `k ∈ 1..=MAX_K`.
pub const MAX_K: usize = 12;

/// Internal histogram width (one spare bucket above [`MAX_K`] so the
/// clamp is visible as `≥`).
const BUCKETS: usize = MAX_K + 1;

/// One row of the `P(revert ≥ k)` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevertRow {
    /// The confirmation policy (accept after `k` confirmations).
    pub k: u32,
    /// Abandoned blocks whose branch reached depth `≥ k` (reverted
    /// `k`-confirmed accepts).
    pub reverted: u64,
    /// All blocks that ever reached `k` confirmations (reverted +
    /// canonical survivors).
    pub at_risk: u64,
    /// `reverted / at_risk` (0 when nothing was ever `k`-confirmed).
    pub p_revert: f64,
}

/// The reorg-depth report of one (or many merged) campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorgReport {
    /// `P(revert ≥ k)` rows for `k ∈ 1..=MAX_K`.
    pub rows: Vec<RevertRow>,
    /// Canonical blocks across the observed campaigns (genesis excluded).
    pub canonical_blocks: u64,
    /// Abandoned (non-canonical) blocks across the observed campaigns.
    pub abandoned_blocks: u64,
    /// The deepest revert observed (clamped at [`MAX_K`] `+ 1`).
    pub max_depth: u32,
    /// The engine's safe-confirmation depth (max across merged
    /// campaigns) — the `k` row a "safe" client reads.
    pub safe_depth: u64,
    /// The engine's finalized-confirmation depth (max across merged
    /// campaigns).
    pub finalized_depth: u64,
}

impl ReorgReport {
    /// `P(revert ≥ k)` for a policy `k`, 0.0 outside the table.
    pub fn p_revert(&self, k: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.k == k)
            .map_or(0.0, |r| r.p_revert)
    }

    /// Machine-readable form (schema `ethmeter-reorg/v1`), consumed by
    /// the CI dynamics-smoke gate.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"k\":{},\"reverted\":{},\"at_risk\":{},\"p_revert\":{}}}",
                    r.k, r.reverted, r.at_risk, r.p_revert
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"ethmeter-reorg/v1\",\"canonical_blocks\":{},\"abandoned_blocks\":{},\"max_depth\":{},\"safe_depth\":{},\"finalized_depth\":{},\"rows\":[{rows}]}}",
            self.canonical_blocks,
            self.abandoned_blocks,
            self.max_depth,
            self.safe_depth,
            self.finalized_depth
        )
    }
}

impl fmt::Display for ReorgReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Reorg depth: {} canonical, {} abandoned, deepest revert {}",
            self.canonical_blocks, self.abandoned_blocks, self.max_depth
        )?;
        writeln!(
            f,
            "{:>4} {:>10} {:>10} {:>12}",
            "k", "reverted", "at-risk", "P(revert>=k)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>4} {:>10} {:>10} {:>12.6}",
                r.k, r.reverted, r.at_risk, r.p_revert
            )?;
        }
        Ok(())
    }
}

/// Computes the reorg-depth table of one campaign.
pub fn analyze(data: &CampaignData) -> ReorgReport {
    let mut acc = Reorg::new();
    acc.observe(data);
    acc.finish()
}

/// Streaming reorg-depth reduction: integer tail counters only, so
/// merging is plain addition and trivially merge-tree independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reorg {
    /// `reverted_ge[k]` = abandoned blocks with revert depth `≥ k`
    /// (index 0 unused).
    reverted_ge: [u64; BUCKETS + 1],
    /// `at_risk_canonical_ge[k]` = canonical blocks that reached `≥ k`
    /// confirmations, summed per campaign at observe time (index 0
    /// unused).
    at_risk_canonical_ge: [u64; BUCKETS + 1],
    canonical: u64,
    abandoned: u64,
    max_depth: u32,
    /// Confirmation depths read from each campaign's consensus engine
    /// (merged by max; 0 until the first observe).
    safe_depth: u64,
    finalized_depth: u64,
}

impl Reorg {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Reorg {
            reverted_ge: [0; BUCKETS + 1],
            at_risk_canonical_ge: [0; BUCKETS + 1],
            canonical: 0,
            abandoned: 0,
            max_depth: 0,
            safe_depth: 0,
            finalized_depth: 0,
        }
    }
}

impl Default for Reorg {
    fn default() -> Self {
        Self::new()
    }
}

impl Reduce for Reorg {
    type Report = ReorgReport;

    fn observe(&mut self, data: &CampaignData) {
        let tree = &data.truth.tree;
        // Confirmation depths come from the campaign's consensus engine;
        // heterogeneous merges keep the most conservative (deepest) rule.
        self.safe_depth = self.safe_depth.max(tree.consensus().safe_depth());
        self.finalized_depth = self.finalized_depth.max(tree.consensus().finalized_depth());

        // Revert depths: every descendant of a non-canonical block is
        // itself non-canonical, so one height-descending sweep propagates
        // each subtree's max height to its root — by the time a block is
        // visited, all its children already carry their subtree maxima.
        // The sweep order is fully determined by `(height desc, hash)`,
        // independent of the tree's internal map order.
        let mut abandoned: Vec<(BlockNumber, BlockHash)> = tree
            .non_canonical_blocks()
            .map(|b| (b.number(), b.hash()))
            .collect();
        abandoned.sort_by_key(|&(n, h)| (std::cmp::Reverse(n), h));
        let mut subtree_max: FxHashMap<BlockHash, BlockNumber> = FxHashMap::default();
        for &(number, hash) in &abandoned {
            let mut max = number;
            for &child in tree.children_of(hash) {
                max = max.max(subtree_max[&child]);
            }
            subtree_max.insert(hash, max);
            let depth = (max - number + 1).min(BUCKETS as u64) as usize;
            for k in 1..=depth {
                self.reverted_ge[k] += 1;
            }
            self.max_depth = self.max_depth.max(depth as u32);
        }
        self.abandoned += abandoned.len() as u64;

        // Canonical survivors: a chain of length n has n − k + 1 blocks
        // with ≥ k confirmations (counting the block itself).
        let n = tree.head_number();
        self.canonical += n;
        for k in 1..=BUCKETS as u64 {
            if n >= k {
                self.at_risk_canonical_ge[k as usize] += n - k + 1;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for k in 0..=BUCKETS {
            self.reverted_ge[k] += other.reverted_ge[k];
            self.at_risk_canonical_ge[k] += other.at_risk_canonical_ge[k];
        }
        self.canonical += other.canonical;
        self.abandoned += other.abandoned;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.safe_depth = self.safe_depth.max(other.safe_depth);
        self.finalized_depth = self.finalized_depth.max(other.finalized_depth);
    }

    fn finish(self) -> ReorgReport {
        let rows = (1..=MAX_K as u32)
            .map(|k| {
                let reverted = self.reverted_ge[k as usize];
                let at_risk = reverted + self.at_risk_canonical_ge[k as usize];
                RevertRow {
                    k,
                    reverted,
                    at_risk,
                    p_revert: if at_risk == 0 {
                        0.0
                    } else {
                        reverted as f64 / at_risk as f64
                    },
                }
            })
            .collect();
        ReorgReport {
            rows,
            canonical_blocks: self.canonical,
            abandoned_blocks: self.abandoned,
            max_depth: self.max_depth,
            safe_depth: self.safe_depth,
            finalized_depth: self.finalized_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_types::PoolId;

    /// Main chain of 10 blocks by pool 0, plus a 3-deep losing branch by
    /// pool 1 rooted at height 4 (branch heights 4-5-6 on top of main
    /// block 3). Revert depths are exactly 3, 2, 1 for the branch blocks
    /// bottom-up.
    fn campaign_with_fork() -> CampaignData {
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        let mut hashes: Vec<BlockHash> = Vec::new();
        for i in 0..10u64 {
            let b = BlockBuilder::new(parent, i + 1, PoolId(0)).salt(i).build();
            parent = b.hash();
            hashes.push(parent);
            tree.insert(b).expect("main");
        }
        let mut fork_parent = hashes[2];
        for (j, h) in (4u64..=6).enumerate() {
            let b = BlockBuilder::new(fork_parent, h, PoolId(1))
                .salt(1000 + j as u64)
                .build();
            fork_parent = b.hash();
            tree.insert(b).expect("branch");
        }
        CampaignData {
            observers: vec![],
            truth: testutil::truth(tree, Default::default()),
        }
    }

    #[test]
    fn one_shot_equals_streamed_and_depths_are_exact() {
        let data = campaign_with_fork();
        let report = analyze(&data);
        assert_eq!(report.canonical_blocks, 10);
        assert_eq!(report.abandoned_blocks, 3);
        assert_eq!(report.max_depth, 3);
        // reverted_ge = [3, 2, 1, 0, ...]; canonical_ge(k) = 10 − k + 1.
        let expect = [(1u32, 3u64, 13u64), (2, 2, 11), (3, 1, 9), (4, 0, 7)];
        for (k, reverted, at_risk) in expect {
            let row = report.rows[(k - 1) as usize];
            assert_eq!((row.k, row.reverted, row.at_risk), (k, reverted, at_risk));
            assert!((row.p_revert - reverted as f64 / at_risk as f64).abs() < 1e-15);
        }
        let mut acc = Reorg::new();
        acc.observe(&data);
        assert_eq!(report, acc.finish());
    }

    #[test]
    fn merge_is_tree_independent() {
        let data = campaign_with_fork();
        let mut left = Reorg::new();
        left.observe(&data);
        left.observe(&data);
        left.observe(&data);
        let mut a = Reorg::new();
        a.observe(&data);
        let mut b = Reorg::new();
        b.observe(&data);
        let mut c = Reorg::new();
        c.observe(&data);
        // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c)) vs sequential observes.
        let mut ab = a.clone();
        ab.merge(b.clone());
        ab.merge(c.clone());
        let mut bc = b;
        bc.merge(c);
        let mut a_bc = a;
        a_bc.merge(bc);
        assert_eq!(left.finish(), ab.finish());
        let mut left2 = Reorg::new();
        left2.observe(&data);
        left2.observe(&data);
        left2.observe(&data);
        assert_eq!(left2.finish(), a_bc.finish());
    }

    #[test]
    fn json_carries_the_schema_and_rows() {
        let report = analyze(&campaign_with_fork());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"ethmeter-reorg/v1\""));
        assert!(json.contains("\"k\":1"));
        assert!(json.contains(&format!("\"k\":{MAX_K}")));
        assert!(json.contains("\"abandoned_blocks\":3"));
        // Confirmation depths of the default heaviest engine.
        assert!(json.contains("\"safe_depth\":6"));
        assert!(json.contains("\"finalized_depth\":12"));
    }
}
