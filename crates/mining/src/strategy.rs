//! Per-pool selfish-behavior strategy.

use ethmeter_chain::uncles::UnclePolicy;

/// The behavioral knobs of one mining pool.
///
/// A default strategy is perfectly honest; the paper's observed behaviors
/// are switched on per pool in the [`crate::pool::PoolDirectory`]
/// calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strategy {
    /// Probability that a won block is mined *empty* — the §III-C3
    /// behavior ("more than 25% of blocks mined by the Zhizu pool were
    /// empty"). Empty blocks skip transaction validation and propagate
    /// faster; the pool forfeits fees but keeps the (much larger) base
    /// reward.
    pub empty_block_prob: f64,
    /// Probability that, after winning a block, the pool keeps mining at
    /// the *same height* to produce a duplicate and harvest an uncle
    /// reward — the §III-C5 one-miner fork.
    pub duplicate_prob: f64,
    /// Probability that a successful duplicate is followed by yet another
    /// attempt (produces the observed triples).
    pub duplicate_again_prob: f64,
    /// Probability that a duplicate reuses the original transaction set
    /// ("in 56% of cases, mining pools appeared to be using their full
    /// mining power for mining distinct versions of the same block").
    pub duplicate_same_txset_prob: f64,
    /// Probability per won block of a pool malfunction/partition emitting
    /// a burst of same-height blocks (the observed 4-tuple and 7-tuple:
    /// "we believe that these were due to a mining pool partition or
    /// another pool malfunction").
    pub malfunction_prob: f64,
    /// Uncle-reference policy used when assembling blocks.
    pub uncle_policy: UnclePolicy,
}

impl Default for Strategy {
    /// An honest pool: no empty blocks, no duplicates, standard uncles.
    fn default() -> Self {
        Strategy {
            empty_block_prob: 0.0,
            duplicate_prob: 0.0,
            duplicate_again_prob: 0.0,
            duplicate_same_txset_prob: 0.56,
            malfunction_prob: 0.0,
            uncle_policy: UnclePolicy::Standard,
        }
    }
}

impl Strategy {
    /// An honest strategy (alias of `default`, for readability at call
    /// sites).
    pub fn honest() -> Self {
        Self::default()
    }

    /// Returns a copy with the given empty-block probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_empty_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.empty_block_prob = p;
        self
    }

    /// Returns a copy with the given one-miner-fork probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_duplicate_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.duplicate_prob = p;
        self
    }

    /// Returns a copy with the given malfunction probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_malfunction_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.malfunction_prob = p;
        self
    }

    /// Returns a copy with the given uncle policy (the §V ablation flips
    /// this to [`UnclePolicy::ForbidSameMinerHeight`]).
    pub fn with_uncle_policy(mut self, policy: UnclePolicy) -> Self {
        self.uncle_policy = policy;
        self
    }

    /// True if this strategy ever misbehaves.
    pub fn is_selfish(&self) -> bool {
        self.empty_block_prob > 0.0 || self.duplicate_prob > 0.0 || self.malfunction_prob > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        let s = Strategy::default();
        assert!(!s.is_selfish());
        assert_eq!(s, Strategy::honest());
        assert_eq!(s.uncle_policy, UnclePolicy::Standard);
    }

    #[test]
    fn builders_set_fields() {
        let s = Strategy::honest()
            .with_empty_prob(0.26)
            .with_duplicate_prob(0.01)
            .with_malfunction_prob(1e-5)
            .with_uncle_policy(UnclePolicy::ForbidSameMinerHeight);
        assert!(s.is_selfish());
        assert_eq!(s.empty_block_prob, 0.26);
        assert_eq!(s.duplicate_prob, 0.01);
        assert_eq!(s.uncle_policy, UnclePolicy::ForbidSameMinerHeight);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let _ = Strategy::honest().with_empty_prob(1.5);
    }
}
