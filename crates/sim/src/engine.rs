//! The simulation run loop.
//!
//! A [`World`] owns all simulation state and interprets events; the
//! [`Engine`] owns the clock and the event queue and drives the world until
//! a deadline, an event budget, or queue exhaustion.
//!
//! Handlers receive a [`Scheduler`] to enqueue follow-up events. The
//! scheduler enforces that time never flows backwards (an event may be
//! scheduled *at* the current instant, which models same-tick processing,
//! but never before it).

use crate::event::EventQueue;
use ethmeter_types::{SimDuration, SimTime};

/// Simulation state machine: owns entity state and interprets events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at simulated instant `now`, scheduling any
    /// follow-ups on `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Interface handed to [`World::handle`] for scheduling follow-up events.
///
/// Writes go straight into the engine's event queue — no staging buffer,
/// no post-handler drain — which both saves a copy of every scheduled
/// event and keeps the steady state allocation-free. FIFO sequencing is
/// unchanged: events receive their insertion sequence in scheduling
/// order, exactly the order a drained buffer would have produced.
#[derive(Debug)]
pub struct Scheduler<'q, E> {
    now: SimTime,
    queue: &'q mut EventQueue<E>,
}

impl<'q, E> Scheduler<'q, E> {
    /// Wraps the engine's queue for one handler invocation.
    fn new(now: SimTime, queue: &'q mut EventQueue<E>) -> Self {
        Scheduler { now, queue }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay` from now.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant: simulated time is
    /// monotonic. The message names the offending event, so a violation in
    /// a million-event campaign is attributable without a debugger.
    #[inline]
    pub fn at(&mut self, at: SimTime, event: E)
    where
        E: std::fmt::Debug,
    {
        assert!(
            at >= self.now,
            "cannot schedule {event:?} into the past ({at} < {now})",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` for immediate processing (same instant, after all
    /// events already queued for this instant).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// Outcome of an [`Engine`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the deadline.
    QueueExhausted,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was consumed.
    BudgetExhausted,
}

/// Discrete-event engine: clock + queue + world.
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero around `world`.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an event at an absolute instant (typically used for
    /// bootstrapping before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant.
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of currently pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The timestamp of the earliest pending event, or `None` if the
    /// queue is empty. Non-mutating — the parallel window loop calls this
    /// between every bounded window to compute the global next-event time
    /// without perturbing queue state.
    #[inline]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inject state between phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Rewinds the engine to time zero with an empty queue, keeping the
    /// world and the queue's heap/slab allocations. The caller is
    /// responsible for resetting the world itself (see
    /// [`Engine::world_mut`]); after that the pair behaves exactly like a
    /// freshly built engine, minus the allocations.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.now = SimTime::ZERO;
        self.processed = 0;
    }

    /// Runs until the queue drains or simulated time would exceed
    /// `deadline`. Events stamped exactly at `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_with_limits(deadline, u64::MAX)
    }

    /// Runs until the queue drains, `deadline` passes, or `max_events` have
    /// been processed — whichever comes first.
    pub fn run_with_limits(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let mut remaining = max_events;
        loop {
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::QueueExhausted,
                Some(t) if t > deadline => {
                    // Leave future events pending; advance clock to deadline
                    // so a subsequent run resumes cleanly.
                    self.now = deadline;
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    let (t, ev) = self.queue.pop().expect("peeked non-empty");
                    debug_assert!(t >= self.now, "event queue went backwards");
                    self.now = t;
                    let mut sched = Scheduler::new(t, &mut self.queue);
                    self.world.handle(t, ev, &mut sched);
                    self.processed += 1;
                    remaining -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records `(time, tag)` of every event it sees.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if self.respawn && ev < 5 {
                sched.after(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn processes_in_order_and_respawns() {
        let mut eng = Engine::new(Recorder {
            seen: vec![],
            respawn: true,
        });
        eng.schedule(SimTime::from_secs(0), 0);
        let outcome = eng.run_until(SimTime::from_secs(100));
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        let tags: Vec<u32> = eng.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(eng.processed(), 6);
        assert_eq!(eng.world().seen[5].0, SimTime::from_secs(5));
    }

    #[test]
    fn deadline_stops_and_resumes() {
        let mut eng = Engine::new(Recorder {
            seen: vec![],
            respawn: true,
        });
        eng.schedule(SimTime::from_secs(0), 0);
        let outcome = eng.run_until(SimTime::from_secs(2));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(eng.world().seen.len(), 3); // events at t=0,1,2
        assert_eq!(eng.now(), SimTime::from_secs(2));
        // Resume: the rest of the cascade continues.
        let outcome = eng.run_until(SimTime::from_secs(100));
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        assert_eq!(eng.world().seen.len(), 6);
    }

    #[test]
    fn event_budget() {
        let mut eng = Engine::new(Recorder {
            seen: vec![],
            respawn: true,
        });
        eng.schedule(SimTime::ZERO, 0);
        let outcome = eng.run_with_limits(SimTime::from_secs(100), 2);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(eng.world().seen.len(), 2);
    }

    #[test]
    fn same_instant_events_run_fifo() {
        struct SameTick {
            order: Vec<u32>,
        }
        impl World for SameTick {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev == 1 {
                    // Emit two same-instant follow-ups; they must run after
                    // already-queued event 2, in emission order.
                    sched.now_event(10);
                    sched.now_event(11);
                }
            }
        }
        let mut eng = Engine::new(SameTick { order: vec![] });
        eng.schedule(SimTime::from_secs(1), 1);
        eng.schedule(SimTime::from_secs(1), 2);
        eng.run_until(SimTime::from_secs(2));
        assert_eq!(eng.world().order, vec![1, 2, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.at(SimTime::from_nanos(now.as_nanos() - 1), ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule(SimTime::from_secs(1), ());
        eng.run_until(SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule Retarget { pool: 3 } into the past")]
    fn monotonicity_panic_names_the_event() {
        #[derive(Debug)]
        enum Ev {
            Tick,
            #[allow(dead_code)] // constructed only to violate monotonicity
            Retarget {
                pool: u16,
            },
        }
        struct Bad;
        impl World for Bad {
            type Event = Ev;
            fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
                sched.at(
                    SimTime::from_nanos(now.as_nanos() - 1),
                    Ev::Retarget { pool: 3 },
                );
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule(SimTime::from_secs(1), Ev::Tick);
        eng.run_until(SimTime::from_secs(2));
    }

    #[test]
    fn at_current_instant_is_allowed() {
        struct SameInstant {
            fired: bool,
        }
        impl World for SameInstant {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, sched: &mut Scheduler<u8>) {
                if ev == 0 {
                    // Scheduling *at* now models same-tick processing and
                    // must not trip the monotonicity assertion.
                    sched.at(now, 1);
                } else {
                    self.fired = true;
                }
            }
        }
        let mut eng = Engine::new(SameInstant { fired: false });
        eng.schedule(SimTime::from_secs(1), 0);
        eng.run_until(SimTime::from_secs(2));
        assert!(eng.world().fired);
    }

    #[test]
    fn next_event_time_tracks_the_queue_head() {
        let mut eng = Engine::new(Recorder {
            seen: vec![],
            respawn: false,
        });
        assert_eq!(eng.next_event_time(), None);
        eng.schedule(SimTime::from_secs(7), 1);
        eng.schedule(SimTime::from_secs(3), 2);
        assert_eq!(eng.next_event_time(), Some(SimTime::from_secs(3)));
        eng.run_until(SimTime::from_secs(5));
        assert_eq!(eng.next_event_time(), Some(SimTime::from_secs(7)));
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.next_event_time(), None);
    }

    #[test]
    fn world_accessors() {
        let mut eng = Engine::new(Recorder {
            seen: vec![],
            respawn: false,
        });
        eng.world_mut().seen.push((SimTime::ZERO, 99));
        assert_eq!(eng.world().seen.len(), 1);
        let w = eng.into_world();
        assert_eq!(w.seen[0].1, 99);
    }
}
