#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
set -euxo pipefail

cargo build --release
# Tier-1 is `cargo test -q` (the facade package); --workspace is a
# superset, so running it alone avoids compiling the facade suites twice.
cargo test --workspace -q
cargo check --workspace --benches --examples
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
