//! Cross-seed grid reports: aggregated results tables with structured
//! CSV/JSON export.
//!
//! A [`GridReport`] is what a results section prints: one row per
//! scenario-axis grid point, one [`Aggregate`] cell per declared column,
//! each cell condensing that column's per-run (per-seed) values into mean
//! ± stddev plus the percentile-of-percentiles spread. Produced by the
//! [`Scalars`](crate::metric::Scalars) metric; exported with
//! [`GridReport::to_csv`] / [`GridReport::to_json`] so EXPERIMENTS.md
//! tables come straight out of one grid run.

use std::fmt;

use ethmeter_measure::csv::escape_field;
use ethmeter_stats::table::Table;
use ethmeter_stats::{Aggregate, Summary};

use crate::grid::GridPoint;

/// One grid point's aggregated row.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// The scenario-axis coordinates this row aggregates over.
    pub point: GridPoint,
    /// One aggregate per report column, in column order.
    pub cells: Vec<Aggregate>,
}

/// A cross-seed results table over a whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridReport {
    /// Axis names, in declaration order (empty for an axis-less grid).
    pub axes: Vec<String>,
    /// Column (statistic) names, in declaration order.
    pub columns: Vec<String>,
    /// One row per grid point, in point order.
    pub rows: Vec<GridRow>,
}

impl GridReport {
    /// Builds a report from per-point, per-column run samples.
    ///
    /// Non-finite samples (a probe dividing by zero, say) are excluded
    /// from aggregation — each cell's `runs` counts only finite values —
    /// so one bad probe result cannot abort a completed grid at finish
    /// time.
    pub(crate) fn from_samples(
        columns: Vec<String>,
        points: Vec<(GridPoint, Vec<Vec<f64>>)>,
    ) -> Self {
        let axes = points
            .first()
            .map(|(p, _)| p.coords().iter().map(|(a, _)| a.clone()).collect())
            .unwrap_or_default();
        let rows = points
            .into_iter()
            .map(|(point, cols)| GridRow {
                point,
                cells: cols
                    .into_iter()
                    .map(|values| {
                        let finite = values.into_iter().filter(|v| v.is_finite());
                        Aggregate::from_summary(&Summary::from_values(finite))
                    })
                    .collect(),
            })
            .collect();
        GridReport {
            axes,
            columns,
            rows,
        }
    }

    /// The row of one grid point, if present.
    pub fn row(&self, point: &GridPoint) -> Option<&GridRow> {
        self.rows.iter().find(|r| &r.point == point)
    }

    /// Serializes the report as CSV: one header, one row per grid point.
    ///
    /// Axis-value and header fields are quoted when they contain commas,
    /// quotes, or newlines (RFC-4180 style, see
    /// [`ethmeter_measure::csv::escape_field`]); every statistic column
    /// expands to `<name>_runs`, `<name>_mean`, `<name>_sd`, `<name>_min`,
    /// `<name>_p50`, `<name>_p95`, `<name>_max`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for axis in &self.axes {
            out.push_str(&escape_field(axis));
            out.push(',');
        }
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            for (j, stat) in ["runs", "mean", "sd", "min", "p50", "p95", "max"]
                .iter()
                .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&escape_field(&format!("{col}_{stat}")));
            }
        }
        out.push('\n');
        for row in &self.rows {
            for (_, value) in row.point.coords() {
                out.push_str(&escape_field(value));
                out.push(',');
            }
            for (i, cell) in row.cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}",
                    cell.runs,
                    fmt_f64(cell.mean),
                    fmt_f64(cell.std_dev),
                    fmt_f64(cell.min),
                    fmt_f64(cell.p50),
                    fmt_f64(cell.p95),
                    fmt_f64(cell.max),
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the report as JSON (dependency-free, stable key order):
    /// `{"axes": [...], "columns": [...], "rows": [{"point": {...},
    /// "stats": {"<col>": {"runs": .., "mean": .., ...}}}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"axes\": [");
        push_json_str_list(&mut out, &self.axes);
        out.push_str("],\n  \"columns\": [");
        push_json_str_list(&mut out, &self.columns);
        out.push_str("],\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\"point\": {");
            for (j, (axis, value)) in row.point.coords().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(axis), json_str(value)));
            }
            out.push_str("}, \"stats\": {");
            for (j, (col, cell)) in self.columns.iter().zip(&row.cells).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{}: {{\"runs\": {}, \"mean\": {}, \"sd\": {}, \"min\": {}, \
                     \"p50\": {}, \"p95\": {}, \"max\": {}}}",
                    json_str(col),
                    cell.runs,
                    fmt_f64(cell.mean),
                    fmt_f64(cell.std_dev),
                    fmt_f64(cell.min),
                    fmt_f64(cell.p50),
                    fmt_f64(cell.p95),
                    fmt_f64(cell.max),
                ));
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for GridReport {
    /// Renders the paper-style text table: one row per grid point, each
    /// statistic shown as `mean ± sd`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers: Vec<String> = if self.axes.is_empty() {
            vec!["point".to_owned()]
        } else {
            self.axes.clone()
        };
        headers.push("runs".to_owned());
        headers.extend(self.columns.iter().cloned());
        let mut t = Table::new(headers);
        for row in &self.rows {
            let mut cells: Vec<String> = if self.axes.is_empty() {
                vec![row.point.to_string()]
            } else {
                row.point.coords().iter().map(|(_, v)| v.clone()).collect()
            };
            cells.push(row.cells.first().map_or(0, |c| c.runs).to_string());
            cells.extend(
                row.cells
                    .iter()
                    .map(|c| format!("{:.3} ± {:.3}", c.mean, c.std_dev)),
            );
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

/// Formats a float for CSV/JSON: finite shortest-roundtrip form.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 is shortest-roundtrip; always valid CSV/JSON.
        s
    } else {
        "null".to_owned()
    }
}

/// JSON string literal with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_json_str_list(out: &mut String, items: &[String]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> GridReport {
        let point = |rate: &str| GridPoint::from_coords([("tx_rate", rate)]);
        GridReport::from_samples(
            vec!["head".to_owned(), "forks".to_owned()],
            vec![
                (point("0.5"), vec![vec![10.0, 12.0], vec![1.0, 3.0]]),
                (point("2"), vec![vec![11.0, 13.0], vec![2.0, 2.0]]),
            ],
        )
    }

    #[test]
    fn csv_shape_and_values() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "tx_rate,head_runs,head_mean,head_sd,head_min,head_p50,head_p95,head_max,\
             forks_runs,forks_mean,forks_sd,forks_min,forks_p50,forks_p95,forks_max"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("0.5,2,11,1,10,10,12,12,"), "{row}");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn json_parses_by_eye_and_quotes_strings() {
        let json = sample_report().to_json();
        assert!(json.contains("\"axes\": [\"tx_rate\"]"));
        assert!(json.contains("\"columns\": [\"head\", \"forks\"]"));
        assert!(json.contains("{\"point\": {\"tx_rate\": \"0.5\"}"));
        assert!(json.contains("\"mean\": 11"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn display_renders_mean_pm_sd() {
        let text = sample_report().to_string();
        assert!(text.contains("tx_rate"));
        assert!(text.contains("11.000 ± 1.000"));
    }

    #[test]
    fn non_finite_samples_are_excluded_not_fatal() {
        let report = GridReport::from_samples(
            vec!["ratio".to_owned()],
            vec![(
                GridPoint::from_coords([("a", "1")]),
                vec![vec![2.0, f64::NAN, 4.0, f64::INFINITY]],
            )],
        );
        let cell = &report.rows[0].cells[0];
        assert_eq!(cell.runs, 2, "only finite samples aggregate");
        assert_eq!(cell.mean, 3.0);
        assert!(report.to_csv().contains("1,2,3"));
    }

    #[test]
    fn row_lookup_by_point() {
        let report = sample_report();
        let p = GridPoint::from_coords([("tx_rate", "2")]);
        assert_eq!(report.row(&p).unwrap().cells[0].mean, 12.0);
        let missing = GridPoint::from_coords([("tx_rate", "9")]);
        assert!(report.row(&missing).is_none());
    }
}
