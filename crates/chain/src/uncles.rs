//! Uncle validity and reference policies.
//!
//! Ethereum rewards "uncles" — valid blocks that lost a fork race — to
//! compensate miners for propagation unfairness. The paper shows the
//! mechanism is being gamed: "the uncle block rewarding system, which was
//! intentionally meant to help less powerful miners, is effectively helping
//! the most powerful mining pools to unethically profit from multiple
//! rewards, by mining multiple versions of the highest block in parallel"
//! (§III-C5). §V proposes forbidding uncles mined by a miner that already
//! mined the same-height main block; [`UnclePolicy::ForbidSameMinerHeight`]
//! implements that mitigation for the ablation experiment.

use ethmeter_types::{BlockHash, BlockNumber};

use crate::tree::BlockTree;

/// Maximum uncles one block may reference (yellow paper).
pub const MAX_UNCLES: usize = 2;

/// Maximum generation gap between an uncle and its nephew: an uncle's
/// height must satisfy `nephew.number - uncle.number <= MAX_UNCLE_DEPTH`.
pub const MAX_UNCLE_DEPTH: u64 = 6;

/// Which uncles a miner will reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnclePolicy {
    /// Standard Ethereum rules.
    #[default]
    Standard,
    /// The paper's §V mitigation: additionally reject an uncle whose miner
    /// also mined the canonical block at the uncle's height ("the Ethereum
    /// protocol should forbid referencing uncles mined by miners that have
    /// already mined a main block of the same height").
    ForbidSameMinerHeight,
}

/// Checks whether `uncle` may be referenced by a block extending `parent`
/// at height `parent.number + 1`, under Ethereum's rules:
///
/// 1. the uncle is known and is **not** an ancestor of the new block;
/// 2. the uncle's *parent* is an ancestor of the new block (so the uncle is
///    a "sibling branch" of length exactly one — this is what makes deeper
///    fork blocks structurally unreferenceable, Table III);
/// 3. the generation gap is at most [`MAX_UNCLE_DEPTH`];
/// 4. the uncle has not been referenced before (per the tree's records).
///
/// The optional `policy` adds the §V restriction.
pub fn is_valid_uncle(
    tree: &BlockTree,
    parent: BlockHash,
    uncle: BlockHash,
    policy: UnclePolicy,
) -> bool {
    let Some(u) = tree.get(uncle) else {
        return false;
    };
    let Some(p) = tree.get(parent) else {
        return false;
    };
    let new_number: BlockNumber = p.number() + 1;
    // Generation gap: 1 <= gap <= MAX_UNCLE_DEPTH.
    if u.number() >= new_number || new_number - u.number() > MAX_UNCLE_DEPTH {
        return false;
    }
    // Not already included.
    if tree.is_recognized_uncle(uncle) {
        return false;
    }
    // Not an ancestor of the new block.
    if tree.ancestor_at(parent, u.number()) == Some(uncle) {
        return false;
    }
    // The uncle's parent must be an ancestor of the new block.
    if tree.ancestor_at(parent, u.number().saturating_sub(1)) != Some(u.parent()) {
        return false;
    }
    if policy == UnclePolicy::ForbidSameMinerHeight {
        // Reject if the same miner produced the new block's chain at the
        // uncle's height.
        if let Some(main_at_height) = tree.ancestor_at(parent, u.number()) {
            if let Some(main) = tree.get(main_at_height) {
                if main.miner() == u.miner() {
                    return false;
                }
            }
        }
    }
    true
}

/// Selects up to [`MAX_UNCLES`] referenceable uncles for a block extending
/// `parent`, scanning the recent non-canonical blocks the local tree knows.
///
/// Candidates are ordered deepest-first (oldest uncles claim the smallest
/// reward, so real miners prefer recent ones — we order recent-first) and
/// ties broken by hash for determinism.
pub fn select_uncles(tree: &BlockTree, parent: BlockHash, policy: UnclePolicy) -> Vec<BlockHash> {
    let Some(p) = tree.get(parent) else {
        return Vec::new();
    };
    let new_number = p.number() + 1;
    let min_number = new_number.saturating_sub(MAX_UNCLE_DEPTH);
    let mut candidates: Vec<(BlockNumber, BlockHash)> = tree
        .non_canonical_blocks()
        .filter(|b| b.number() >= min_number && b.number() < new_number)
        .map(|b| (b.number(), b.hash()))
        .filter(|&(_, h)| is_valid_uncle(tree, parent, h, policy))
        .collect();
    // Recent first, then by hash for a stable order.
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates
        .into_iter()
        .take(MAX_UNCLES)
        .map(|(_, h)| h)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use ethmeter_types::PoolId;

    /// Builds: genesis -> a1 -> a2 -> ... (main, miner 0) with a fork block
    /// f1 (miner 1) competing with a1.
    fn forked_tree(main_len: u64) -> (BlockTree, Vec<BlockHash>, BlockHash) {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let mut main = Vec::new();
        let mut cur = g;
        for i in 0..main_len {
            let b = BlockBuilder::new(cur, i + 1, PoolId(0)).salt(i).build();
            cur = b.hash();
            main.push(cur);
            tree.insert(b).expect("ok");
        }
        let f1 = BlockBuilder::new(g, 1, PoolId(1)).salt(999).build();
        let f1h = f1.hash();
        tree.insert(f1).expect("ok");
        (tree, main, f1h)
    }

    #[test]
    fn sibling_fork_block_is_valid_uncle() {
        let (tree, main, f1) = forked_tree(1);
        assert!(is_valid_uncle(&tree, main[0], f1, UnclePolicy::Standard));
        let picked = select_uncles(&tree, main[0], UnclePolicy::Standard);
        assert_eq!(picked, vec![f1]);
    }

    #[test]
    fn ancestor_cannot_be_uncle() {
        let (tree, main, _) = forked_tree(3);
        assert!(!is_valid_uncle(
            &tree,
            main[2],
            main[1],
            UnclePolicy::Standard
        ));
    }

    #[test]
    fn depth_window_enforced() {
        // Fork at height 1, main chain grows: referencing from height 8
        // means gap 7 > 6 -> invalid.
        let (tree, main, f1) = forked_tree(7);
        // Parent = main[5] => new block number 7, gap = 6: valid.
        assert!(is_valid_uncle(&tree, main[5], f1, UnclePolicy::Standard));
        // Parent = main[6] => new block number 8, gap = 7: invalid.
        assert!(!is_valid_uncle(&tree, main[6], f1, UnclePolicy::Standard));
    }

    #[test]
    fn second_block_of_length_two_fork_is_structurally_invalid() {
        // This is the mechanism behind Table III's "0 recognized" for
        // length >= 2 forks.
        let (mut tree, main, f1) = forked_tree(3);
        let f2 = BlockBuilder::new(f1, 2, PoolId(1)).salt(1000).build();
        let f2h = f2.hash();
        tree.insert(f2).expect("ok");
        // f1's parent (genesis) is an ancestor of main -> f1 valid.
        assert!(is_valid_uncle(&tree, main[2], f1, UnclePolicy::Standard));
        // f2's parent (f1) is NOT an ancestor of main -> f2 invalid, at any
        // parent.
        for &p in &main {
            assert!(!is_valid_uncle(&tree, p, f2h, UnclePolicy::Standard));
        }
    }

    #[test]
    fn already_included_uncle_rejected() {
        let (mut tree, main, f1) = forked_tree(2);
        let nephew = BlockBuilder::new(main[1], 3, PoolId(0))
            .uncles(vec![f1])
            .salt(5)
            .build();
        let nh = nephew.hash();
        tree.insert(nephew).expect("ok");
        assert!(!is_valid_uncle(&tree, nh, f1, UnclePolicy::Standard));
        assert!(select_uncles(&tree, nh, UnclePolicy::Standard).is_empty());
    }

    #[test]
    fn unknown_blocks_are_invalid() {
        let (tree, main, _) = forked_tree(1);
        assert!(!is_valid_uncle(
            &tree,
            main[0],
            BlockHash(424242),
            UnclePolicy::Standard
        ));
        assert!(!is_valid_uncle(
            &tree,
            BlockHash(424242),
            main[0],
            UnclePolicy::Standard
        ));
    }

    #[test]
    fn forbid_same_miner_policy_blocks_one_miner_forks() {
        // Miner 0 mines both the canonical block at height 1 and a
        // competing block at height 1 (a one-miner fork).
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a1 = BlockBuilder::new(g, 1, PoolId(0)).salt(1).build();
        let a1h = a1.hash();
        tree.insert(a1).expect("ok");
        let dup = BlockBuilder::new(g, 1, PoolId(0)).salt(2).build();
        let duph = dup.hash();
        tree.insert(dup).expect("ok");

        // Standard Ethereum accepts the duplicate as an uncle...
        assert!(is_valid_uncle(&tree, a1h, duph, UnclePolicy::Standard));
        // ...the paper's mitigation rejects it.
        assert!(!is_valid_uncle(
            &tree,
            a1h,
            duph,
            UnclePolicy::ForbidSameMinerHeight
        ));
        // A different miner's fork block is still fine under the policy.
        let other = BlockBuilder::new(g, 1, PoolId(1)).salt(3).build();
        let otherh = other.hash();
        tree.insert(other).expect("ok");
        assert!(is_valid_uncle(
            &tree,
            a1h,
            otherh,
            UnclePolicy::ForbidSameMinerHeight
        ));
    }

    #[test]
    fn select_uncles_caps_at_two_and_prefers_recent() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        // Main chain of 3 (miner 0); forks at heights 1, 2, 3 (miner 1..3).
        let mut main = Vec::new();
        let mut cur = g;
        for i in 0..3u64 {
            let b = BlockBuilder::new(cur, i + 1, PoolId(0)).salt(i).build();
            cur = b.hash();
            main.push(cur);
            tree.insert(b).expect("ok");
        }
        let mut fork_hashes = Vec::new();
        for i in 0..3u64 {
            let parent = if i == 0 { g } else { main[(i - 1) as usize] };
            let f = BlockBuilder::new(parent, i + 1, PoolId(1 + i as u16))
                .salt(100 + i)
                .build();
            fork_hashes.push(f.hash());
            tree.insert(f).expect("ok");
        }
        let picked = select_uncles(&tree, main[2], UnclePolicy::Standard);
        assert_eq!(picked.len(), 2);
        // Most recent fork (height 3) must be picked first.
        assert_eq!(picked[0], fork_hashes[2]);
    }
}
