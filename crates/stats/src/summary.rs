//! Sample summaries: count, mean, standard deviation, extremes, quantiles.

use std::fmt;

/// Descriptive statistics of a finite sample.
///
/// Construction sorts a copy of the data once; quantile queries are then
/// O(1). Quantiles use the nearest-rank (inverted CDF) convention, matching
/// how the paper reports "the propagation delay of the 95% fastest blocks".
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Builds a summary from any collection of values.
    ///
    /// Non-finite values are rejected to keep downstream math meaningful.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "summary input must be finite"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len() as f64;
        let (mean, std_dev) = if sorted.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = sorted.iter().sum::<f64>() / n;
            let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            (mean, var.sqrt())
        };
        Summary {
            sorted,
            mean,
            std_dev,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for an empty sample).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest value.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty sample")
    }

    /// Largest value.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty sample")
    }

    /// The `q`-quantile for `q` in `[0, 1]`, nearest-rank convention.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The median (0.5 quantile).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly below `x` (0 for an empty sample).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Borrow the sorted sample (ascending).
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = Summary::from_values((1..=100).map(f64::from));
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(0.95), 95.0);
        assert_eq!(s.quantile(0.99), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn quantile_single_element() {
        let s = Summary::from_values([42.0]);
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(s.quantile(q), 42.0);
        }
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let s = Summary::from_values([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.fraction_below(1.0), 0.0);
        assert_eq!(s.fraction_below(2.0), 0.25);
        assert_eq!(s.fraction_below(2.5), 0.75);
        assert_eq!(s.fraction_below(10.0), 1.0);
    }

    #[test]
    fn empty_sample_behaviors() {
        let s = Summary::from_values(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction_below(1.0), 0.0);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Summary::from_values([1.0, f64::NAN]);
    }

    #[test]
    fn display_mentions_count() {
        let s = Summary::from_values([1.0, 2.0]);
        assert!(s.to_string().starts_with("n=2"));
    }
}
