//! Simulator-throughput benchmarks and the `BENCH_engine.json` report
//! (schema `ethmeter-bench-engine/v6`).
//!
//! Four jobs in one harness:
//!
//! 1. Classic criterion-style microbenches: end-to-end campaign
//!    execution, chain-only sequence generation (Figure 7 / §III-D's
//!    substrate), the exact run-length theory, and the event-queue
//!    push/pop hot path.
//! 2. An events/sec throughput survey over the `tiny`/`small`/`medium`
//!    presets, each with allocation metrics from a counting global
//!    allocator: allocations per event for a fresh run, for a
//!    reused-world run (the steady state the zero-allocation gossip path
//!    targets), and the peak heap growth of a campaign. Each preset also
//!    times the same campaign on the sharded parallel engine
//!    (`shards = 4`) and reports `par_speedup` — sequential wall over
//!    sharded wall, which only exceeds 1 when the host has the cores to
//!    back it (the report records `host_cores` for exactly that reason).
//! 3. A multi-seed sweep-throughput survey comparing reused-worker
//!    sweeps ([`ethmeter_core::sweep::Sweep`]'s default) against
//!    fresh-construction sweeps, quantifying what world reuse buys on
//!    the seed-grid workloads of EXPERIMENTS.md.
//! 4. A grid-scale memory survey: peak heap of a 256-run (64 in quick
//!    mode) single-threaded `Grid` under streaming metric collectors
//!    vs the retain-everything `RetainRuns` collector, each as a
//!    multiple of one campaign's own peak — the number that certifies
//!    "grid size bounded by CPU, not RAM".
//! 5. (v5) An out-of-core measurement survey: per preset, the observer
//!    logs' own high-water mark (`ObserverLog::peak_mem_bytes`) for the
//!    in-memory backend vs a spilled run under half that budget, with
//!    the ratio of spilled peak over budget — the number that certifies
//!    "measurement memory bounded by the budget, not the campaign".
//!    Plus a planet-preset spill smoke leg: 10,000 nodes measured under
//!    a fixed kilobyte-scale budget, fingerprint-checked against the
//!    same campaign in memory.
//! 6. (v6) A churn-heavy leg: the tiny campaign static vs under a
//!    10%-node-churn script, reporting events/sec for both and their
//!    ratio — the dynamics subsystem's hot-path cost (per-send dead-link
//!    checks plus park/re-dial work) in one number. The churn campaign
//!    is also fingerprint-asserted against its own 4-shard run, so the
//!    bench doubles as a sharded-determinism-under-dynamics check.
//!
//! The report embeds two frozen baselines measured on the reference
//! container: the seed implementation (pre-dense-rewrite) and the PR 2
//! dense-index hot path, so it always answers "how much faster than the
//! original — and than the previous PR — are we now?".
//!
//! Run `cargo bench -p ethmeter-bench --bench engine` for the full
//! survey, or append `-- --quick` for the CI smoke mode (seconds, not
//! minutes; same JSON schema, `"mode": "quick"`).

use criterion::Criterion;
use ethmeter_analysis::empty_blocks::EmptyBlocks;
use ethmeter_analysis::forks::Forks;
use ethmeter_analysis::propagation::Propagation;
use ethmeter_core::chainonly::{run_chain_only, ChainOnlyConfig};
use ethmeter_core::metric::{Analyze, RetainRuns, Scalars};
use ethmeter_core::sweep::Sweep;
use ethmeter_core::{run_campaign, CampaignRunner, Grid, Preset, Scenario};
use ethmeter_sim::event::EventQueue;
use ethmeter_stats::runs::{expected_maximal_runs, prob_run_at_least};
use ethmeter_stats::Cdf;
use ethmeter_types::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Seed-implementation events/sec (commit "golden determinism harness",
/// pre-dense-rewrite), measured in full mode on the reference container.
/// Frozen so every future report carries its own yardstick.
const SEED_BASELINE_EPS: [(&str, f64); 3] = [
    ("tiny", 1_425_095.0),
    ("small", 1_080_124.0),
    ("medium", 911_207.0),
];

/// PR 2 (dense interned indices) events/sec, frozen from the committed
/// `BENCH_engine.json` of that PR — the yardstick for this PR's
/// zero-allocation + calendar-queue + key-major-bitmap hot path.
const PR2_BASELINE_EPS: [(&str, f64); 3] = [
    ("tiny", 3_610_530.662),
    ("small", 2_986_817.635),
    ("medium", 2_223_301.054),
];

// ---------------------------------------------------------------------------
// Counting allocator: every heap operation in the process ticks these
// counters, which is what lets the report state allocations per simulated
// event — the metric the zero-allocation steady state is judged by.

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static HEAP_CURRENT: AtomicI64 = AtomicI64::new(0);
static HEAP_PEAK: AtomicI64 = AtomicI64::new(0);

#[inline]
fn track_alloc(bytes: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let cur = HEAP_CURRENT.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    HEAP_PEAK.fetch_max(cur, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        HEAP_CURRENT.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let delta = new_size as i64 - layout.size() as i64;
        let cur = HEAP_CURRENT.fetch_add(delta, Ordering::Relaxed) + delta;
        HEAP_PEAK.fetch_max(cur, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation counters over one measured region.
struct AllocDelta {
    allocs: u64,
    peak_growth_bytes: i64,
}

fn measure_allocs<R>(f: impl FnOnce() -> R) -> (R, AllocDelta) {
    let start_allocs = ALLOCS.load(Ordering::Relaxed);
    let start_heap = HEAP_CURRENT.load(Ordering::Relaxed);
    HEAP_PEAK.store(start_heap, Ordering::Relaxed);
    let out = f();
    let allocs = ALLOCS.load(Ordering::Relaxed) - start_allocs;
    let peak_growth_bytes = HEAP_PEAK.load(Ordering::Relaxed) - start_heap;
    (
        out,
        AllocDelta {
            allocs,
            peak_growth_bytes,
        },
    )
}

// ---------------------------------------------------------------------------

/// One preset's throughput + allocation measurement.
struct PresetThroughput {
    name: &'static str,
    sim_seconds: f64,
    events: u64,
    best_wall_seconds: f64,
    events_per_sec: f64,
    /// Allocations per event of a fresh `run_campaign` (world build
    /// included, amortized over the run).
    allocs_per_event: f64,
    /// Allocations per event of a reused-world run (`CampaignRunner`'s
    /// second run): the steady-state number the zero-allocation gossip
    /// path targets.
    steady_allocs_per_event: f64,
    /// Peak heap growth of one fresh campaign, bytes.
    alloc_peak_bytes: i64,
    /// Best wall-clock seconds of the same campaign on the sharded
    /// parallel engine (`shards = PAR_SHARDS`).
    par_wall_seconds: f64,
    /// Sequential wall / sharded wall. Scales with physical cores: on
    /// the single-core reference container this is the pure overhead
    /// ratio (< 1); with >= PAR_SHARDS cores it is the real speedup.
    par_speedup: f64,
    /// Observer-log high-water mark (sum of `peak_mem_bytes` across
    /// vantages) with the all-in-memory backend.
    measure_peak_bytes: usize,
    /// The campaign-wide spill budget of the out-of-core leg: half the
    /// in-memory peak, floored at 4 KiB.
    spill_budget_bytes: usize,
    /// Observer-log high-water mark of the same campaign spilled under
    /// `spill_budget_bytes` — live maps plus the per-segment key
    /// filters, which is why it can exceed the budget slightly.
    spill_measure_peak_bytes: usize,
    /// `spill_measure_peak_bytes / spill_budget_bytes`: the bounded-
    /// memory claim in one number.
    spill_over_budget: f64,
    /// Columnar segments flushed to disk across all vantages.
    spill_segments: usize,
}

/// Shard count of the parallel-engine leg of the preset survey.
const PAR_SHARDS: usize = 4;

fn measure_preset(
    name: &'static str,
    preset: Preset,
    duration: SimDuration,
    samples: u32,
) -> PresetThroughput {
    let scenario = Scenario::builder()
        .preset(preset)
        .seed(7)
        .duration(duration)
        .build();
    let mut events = 0;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let outcome = black_box(run_campaign(&scenario));
        let wall = start.elapsed().as_secs_f64();
        events = outcome.events;
        if wall < best {
            best = wall;
        }
    }
    // Parallel-engine pass: the identical campaign at PAR_SHARDS shards.
    // The fingerprint must match the sequential run (the determinism
    // contract); wall clock is whatever the hardware gives.
    let par_scenario = Scenario::builder()
        .preset(preset)
        .seed(7)
        .duration(duration)
        .shards(PAR_SHARDS)
        .build();
    let mut par_best = f64::INFINITY;
    let mut par_fp = 0u64;
    for _ in 0..samples {
        let start = Instant::now();
        let outcome = black_box(run_campaign(&par_scenario));
        let wall = start.elapsed().as_secs_f64();
        par_fp = outcome.campaign.fingerprint();
        if wall < par_best {
            par_best = wall;
        }
    }
    let seq_outcome = run_campaign(&scenario);
    let seq_fp = seq_outcome.campaign.fingerprint();
    assert_eq!(
        par_fp, seq_fp,
        "{name}: sharded fingerprint must match sequential"
    );
    // Out-of-core pass: the identical campaign with observer logs
    // spilled under half their in-memory high-water mark. The
    // fingerprint must again match (segments export identically); the
    // interesting numbers are the bounded peak and the segment count.
    let measure_peak_bytes: usize = seq_outcome
        .campaign
        .observers
        .iter()
        .map(|(_, log)| log.peak_mem_bytes())
        .sum();
    let spill_budget_bytes = (measure_peak_bytes / 2).max(4096);
    let spill_dir = std::env::temp_dir().join("ethmeter-bench-spill");
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");
    let spill_scenario = Scenario::builder()
        .preset(preset)
        .seed(7)
        .duration(duration)
        .spill_dir(spill_dir)
        .measure_budget(spill_budget_bytes)
        .build();
    let spill_outcome = run_campaign(&spill_scenario);
    assert_eq!(
        spill_outcome.campaign.fingerprint(),
        seq_fp,
        "{name}: spilled fingerprint must match in-memory"
    );
    let (spill_measure_peak_bytes, spill_segments) = spill_outcome
        .campaign
        .observers
        .iter()
        .fold((0usize, 0usize), |(peak, segs), (_, log)| {
            (peak + log.peak_mem_bytes(), segs + log.spilled_segments())
        });
    let spill_over_budget = spill_measure_peak_bytes as f64 / spill_budget_bytes as f64;
    drop(spill_outcome);
    // Allocation pass (separate from timing so counters don't share the
    // measured region with `Instant` bookkeeping).
    let (_, fresh) = measure_allocs(|| black_box(run_campaign(&scenario)));
    let mut runner = CampaignRunner::new();
    let _ = runner.run(&scenario); // populate the reusable world
    let (_, steady) = measure_allocs(|| black_box(runner.run(&scenario)));
    let eps = events as f64 / best;
    let allocs_per_event = fresh.allocs as f64 / events as f64;
    let steady_allocs_per_event = steady.allocs as f64 / events as f64;
    let par_speedup = best / par_best;
    println!(
        "  throughput/{name}: {events} events in {best:.3}s best-of-{samples} \
         ({eps:.0} events/sec, {allocs_per_event:.3} allocs/event fresh, \
         {steady_allocs_per_event:.3} reused, peak {:.1} MiB; \
         {PAR_SHARDS}-shard {par_best:.3}s => {par_speedup:.2}x; \
         measure {:.1} KiB in-memory vs {:.1} KiB spilled under {:.1} KiB \
         budget = {spill_over_budget:.2}x, {spill_segments} segments)",
        fresh.peak_growth_bytes as f64 / (1024.0 * 1024.0),
        measure_peak_bytes as f64 / 1024.0,
        spill_measure_peak_bytes as f64 / 1024.0,
        spill_budget_bytes as f64 / 1024.0,
    );
    PresetThroughput {
        name,
        sim_seconds: duration.as_secs_f64(),
        events,
        best_wall_seconds: best,
        events_per_sec: eps,
        allocs_per_event,
        steady_allocs_per_event,
        alloc_peak_bytes: fresh.peak_growth_bytes,
        par_wall_seconds: par_best,
        par_speedup,
        measure_peak_bytes,
        spill_budget_bytes,
        spill_measure_peak_bytes,
        spill_over_budget,
        spill_segments,
    }
}

/// The multi-seed sweep survey: reused workers vs fresh construction on
/// the same seed grid (identical outputs; the delta is pure wall clock).
struct SweepThroughput {
    preset: &'static str,
    seeds: usize,
    sim_seconds_per_job: f64,
    threads_used: usize,
    total_events: u64,
    reused_wall_seconds: f64,
    fresh_wall_seconds: f64,
    reused_events_per_sec: f64,
    fresh_events_per_sec: f64,
    reuse_speedup: f64,
}

fn measure_sweep(seeds: usize, duration: SimDuration, samples: u32) -> SweepThroughput {
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .duration(duration)
        .build();
    let time_sweep = |reuse: bool| -> (f64, u64, usize) {
        let mut best = f64::INFINITY;
        let mut events = 0;
        let mut threads = 0;
        for _ in 0..samples {
            let sweep = Sweep::new(base.clone())
                .seed_range(1, seeds)
                .threads(4)
                .reuse_workers(reuse);
            let start = Instant::now();
            let outcome = black_box(sweep.run());
            let wall = start.elapsed().as_secs_f64();
            events = outcome.events;
            threads = outcome.threads_used;
            if wall < best {
                best = wall;
            }
        }
        (best, events, threads)
    };
    let (fresh_wall, fresh_events, threads_used) = time_sweep(false);
    let (reused_wall, reused_events, _) = time_sweep(true);
    assert_eq!(
        fresh_events, reused_events,
        "reuse must not change sweep output"
    );
    let reused_eps = reused_events as f64 / reused_wall;
    let fresh_eps = fresh_events as f64 / fresh_wall;
    println!(
        "  sweep/tiny-x{seeds}: {reused_events} events; reused {reused_wall:.3}s \
         ({reused_eps:.0} ev/s) vs fresh {fresh_wall:.3}s ({fresh_eps:.0} ev/s) \
         => {:.3}x",
        reused_eps / fresh_eps
    );
    SweepThroughput {
        preset: "tiny",
        seeds,
        sim_seconds_per_job: duration.as_secs_f64(),
        threads_used,
        total_events: reused_events,
        reused_wall_seconds: reused_wall,
        fresh_wall_seconds: fresh_wall,
        reused_events_per_sec: reused_eps,
        fresh_events_per_sec: fresh_eps,
        reuse_speedup: reused_eps / fresh_eps,
    }
}

/// The grid-scale memory survey: peak heap growth of an N-run grid under
/// streaming collectors vs the retain-everything collector, against one
/// campaign's own peak.
///
/// Run single-threaded so the comparison is worker-count independent:
/// with streaming metrics the grid should peak at ~one campaign's
/// footprint (one reused world + compact per-run summaries), while
/// `RetainRuns` grows linearly with the run count.
struct GridMemory {
    runs: usize,
    sim_seconds_per_job: f64,
    single_run_peak_bytes: i64,
    streaming_peak_bytes: i64,
    retain_runs_peak_bytes: i64,
    streaming_over_single: f64,
    retain_over_single: f64,
}

fn measure_grid_memory(runs: usize, duration: SimDuration) -> GridMemory {
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(duration)
        .build();
    let (_, single) = measure_allocs(|| black_box(run_campaign(&base)));
    let grid = || Grid::new(base.clone()).seed_range(1, runs).threads(1);
    // A representative streaming stack: three full analysis reductions
    // plus a cross-seed scalar table.
    let streaming_metric = || {
        (
            Analyze::new(Propagation::new()),
            Analyze::new(Forks::new()),
            Analyze::new(EmptyBlocks::new(15)),
            Scalars::new()
                .column("head", |_, o| o.campaign.truth.tree.head_number() as f64)
                .column("events", |_, o| o.events as f64),
        )
    };
    let (_, streaming) = measure_allocs(|| black_box(grid().run(streaming_metric())));
    let (_, retain) = measure_allocs(|| black_box(grid().run(RetainRuns::new())));
    let single_peak = single.peak_growth_bytes.max(1);
    let streaming_over_single = streaming.peak_growth_bytes as f64 / single_peak as f64;
    let retain_over_single = retain.peak_growth_bytes as f64 / single_peak as f64;
    println!(
        "  grid/tiny-x{runs}: single-run peak {:.1} MiB; streaming grid {:.1} MiB \
         ({streaming_over_single:.2}x); RetainRuns grid {:.1} MiB ({retain_over_single:.2}x)",
        single.peak_growth_bytes as f64 / (1024.0 * 1024.0),
        streaming.peak_growth_bytes as f64 / (1024.0 * 1024.0),
        retain.peak_growth_bytes as f64 / (1024.0 * 1024.0),
    );
    GridMemory {
        runs,
        sim_seconds_per_job: duration.as_secs_f64(),
        single_run_peak_bytes: single.peak_growth_bytes,
        streaming_peak_bytes: streaming.peak_growth_bytes,
        retain_runs_peak_bytes: retain.peak_growth_bytes,
        streaming_over_single,
        retain_over_single,
    }
}

/// The planet-preset spill smoke: a 10,000-node campaign measured under
/// a fixed kilobyte-scale budget, fingerprint-checked against the same
/// campaign with all-in-memory logs. This is the "planet-scale
/// measurement" claim at bench scale: observer memory pinned by the
/// budget while the network is 25x the medium preset.
struct SpillSmoke {
    nodes: usize,
    sim_seconds: f64,
    events: u64,
    wall_seconds: f64,
    budget_bytes: usize,
    measure_peak_bytes: usize,
    spill_measure_peak_bytes: usize,
    spill_over_budget: f64,
    spill_segments: usize,
}

fn measure_spill_smoke(duration: SimDuration, budget_bytes: usize) -> SpillSmoke {
    let mem_scenario = Scenario::builder()
        .preset(Preset::Planet)
        .seed(7)
        .duration(duration)
        .build();
    let mem_outcome = run_campaign(&mem_scenario);
    let measure_peak_bytes: usize = mem_outcome
        .campaign
        .observers
        .iter()
        .map(|(_, log)| log.peak_mem_bytes())
        .sum();
    let mem_fp = mem_outcome.campaign.fingerprint();
    drop(mem_outcome);
    let spill_dir = std::env::temp_dir().join("ethmeter-bench-spill");
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");
    let scenario = Scenario::builder()
        .preset(Preset::Planet)
        .seed(7)
        .duration(duration)
        .spill_dir(spill_dir)
        .measure_budget(budget_bytes)
        .build();
    let start = Instant::now();
    let outcome = run_campaign(&scenario);
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome.campaign.fingerprint(),
        mem_fp,
        "planet: spilled fingerprint must match in-memory"
    );
    let (spill_measure_peak_bytes, spill_segments) = outcome
        .campaign
        .observers
        .iter()
        .fold((0usize, 0usize), |(peak, segs), (_, log)| {
            (peak + log.peak_mem_bytes(), segs + log.spilled_segments())
        });
    let spill_over_budget = spill_measure_peak_bytes as f64 / budget_bytes as f64;
    println!(
        "  spill/planet: {} nodes, {} events in {wall_seconds:.1}s; measure \
         {:.1} KiB in-memory vs {:.1} KiB spilled under {:.1} KiB budget \
         = {spill_over_budget:.2}x, {spill_segments} segments",
        scenario.ordinary_nodes,
        outcome.events,
        measure_peak_bytes as f64 / 1024.0,
        spill_measure_peak_bytes as f64 / 1024.0,
        budget_bytes as f64 / 1024.0,
    );
    SpillSmoke {
        nodes: scenario.ordinary_nodes,
        sim_seconds: duration.as_secs_f64(),
        events: outcome.events,
        wall_seconds,
        budget_bytes,
        measure_peak_bytes,
        spill_measure_peak_bytes,
        spill_over_budget,
        spill_segments,
    }
}

/// The churn survey: one tiny campaign static vs under 10% node churn.
///
/// The script takes 10% of the ordinary nodes down once each (random
/// offsets over the first 80% of the campaign, 30-second downtimes), so
/// the run exercises every dynamics hot-path cost at once: the per-send
/// dead-link check, link parking/re-dialing, and the replicated dynamics
/// events themselves. `churn_relative_throughput` is churn events/sec
/// over static events/sec — the "dynamics tax" on gossip throughput.
struct ChurnThroughput {
    sim_seconds: f64,
    churned_nodes: u32,
    fraction: f64,
    static_events: u64,
    static_wall_seconds: f64,
    static_events_per_sec: f64,
    churn_events: u64,
    churn_wall_seconds: f64,
    churn_events_per_sec: f64,
    churn_relative_throughput: f64,
}

fn measure_churn(duration: SimDuration, samples: u32) -> ChurnThroughput {
    const NODES: u32 = 60; // the tiny preset's ordinary-node count
    const FRACTION: f64 = 0.1;
    let static_scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(duration)
        .build();
    let script = ethmeter_core::dynamics::DynamicsScript::new().churn(
        7,
        NODES,
        FRACTION,
        SimTime::ZERO + SimDuration::from_secs(10),
        duration.mul_f64(0.8),
        SimDuration::from_secs(30),
    );
    let churned_nodes = ((f64::from(NODES) * FRACTION).round() as u32).min(NODES);
    let churn_scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(duration)
        .dynamics(script)
        .build();
    let time = |scenario: &Scenario| -> (f64, u64, u64) {
        let mut best = f64::INFINITY;
        let mut events = 0;
        let mut fp = 0;
        for _ in 0..samples {
            let start = Instant::now();
            let outcome = black_box(run_campaign(scenario));
            let wall = start.elapsed().as_secs_f64();
            events = outcome.events;
            fp = outcome.campaign.fingerprint();
            if wall < best {
                best = wall;
            }
        }
        (best, events, fp)
    };
    let (static_wall, static_events, _) = time(&static_scenario);
    let (churn_wall, churn_events, churn_fp) = time(&churn_scenario);
    // The determinism contract under dynamics: the same churn script on
    // the sharded engine must land on the identical campaign.
    let mut par_scenario = churn_scenario.clone();
    par_scenario.shards = PAR_SHARDS;
    assert_eq!(
        run_campaign(&par_scenario).campaign.fingerprint(),
        churn_fp,
        "churn: sharded fingerprint must match sequential"
    );
    let static_eps = static_events as f64 / static_wall;
    let churn_eps = churn_events as f64 / churn_wall;
    let relative = churn_eps / static_eps;
    println!(
        "  churn/tiny-{churned_nodes}of{NODES}: static {static_events} events \
         in {static_wall:.3}s ({static_eps:.0} ev/s) vs churn {churn_events} \
         events in {churn_wall:.3}s ({churn_eps:.0} ev/s) => {relative:.3}x"
    );
    ChurnThroughput {
        sim_seconds: duration.as_secs_f64(),
        churned_nodes,
        fraction: FRACTION,
        static_events,
        static_wall_seconds: static_wall,
        static_events_per_sec: static_eps,
        churn_events,
        churn_wall_seconds: churn_wall,
        churn_events_per_sec: churn_eps,
        churn_relative_throughput: relative,
    }
}

/// Event-queue microbench: ns per push+pop at a realistic pending-queue
/// depth, with campaign-like inter-event spacing (link delays spread over
/// hundreds of microseconds to tens of milliseconds) plus a share of
/// same-instant pushes to exercise the FIFO tie-break. The v1 suite used
/// nanosecond-clustered timestamps, which no simulated workload produces
/// and which a calendar queue intentionally does not optimize for; v2
/// numbers measure the spacing the engine actually sees.
fn measure_queue(samples: u32) -> f64 {
    const DEPTH: usize = 4_096;
    const OPS: usize = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut q = EventQueue::with_capacity(DEPTH);
        for i in 0..DEPTH {
            q.push(SimTime::from_nanos((i as u64 % 97) * 150_000), i as u64);
        }
        let start = Instant::now();
        for i in 0..OPS {
            let (t, _) = q.pop().expect("queue stays primed");
            // Delays 0.3–14 ms, like gossip hops; every 16th event lands
            // at the exact instant just popped (a same-tick follow-up).
            let delay = if i % 16 == 0 {
                0
            } else {
                300_000 + (i as u64 % 131) * 105_000
            };
            q.push(t + SimDuration::from_nanos(delay), i as u64);
        }
        let wall = start.elapsed().as_secs_f64();
        black_box(&q);
        let ns = wall * 1e9 / OPS as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("  queue/push_pop: {best:.1} ns per push+pop (depth {DEPTH})");
    best
}

fn classic_benches(c: &mut Criterion, quick: bool) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(if quick { 2 } else { 10 });

    // A 3-simulated-minute micro-campaign: measures end-to-end event
    // throughput (topology build + gossip + mining + analysis handoff).
    let micro = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(3))
        .build();
    g.bench_function("campaign_3min_60nodes", |b| {
        b.iter(|| black_box(run_campaign(&micro)))
    });

    // Figure 7's substrate: a paper-month of block winners.
    let month = ChainOnlyConfig::paper_month(1);
    g.bench_function("chain_only_201k_blocks", |b| {
        b.iter(|| black_box(run_chain_only(&month)))
    });

    // §III-D exact theory at paper scale.
    g.bench_function("prob_run_at_least_201k", |b| {
        b.iter(|| black_box(prob_run_at_least(201_086, 0.259, 12)))
    });
    g.bench_function("expected_maximal_runs", |b| {
        b.iter(|| black_box(expected_maximal_runs(201_086, 0.259, 8)))
    });

    // The sweep-reduction hot path: folding many per-campaign CDFs into
    // one. `merge_many` is a single k-way rebuild; the naive pairwise
    // loop it replaced re-sorted the accumulated vector once per
    // campaign (quadratic in total samples).
    let parts: Vec<Cdf> = (0..256)
        .map(|i| Cdf::from_values((0..64).map(|j| ((i * 64 + j) % 977) as f64)))
        .collect();
    g.bench_function("cdf_merge_many_256x64", |b| {
        b.iter(|| {
            let mut acc = Cdf::from_values(std::iter::empty());
            acc.merge_many(parts.iter());
            black_box(acc)
        })
    });
    g.finish();
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// The non-preset survey results, bundled for the report writer.
struct Surveys<'a> {
    sweep: &'a SweepThroughput,
    grid: &'a GridMemory,
    spill: &'a SpillSmoke,
    churn: &'a ChurnThroughput,
}

fn write_report(
    mode: &str,
    presets: &[PresetThroughput],
    surveys: &Surveys<'_>,
    queue_push_pop_ns: f64,
    criterion: &Criterion,
) -> String {
    let Surveys {
        sweep,
        grid,
        spill,
        churn,
    } = *surveys;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ethmeter-bench-engine/v6\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"par_shards\": {PAR_SHARDS},\n"));
    out.push_str("  \"baseline\": {\n");
    out.push_str(
        "    \"note\": \"frozen reference-container baselines: seed implementation (pre dense-state rewrite) and PR 2 (dense interned indices), full mode\",\n",
    );
    for (name, eps) in SEED_BASELINE_EPS.iter() {
        out.push_str(&format!(
            "    \"{name}_events_per_sec\": {},\n",
            json_f64(*eps)
        ));
    }
    for (i, (name, eps)) in PR2_BASELINE_EPS.iter().enumerate() {
        let comma = if i + 1 < PR2_BASELINE_EPS.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    \"pr2_{name}_events_per_sec\": {}{comma}\n",
            json_f64(*eps)
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (i, p) in presets.iter().enumerate() {
        let seed_base = SEED_BASELINE_EPS
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, e)| *e);
        let pr2_base = PR2_BASELINE_EPS
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, e)| *e);
        let speedup = seed_base.map_or(f64::NAN, |b| p.events_per_sec / b);
        let speedup_pr2 = pr2_base.map_or(f64::NAN, |b| p.events_per_sec / b);
        let comma = if i + 1 < presets.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_seconds\": {}, \"events\": {}, \
             \"best_wall_seconds\": {}, \"events_per_sec\": {}, \
             \"speedup_vs_baseline\": {}, \"speedup_vs_pr2\": {}, \
             \"allocs_per_event\": {}, \"steady_allocs_per_event\": {}, \
             \"alloc_peak_bytes\": {}, \"par_wall_seconds\": {}, \
             \"par_speedup\": {}, \"measure_peak_bytes\": {}, \
             \"spill_budget_bytes\": {}, \"spill_measure_peak_bytes\": {}, \
             \"spill_over_budget\": {}, \"spill_segments\": {}}}{comma}\n",
            p.name,
            json_f64(p.sim_seconds),
            p.events,
            json_f64(p.best_wall_seconds),
            json_f64(p.events_per_sec),
            json_f64(speedup),
            json_f64(speedup_pr2),
            json_f64(p.allocs_per_event),
            json_f64(p.steady_allocs_per_event),
            p.alloc_peak_bytes,
            json_f64(p.par_wall_seconds),
            json_f64(p.par_speedup),
            p.measure_peak_bytes,
            p.spill_budget_bytes,
            p.spill_measure_peak_bytes,
            json_f64(p.spill_over_budget),
            p.spill_segments,
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sweep\": {{\"preset\": \"{}\", \"seeds\": {}, \"sim_seconds_per_job\": {}, \
         \"threads_used\": {}, \"total_events\": {}, \"reused_wall_seconds\": {}, \
         \"fresh_wall_seconds\": {}, \"reused_events_per_sec\": {}, \
         \"fresh_events_per_sec\": {}, \"reuse_speedup\": {}}},\n",
        sweep.preset,
        sweep.seeds,
        json_f64(sweep.sim_seconds_per_job),
        sweep.threads_used,
        sweep.total_events,
        json_f64(sweep.reused_wall_seconds),
        json_f64(sweep.fresh_wall_seconds),
        json_f64(sweep.reused_events_per_sec),
        json_f64(sweep.fresh_events_per_sec),
        json_f64(sweep.reuse_speedup),
    ));
    out.push_str(&format!(
        "  \"grid\": {{\"preset\": \"tiny\", \"runs\": {}, \"sim_seconds_per_job\": {}, \
         \"single_run_peak_bytes\": {}, \"streaming_peak_bytes\": {}, \
         \"retain_runs_peak_bytes\": {}, \"streaming_over_single\": {}, \
         \"retain_over_single\": {}}},\n",
        grid.runs,
        json_f64(grid.sim_seconds_per_job),
        grid.single_run_peak_bytes,
        grid.streaming_peak_bytes,
        grid.retain_runs_peak_bytes,
        json_f64(grid.streaming_over_single),
        json_f64(grid.retain_over_single),
    ));
    out.push_str(&format!(
        "  \"spill_smoke\": {{\"preset\": \"planet\", \"nodes\": {}, \
         \"sim_seconds\": {}, \"events\": {}, \"wall_seconds\": {}, \
         \"budget_bytes\": {}, \"measure_peak_bytes\": {}, \
         \"spill_measure_peak_bytes\": {}, \"spill_over_budget\": {}, \
         \"spill_segments\": {}}},\n",
        spill.nodes,
        json_f64(spill.sim_seconds),
        spill.events,
        json_f64(spill.wall_seconds),
        spill.budget_bytes,
        spill.measure_peak_bytes,
        spill.spill_measure_peak_bytes,
        json_f64(spill.spill_over_budget),
        spill.spill_segments,
    ));
    out.push_str(&format!(
        "  \"churn\": {{\"preset\": \"tiny\", \"sim_seconds\": {}, \
         \"churned_nodes\": {}, \"fraction\": {}, \"static_events\": {}, \
         \"static_wall_seconds\": {}, \"static_events_per_sec\": {}, \
         \"churn_events\": {}, \"churn_wall_seconds\": {}, \
         \"churn_events_per_sec\": {}, \"churn_relative_throughput\": {}}},\n",
        json_f64(churn.sim_seconds),
        churn.churned_nodes,
        json_f64(churn.fraction),
        churn.static_events,
        json_f64(churn.static_wall_seconds),
        json_f64(churn.static_events_per_sec),
        churn.churn_events,
        json_f64(churn.churn_wall_seconds),
        json_f64(churn.churn_events_per_sec),
        json_f64(churn.churn_relative_throughput),
    ));
    out.push_str(&format!(
        "  \"queue_push_pop_ns\": {},\n",
        json_f64(queue_push_pop_ns)
    ));
    out.push_str("  \"microbenches\": [\n");
    let results = criterion.results();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{comma}\n",
            r.name,
            r.median.as_nanos(),
            r.samples
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("engine bench ({mode} mode)");

    let mut criterion = Criterion::default();
    classic_benches(&mut criterion, quick);

    println!("group: throughput");
    // Quick mode still takes best-of-3: a best-of-1 sub-100ms run on a
    // shared single-core host swings +/-25% with scheduler noise, which
    // is wider than the CI regression floor it feeds.
    let (samples, tiny_d, small_d, medium_d) = if quick {
        (
            3,
            SimDuration::from_mins(2),
            SimDuration::from_mins(2),
            SimDuration::from_mins(1),
        )
    } else {
        (
            5,
            SimDuration::from_mins(20),
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
        )
    };
    let presets = vec![
        measure_preset("tiny", Preset::Tiny, tiny_d, samples),
        measure_preset("small", Preset::Small, small_d, samples),
        measure_preset("medium", Preset::Medium, medium_d, samples),
    ];

    println!("group: sweep");
    let sweep = if quick {
        measure_sweep(6, SimDuration::from_mins(1), 1)
    } else {
        measure_sweep(16, SimDuration::from_mins(2), 3)
    };

    println!("group: grid memory");
    let grid = if quick {
        measure_grid_memory(64, SimDuration::from_mins(1))
    } else {
        measure_grid_memory(256, SimDuration::from_mins(2))
    };

    println!("group: spill smoke");
    let spill = if quick {
        measure_spill_smoke(SimDuration::from_mins(2), 64 << 10)
    } else {
        measure_spill_smoke(SimDuration::from_mins(10), 256 << 10)
    };

    println!("group: churn");
    let churn = if quick {
        measure_churn(SimDuration::from_mins(2), 3)
    } else {
        measure_churn(SimDuration::from_mins(20), 5)
    };

    println!("group: queue");
    let queue_ns = measure_queue(if quick { 1 } else { 5 });

    let report = write_report(
        mode,
        &presets,
        &Surveys {
            sweep: &sweep,
            grid: &grid,
            spill: &spill,
            churn: &churn,
        },
        queue_ns,
        &criterion,
    );
    // CARGO_MANIFEST_DIR = crates/bench; the report lives at the repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &report).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
