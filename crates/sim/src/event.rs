//! Time-ordered event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers events
//! in non-decreasing time order, breaking ties by insertion order (FIFO).
//! Deterministic tie-breaking is essential: two messages scheduled for the
//! same nanosecond must always be processed in the same order, or replays
//! diverge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ethmeter_types::SimTime;

/// An event queue ordered by `(time, insertion sequence)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2), 1);
        q.push(t(1), 2);
        q.push(t(2), 3);
        q.push(t(1), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }
}
