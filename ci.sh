#!/usr/bin/env bash
# Tier-1 verification, split into named, timed stages.
#
#   ./ci.sh                 run every stage
#   ./ci.sh <stage> [...]   run a subset (in the given order)
#   ./ci.sh --list          print the stage names
#
# Stages:
#   build        cargo build --release
#   test         debug workspace test suite (tier-1 superset)
#   golden       determinism fingerprints in --release (debug is covered
#                by `test`; a debug/release divergence must fail CI)
#   par-smoke    the sharded parallel engine in --release: shards=4 (and
#                2, 8) campaign fingerprints must equal the committed
#                sequential goldens bit-for-bit
#   lint         check --benches --examples, clippy -D warnings, fmt
#   detlint      workspace determinism lint (see DETERMINISM.md): must be
#                clean, and its JSON report must validate
#   bench-smoke  engine bench in --quick mode: schema-validated JSON,
#                the regression floor (speedup_vs_pr2 must stay within
#                0.7x of the committed BENCH_engine.json), the
#                out-of-core bound (spilled observer-log peak < 1.5x
#                budget, per preset and on the planet smoke leg), and
#                the v6 churn leg (throughput under a 10%-churn script)
#   dynamics-smoke  scripted network dynamics: partition and eclipse
#                campaigns must be fingerprint-identical at 2/4/8 shards
#                vs sequential, and `repro dynamics --json` must emit a
#                schema-valid ethmeter-reorg/v1 document that is
#                byte-identical between the sequential and 4-shard runs
#   repro-smoke  `repro table3`, the selfish-threshold grid, and the
#                spilled decentralization scalars on tiny presets:
#                non-empty, schema-valid output
#   consensus-smoke  the pluggable fork choice: trait-conformance and
#                engine-law tests (unit + integration, the latter pins
#                the explicit-heaviest goldens in --release), plus
#                `repro forkchoice --json` on a pinned tiny scenario —
#                schema-valid ethmeter-forkchoice/v1 with distinct
#                heads across engines
#
# Each stage is timed; a summary table is printed at the end (and on
# failure, which names the failed stage instead of dumping trace noise).
set -euo pipefail
cd "$(dirname "$0")"

STAGES=(build test golden par-smoke lint detlint bench-smoke dynamics-smoke repro-smoke consensus-smoke)

stage_build() {
    cargo build --release
}

stage_test() {
    # Tier-1 is `cargo test -q` (the facade package); --workspace is a
    # superset, so running it alone avoids compiling the facade suites
    # twice.
    cargo test --workspace -q
}

stage_golden() {
    # Golden determinism fingerprints must hold in BOTH profiles: a
    # float/ordering divergence between debug and --release would
    # silently split "tested behavior" from "benchmarked behavior". The
    # debug run is covered by the workspace suite; re-run in release.
    cargo test --release --test golden -q
}

stage_par_smoke() {
    # The sharded engine's determinism contract: at 2/4/8 shards the
    # campaign fingerprint must be bit-identical to the committed
    # sequential goldens. Release profile, like the goldens themselves —
    # a debug-only equivalence would not cover benchmarked behavior.
    cargo test --release --test golden -q \
        sharded_campaigns_match_the_sequential_goldens
}

stage_lint() {
    cargo check --workspace --benches --examples
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check
}

stage_detlint() {
    # The determinism policy (DETERMINISM.md) is a hard gate: the text
    # run prints any diagnostics for the log, then the JSON report is
    # schema-validated and must carry zero diagnostics and a written
    # reason on every allowed site.
    cargo run -q -p ethmeter-detlint -- check
    local report
    report="$(mktemp)"
    cargo run -q -p ethmeter-detlint -- check --format json > "$report"
    test "$(jq -r .schema "$report")" = "ethmeter-detlint/v1"
    jq -e '.files_scanned > 50' "$report" > /dev/null
    jq -e '.diagnostics | length == 0' "$report" > /dev/null
    jq -e '[.allowed[] | (.reason | length > 0)] | all' "$report" > /dev/null \
    || { echo "detlint: allowed site without a written reason" >&2
         jq '.allowed' "$report" >&2
         rm -f "$report"
         return 1; }
    rm -f "$report"
}

stage_bench_smoke() {
    # The engine suite must complete in --quick mode and emit well-formed
    # JSON. The quick run overwrites BENCH_engine.json, so save the
    # tree's report (whether committed or freshly regenerated) and
    # restore it afterwards — CI must never leave smoke-mode numbers
    # behind.
    local saved_report=""
    if [ -f BENCH_engine.json ]; then
        saved_report="$(mktemp)"
        cp BENCH_engine.json "$saved_report"
        # Restore on EVERY exit path — a failed schema check below must
        # not leave smoke-mode numbers (or a stray tempfile) behind.
        # (Stages run in their own bash process, so EXIT fires per stage.)
        trap "mv '$saved_report' BENCH_engine.json" EXIT
    fi
    cargo bench -p ethmeter-bench --bench engine -- --quick
    test "$(jq -r .schema BENCH_engine.json)" = "ethmeter-bench-engine/v6"
    jq -e '.presets | length == 3' BENCH_engine.json > /dev/null
    # v6 addition: the churn leg — throughput measured under a 10%-churn
    # script next to the static baseline, with a real ratio between them.
    jq -e '.churn | .preset == "tiny" and .churned_nodes >= 1
                    and .static_events > 0 and .churn_events > 0
                    and (.static_events_per_sec > 0)
                    and (.churn_relative_throughput > 0)' \
        BENCH_engine.json > /dev/null
    # v5 additions: the out-of-core measurement survey — every preset
    # must carry both backends' observer-log peaks and a spilled peak
    # bounded by ~1.5x its budget, and the planet smoke leg must have
    # actually spilled segments while staying within the same bound.
    jq -e '.presets | all(has("measure_peak_bytes") and has("spill_budget_bytes")
                          and has("spill_measure_peak_bytes") and has("spill_segments")
                          and (.spill_over_budget < 1.5))' \
        BENCH_engine.json > /dev/null
    jq -e '.spill_smoke | .preset == "planet" and .nodes >= 10000
                          and .spill_segments > 0 and (.spill_over_budget < 1.5)
                          and .measure_peak_bytes > .budget_bytes' \
        BENCH_engine.json > /dev/null
    # v4 additions: the sharded parallel-engine leg — every preset must
    # carry a measured par_speedup (sequential wall / 4-shard wall; > 1
    # only when host_cores backs it), and the report must say how many
    # cores and shards produced it.
    jq -e '.host_cores >= 1 and .par_shards >= 2' BENCH_engine.json > /dev/null
    jq -e '.presets | all(has("par_wall_seconds") and (.par_speedup > 0))' \
        BENCH_engine.json > /dev/null
    # v2 additions: per-preset counting-allocator metrics, PR-over-PR
    # baselines, and the multi-seed sweep-throughput survey.
    jq -e '.presets | all(has("allocs_per_event") and has("steady_allocs_per_event")
                          and has("alloc_peak_bytes") and has("speedup_vs_pr2"))' \
        BENCH_engine.json > /dev/null
    jq -e '.baseline | has("pr2_small_events_per_sec")' BENCH_engine.json > /dev/null
    jq -e '.sweep | has("reused_events_per_sec") and has("fresh_events_per_sec")
                    and has("reuse_speedup") and has("seeds") and has("threads_used")' \
        BENCH_engine.json > /dev/null
    # v3 addition: the grid-scale memory survey — streaming metric
    # collectors must keep a multi-run grid's peak heap near one
    # campaign's footprint, while the retain-everything collector grows
    # with the run count.
    jq -e '.grid | has("runs") and has("single_run_peak_bytes")
                   and has("streaming_peak_bytes") and has("retain_runs_peak_bytes")
                   and has("streaming_over_single") and has("retain_over_single")' \
        BENCH_engine.json > /dev/null
    jq -e '.grid.runs >= 64' BENCH_engine.json > /dev/null
    jq -e '.grid.streaming_over_single < .grid.retain_over_single' BENCH_engine.json > /dev/null
    # Regression floor: the freshly measured speedup_vs_pr2 of every
    # preset must stay within 0.7x of the committed report's value (the
    # committed numbers are re-captured alongside intentional perf
    # changes; see README "Benchmarks"). 0.7 and not tighter because the
    # comparison is structurally asymmetric: the committed report is
    # captured in *full* mode on an idle host, while this smoke stage
    # runs in --quick mode (short, startup-dominated runs) on a shared
    # single-core container, where identical code measures 10-30% lower
    # depending on neighbor load. A real regression in the simulation
    # core (an accidental quadratic path, debug checks in release)
    # still trips the gate.
    if [ -n "$saved_report" ]; then
        jq -e --slurpfile base "$saved_report" '
            [ .presets[] as $p
              | [ $base[0].presets[] | select(.name == $p.name) ][0] as $b
              | if $b == null then true
                else $p.speedup_vs_pr2 >= 0.7 * $b.speedup_vs_pr2 end
            ] | all' BENCH_engine.json > /dev/null \
        || { echo "bench floor violated: speedup_vs_pr2 dropped below 0.7x the committed baseline" >&2
             jq '[.presets[] | {name, speedup_vs_pr2}]' BENCH_engine.json >&2
             jq '[.presets[] | {name, committed: .speedup_vs_pr2}]' "$saved_report" >&2
             return 1; }
    fi
}

stage_dynamics_smoke() {
    # Scripted network dynamics must not break the sharded determinism
    # contract: the partition and eclipse integration tests pin the
    # 2/4/8-shard fingerprints against the sequential reference.
    # (one positional filter; it matches both the partition and the
    # eclipse test)
    cargo test --release --test dynamics -q \
        script_fingerprint_is_shard_invariant
    # The reorg-depth CLI: a schema-valid ethmeter-reorg/v1 document with
    # the full k ∈ 1..=12 tail, byte-identical between the sequential and
    # the 4-shard run of the same eclipse campaign.
    cargo build --release -p ethmeter-bench --bin repro
    local seq_json par_json
    seq_json="$(mktemp)"
    par_json="$(mktemp)"
    ./target/release/repro dynamics --preset tiny --seed 7 --json \
        > "$seq_json" 2> /dev/null
    ./target/release/repro dynamics --preset tiny --seed 7 --shards 4 --json \
        > "$par_json" 2> /dev/null
    jq -e '
        .schema == "ethmeter-reorg/v1"
        and .canonical_blocks > 0
        and (.rows | length == 12)
        and ([.rows[].k] == [range(1; 13)])
        and ([.rows[] | .p_revert >= 0 and .p_revert <= 1] | all)
        and ([.rows[].reverted] == ([.rows[].reverted] | sort | reverse))' \
        "$seq_json" > /dev/null \
    || { echo "reorg JSON failed schema validation:" >&2
         cat "$seq_json" >&2
         rm -f "$seq_json" "$par_json"
         return 1; }
    cmp -s "$seq_json" "$par_json" \
    || { echo "dynamics: 4-shard reorg document differs from sequential" >&2
         diff "$seq_json" "$par_json" >&2 || true
         rm -f "$seq_json" "$par_json"
         return 1; }
    rm -f "$seq_json" "$par_json"
}

stage_repro_smoke() {
    # The reproduction CLI must produce real output on a tiny preset:
    # a non-empty Table III and a schema-valid selfish-threshold surface
    # whose gain grid matches the declared axes.
    cargo build --release -p ethmeter-bench --bin repro
    local table3
    table3="$(./target/release/repro table3 --preset tiny --seed 7 2> /dev/null)"
    [ -n "$table3" ] || { echo "repro table3 produced no output" >&2; return 1; }
    grep -q "Table III" <<< "$table3" || { echo "repro table3 output malformed" >&2; return 1; }
    local selfish_json
    selfish_json="$(mktemp)"
    ./target/release/repro selfish --preset tiny --seed 7 --json > "$selfish_json" 2> /dev/null
    jq -e '
        (.alphas | length) as $a | (.gammas | length) as $g |
        .schema == "ethmeter-selfish-threshold/v1"
        and $a >= 2 and $g >= 2
        and (.gain | length == $g)
        and ([.gain[] | length == $a] | all)
        and ([.gain[][] | (. > 0 and . < 10)] | all)
        and (.thresholds | length == $g)' \
        "$selfish_json" > /dev/null \
    || { echo "selfish-threshold JSON failed schema validation:" >&2
         cat "$selfish_json" >&2
         rm -f "$selfish_json"
         return 1; }
    rm -f "$selfish_json"
    # The decentralization scalars, computed out-of-core: a spilled
    # tiny campaign must emit a schema-valid report with every axis in
    # range (Gini in [0,1), HHI in (0,1], Nakamoto >= 1).
    local dec_json spill_dir
    dec_json="$(mktemp)"
    spill_dir="$(mktemp -d)"
    ./target/release/repro decentralization --preset tiny --seed 7 --json \
        --spill-dir "$spill_dir" --budget 65536 > "$dec_json" 2> /dev/null
    jq -e '
        .schema == "ethmeter-decentralization/v1" and .blocks > 0
        and ([.hash_power, .block_production, .first_observation, .revenue]
             | all(.n >= 1 and .nakamoto >= 1
                   and .gini >= 0 and .gini < 1
                   and .hhi > 0 and .hhi <= 1))' \
        "$dec_json" > /dev/null \
    || { echo "decentralization JSON failed schema validation:" >&2
         cat "$dec_json" >&2
         rm -rf "$dec_json" "$spill_dir"
         return 1; }
    rm -rf "$dec_json" "$spill_dir"
}

stage_consensus_smoke() {
    # The consensus trait's laws: engine conformance at the unit level,
    # then the integration suite — explicit-heaviest campaigns must land
    # on the pinned goldens (sequential and 2/4/8 shards) and the
    # hash-ordered engines must be arrival-order independent. Release
    # profile: the debug run is covered by the workspace suite.
    cargo test -q -p ethmeter-chain consensus
    cargo test -q -p ethmeter-chain forkchoice
    cargo test --release --test consensus -q
    # The fork-choice comparison CLI on a pinned scenario: heaviest,
    # longest, and uncle-weighted GHOST must each report a head, and at
    # least two engines must disagree (tiny seed 11 splits all three).
    cargo build --release -p ethmeter-bench --bin repro
    local fc_json
    fc_json="$(mktemp)"
    ./target/release/repro forkchoice --preset tiny --seed 11 --json \
        > "$fc_json" 2> /dev/null
    jq -e '
        .schema == "ethmeter-forkchoice/v1"
        and .preset == "tiny" and .seed == 11
        and (.engines | length == 3)
        and ([.engines[].name] == ["heaviest", "longest", "uncle-ghost"])
        and ([.engines[] | .head_number > 0
              and (.head | startswith("0x"))
              and (.safe | startswith("0x"))
              and (.finalized | startswith("0x"))] | all)
        and .distinct_heads == true' \
        "$fc_json" > /dev/null \
    || { echo "forkchoice JSON failed schema validation:" >&2
         cat "$fc_json" >&2
         rm -f "$fc_json"
         return 1; }
    rm -f "$fc_json"
}

# --- driver -----------------------------------------------------------------

stage_known() {
    local s
    for s in "${STAGES[@]}"; do
        [ "$s" = "$1" ] && return 0
    done
    return 1
}

run_stages() {
    local results=() failed=""
    local stage rc t0 t1
    for stage in "$@"; do
        echo "==> stage: $stage"
        t0=$SECONDS
        rc=0
        # Run the stage in a child bash with its own errexit: calling the
        # function directly as `stage_x || rc=$?` would put its whole body
        # in an AND-OR context where bash *ignores* `set -e` (even inside
        # a subshell), silently swallowing every failure but the last
        # command's. A separate process is the only airtight form.
        export -f "stage_${stage//-/_}"
        bash -ec "set -uo pipefail; stage_${stage//-/_}" || rc=$?
        t1=$SECONDS
        if [ "$rc" -eq 0 ]; then
            results+=("$(printf '%-12s  %-4s  %4ss' "$stage" ok "$((t1 - t0))")")
        else
            results+=("$(printf '%-12s  %-4s  %4ss' "$stage" FAIL "$((t1 - t0))")")
            failed="$stage"
            break
        fi
    done
    echo
    echo "stage         status  time"
    echo "---------------------------"
    local line
    for line in "${results[@]}"; do
        echo "$line"
    done
    if [ -n "$failed" ]; then
        echo
        echo "ci.sh: stage '$failed' failed" >&2
        return 1
    fi
}

main() {
    if [ "${1:-}" = "--list" ]; then
        printf '%s\n' "${STAGES[@]}"
        return 0
    fi
    local requested=("$@")
    if [ "${#requested[@]}" -eq 0 ]; then
        requested=("${STAGES[@]}")
    fi
    local s
    for s in "${requested[@]}"; do
        if ! stage_known "$s"; then
            echo "ci.sh: unknown stage '$s' (try: ${STAGES[*]})" >&2
            return 2
        fi
    done
    run_stages "${requested[@]}"
}

main "$@"
