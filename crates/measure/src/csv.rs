//! Dataset export/import in a stable CSV dialect.
//!
//! The paper publishes its measurement dataset; this module is our
//! equivalent. The format is deliberately plain (no quoting needed — all
//! fields are numeric or controlled identifiers) so it round-trips exactly
//! and loads into pandas with one call, like the original tooling.

use std::fmt::Write as _;
use std::num::ParseIntError;

use ethmeter_types::{BlockHash, NodeId, SimTime, TxId};

use crate::log::{BlockMsgKind, BlockRecord, ObserverLog, TxRecord};

/// Errors raised when parsing a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A row had the wrong number of fields.
    BadShape {
        /// 1-based line number.
        line: usize,
        /// Expected field count.
        expected: usize,
        /// Found field count.
        got: usize,
    },
    /// A field failed to parse as an integer.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// An unknown message-kind tag.
    BadKind {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadShape {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            ParseError::BadField { line, field } => {
                write!(f, "line {line}: invalid integer in field '{field}'")
            }
            ParseError::BadKind { line } => write!(f, "line {line}: unknown message kind"),
        }
    }
}

impl std::error::Error for ParseError {}

const BLOCK_HEADER: &str =
    "hash,first_local_ns,first_true_ns,first_kind,first_from,announces,full_blocks";
const TX_HEADER: &str = "tx,first_local_ns,first_true_ns,from,arrival_seq";

/// Quotes one CSV field when (and only when) it needs it, RFC-4180 style:
/// a field containing a comma, double quote, or line break is wrapped in
/// double quotes, with embedded quotes doubled. Everything else passes
/// through unchanged, so the numeric dataset columns above stay plain.
///
/// The observer-log exports never need this (all fields are numeric or
/// controlled identifiers); it exists for free-text fields in derived
/// reports — grid axis labels, pool names — so those exports stay
/// loadable by standard CSV parsers.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Inverts [`escape_field`]: strips RFC-4180 quoting if present.
///
/// # Errors
///
/// Returns `None` when the field is malformed (unbalanced quoting, or a
/// lone `"` inside a quoted field).
pub fn unescape_field(field: &str) -> Option<String> {
    let Some(inner) = field.strip_prefix('"') else {
        // Unquoted fields may not contain quotes or separators.
        if field.contains(['"', ',', '\n', '\r']) {
            return None;
        }
        return Some(field.to_owned());
    };
    let inner = inner.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            // Must be a doubled quote.
            if chars.next() != Some('"') {
                return None;
            }
        }
        out.push(c);
    }
    Some(out)
}

fn kind_tag(kind: BlockMsgKind) -> &'static str {
    match kind {
        BlockMsgKind::Announce => "ann",
        BlockMsgKind::FullBlock => "blk",
    }
}

/// Serializes an observer's block records (sorted by first true time, ties
/// by hash, so exports are deterministic). Reads through
/// [`ObserverLog::scan_blocks`], so spilled and in-memory logs export the
/// identical text (and therefore the identical campaign fingerprint).
pub fn blocks_to_csv(log: &ObserverLog) -> String {
    let mut rows: Vec<BlockRecord> = log.scan_blocks().collect();
    rows.sort_by_key(|r| (r.first_true, r.hash));
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(BLOCK_HEADER);
    out.push('\n');
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.hash.raw(),
            r.first_local.as_nanos(),
            r.first_true.as_nanos(),
            kind_tag(r.first_kind),
            r.first_from.raw(),
            r.announces,
            r.full_blocks
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Serializes an observer's transaction records (sorted by arrival seq).
/// Reads through [`ObserverLog::scan_txs`] — see [`blocks_to_csv`].
pub fn txs_to_csv(log: &ObserverLog) -> String {
    let mut rows: Vec<TxRecord> = log.scan_txs().collect();
    rows.sort_by_key(|r| r.arrival_seq);
    let mut out = String::with_capacity(48 * (rows.len() + 1));
    out.push_str(TX_HEADER);
    out.push('\n');
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{}",
            r.id.raw(),
            r.first_local.as_nanos(),
            r.first_true.as_nanos(),
            r.from.raw(),
            r.arrival_seq
        )
        .expect("writing to String cannot fail");
    }
    out
}

fn parse_u64(s: &str, line: usize, field: &'static str) -> Result<u64, ParseError> {
    s.parse::<u64>()
        .map_err(|_: ParseIntError| ParseError::BadField { line, field })
}

/// Parses a block-record CSV produced by [`blocks_to_csv`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed row.
pub fn blocks_from_csv(text: &str) -> Result<Vec<BlockRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, row) in text.lines().enumerate() {
        if i == 0 || row.is_empty() {
            continue;
        }
        let line = i + 1;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 7 {
            return Err(ParseError::BadShape {
                line,
                expected: 7,
                got: fields.len(),
            });
        }
        let kind = match fields[3] {
            "ann" => BlockMsgKind::Announce,
            "blk" => BlockMsgKind::FullBlock,
            _ => return Err(ParseError::BadKind { line }),
        };
        out.push(BlockRecord {
            hash: BlockHash(parse_u64(fields[0], line, "hash")?),
            first_local: SimTime::from_nanos(parse_u64(fields[1], line, "first_local_ns")?),
            first_true: SimTime::from_nanos(parse_u64(fields[2], line, "first_true_ns")?),
            first_kind: kind,
            first_from: NodeId(parse_u64(fields[4], line, "first_from")? as u32),
            announces: parse_u64(fields[5], line, "announces")? as u32,
            full_blocks: parse_u64(fields[6], line, "full_blocks")? as u32,
        });
    }
    Ok(out)
}

/// Parses a transaction-record CSV produced by [`txs_to_csv`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed row.
pub fn txs_from_csv(text: &str) -> Result<Vec<TxRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, row) in text.lines().enumerate() {
        if i == 0 || row.is_empty() {
            continue;
        }
        let line = i + 1;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 5 {
            return Err(ParseError::BadShape {
                line,
                expected: 5,
                got: fields.len(),
            });
        }
        out.push(TxRecord {
            id: TxId(parse_u64(fields[0], line, "tx")?),
            first_local: SimTime::from_nanos(parse_u64(fields[1], line, "first_local_ns")?),
            first_true: SimTime::from_nanos(parse_u64(fields[2], line, "first_true_ns")?),
            from: NodeId(parse_u64(fields[3], line, "from")? as u32),
            arrival_seq: parse_u64(fields[4], line, "arrival_seq")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ObserverLog {
        let mut log = ObserverLog::new();
        log.record_block_msg(
            BlockHash(11),
            BlockMsgKind::FullBlock,
            NodeId(3),
            SimTime::from_nanos(1_500),
            SimTime::from_nanos(1_000),
        );
        log.record_block_msg(
            BlockHash(11),
            BlockMsgKind::Announce,
            NodeId(4),
            SimTime::from_nanos(2_500),
            SimTime::from_nanos(2_000),
        );
        log.record_block_msg(
            BlockHash(7),
            BlockMsgKind::Announce,
            NodeId(5),
            SimTime::from_nanos(900),
            SimTime::from_nanos(800),
        );
        log.record_tx(
            TxId(42),
            NodeId(1),
            SimTime::from_nanos(10),
            SimTime::from_nanos(12),
        );
        log.record_tx(
            TxId(43),
            NodeId(2),
            SimTime::from_nanos(20),
            SimTime::from_nanos(22),
        );
        log
    }

    #[test]
    fn block_csv_round_trip() {
        let log = sample_log();
        let csv = blocks_to_csv(&log);
        let parsed = blocks_from_csv(&csv).expect("round trip");
        assert_eq!(parsed.len(), 2);
        // Sorted by first_true: block 7 first.
        assert_eq!(parsed[0].hash, BlockHash(7));
        assert_eq!(parsed[1].hash, BlockHash(11));
        assert_eq!(parsed[1].announces, 1);
        assert_eq!(parsed[1].full_blocks, 1);
        assert_eq!(parsed[1].first_kind, BlockMsgKind::FullBlock);
        // Serialization is deterministic: byte-identical on re-export.
        assert_eq!(csv, blocks_to_csv(&log));
    }

    #[test]
    fn tx_csv_round_trip() {
        let log = sample_log();
        let csv = txs_to_csv(&log);
        let parsed = txs_from_csv(&csv).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, TxId(42));
        assert_eq!(parsed[0].arrival_seq, 0);
        assert_eq!(parsed[1].id, TxId(43));
    }

    #[test]
    fn parse_errors_are_precise() {
        let bad_shape = "hash,first_local_ns,first_true_ns,first_kind,first_from,announces,full_blocks\n1,2,3\n";
        match blocks_from_csv(bad_shape) {
            Err(ParseError::BadShape {
                line: 2, got: 3, ..
            }) => {}
            other => panic!("{other:?}"),
        }
        let bad_kind = format!("{BLOCK_HEADER}\n1,2,3,zzz,4,5,6\n");
        assert_eq!(
            blocks_from_csv(&bad_kind),
            Err(ParseError::BadKind { line: 2 })
        );
        let bad_field = format!("{TX_HEADER}\nxx,2,3,4,5\n");
        match txs_from_csv(&bad_field) {
            Err(ParseError::BadField {
                line: 2,
                field: "tx",
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_logs_serialize_headers_only() {
        let log = ObserverLog::new();
        assert_eq!(blocks_to_csv(&log).lines().count(), 1);
        assert_eq!(txs_to_csv(&log).lines().count(), 1);
        assert!(blocks_from_csv(&blocks_to_csv(&log))
            .expect("ok")
            .is_empty());
    }

    #[test]
    fn error_display() {
        let e = ParseError::BadShape {
            line: 3,
            expected: 7,
            got: 2,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseError::BadField {
            line: 4,
            field: "tx"
        }
        .to_string()
        .contains("'tx'"));
        assert!(ParseError::BadKind { line: 5 }
            .to_string()
            .contains("line 5"));
    }

    #[test]
    fn every_block_field_reports_its_own_parse_error() {
        let fields = [
            "hash",
            "first_local_ns",
            "first_true_ns",
            // index 3 is the kind tag -> BadKind, covered below
            "first_from",
            "announces",
            "full_blocks",
        ];
        for (i, field) in (0..7).filter(|&i| i != 3).zip(fields) {
            let mut row: Vec<&str> = vec!["1", "2", "3", "ann", "4", "5", "6"];
            row[i] = "not-a-number";
            let text = format!("{BLOCK_HEADER}\n{}\n", row.join(","));
            assert_eq!(
                blocks_from_csv(&text),
                Err(ParseError::BadField { line: 2, field }),
                "field {i}"
            );
        }
        for (i, field) in (0..5).zip([
            "tx",
            "first_local_ns",
            "first_true_ns",
            "from",
            "arrival_seq",
        ]) {
            let mut row: Vec<&str> = vec!["1", "2", "3", "4", "5"];
            row[i] = "-9";
            let text = format!("{TX_HEADER}\n{}\n", row.join(","));
            assert_eq!(
                txs_from_csv(&text),
                Err(ParseError::BadField { line: 2, field }),
                "field {i}"
            );
        }
        // Shape errors win over field errors and report the found arity.
        assert_eq!(
            txs_from_csv(&format!("{TX_HEADER}\n1,2,3,4,5,6\n")),
            Err(ParseError::BadShape {
                line: 2,
                expected: 5,
                got: 6
            })
        );
    }

    #[test]
    fn field_escaping_round_trips() {
        for s in [
            "",
            "plain",
            "with,comma",
            "with\"quote",
            "\"fully,quoted\"",
            "line\nbreak",
            "tx_rate=0.5,gateways=\"eu\"",
        ] {
            let escaped = escape_field(s);
            assert_eq!(unescape_field(&escaped).as_deref(), Some(s), "{s:?}");
            // Escaped fields never contain a bare separator outside quotes.
            if escaped.contains(',') {
                assert!(escaped.starts_with('"') && escaped.ends_with('"'));
            }
        }
        assert_eq!(escape_field("plain"), "plain", "no gratuitous quoting");
        // Malformed quoting is rejected, not mis-parsed.
        assert_eq!(unescape_field("\"unterminated"), None);
        assert_eq!(unescape_field("\"lone\"quote\""), None);
        assert_eq!(unescape_field("bare,comma"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds an observer log from generated block/tx event tuples,
    /// stressing duplicate hashes (reception counters), kind mixes, and
    /// extreme timestamps.
    fn build_log(
        block_events: &[(u64, u8, u32, u64, u64)],
        tx_events: &[(u64, u32, u64, u64)],
    ) -> ObserverLog {
        let mut log = ObserverLog::new();
        for &(hash, kind, from, local, true_t) in block_events {
            // Bias a share of events onto few hashes so announce/full
            // counters exceed 1, and include u64::MAX-ish edge times.
            let kind = if kind % 2 == 0 {
                BlockMsgKind::Announce
            } else {
                BlockMsgKind::FullBlock
            };
            log.record_block_msg(
                BlockHash(hash % 7 + 1),
                kind,
                NodeId(from),
                SimTime::from_nanos(local),
                SimTime::from_nanos(true_t),
            );
        }
        for &(id, from, local, true_t) in tx_events {
            log.record_tx(
                TxId(id),
                NodeId(from),
                SimTime::from_nanos(local),
                SimTime::from_nanos(true_t),
            );
        }
        log
    }

    proptest! {
        /// blocks_to_csv -> blocks_from_csv is lossless for arbitrary
        /// logs: the parsed rows equal the log's records in export order.
        #[test]
        fn block_csv_round_trips(
            events in proptest::collection::vec(
                (0u64..u64::MAX, 0u8..4, 0u32..1000, 0u64..u64::MAX, 0u64..u64::MAX),
                0..40,
            ),
        ) {
            let log = build_log(&events, &[]);
            let csv = blocks_to_csv(&log);
            let parsed = blocks_from_csv(&csv).expect("well-formed export");
            let mut expected: Vec<BlockRecord> = log.blocks().copied().collect();
            expected.sort_by_key(|r| (r.first_true, r.hash));
            prop_assert_eq!(parsed, expected);
            // Re-export is byte-identical (deterministic serialization).
            let relog = build_log(&events, &[]);
            prop_assert_eq!(csv, blocks_to_csv(&relog));
        }

        /// txs_to_csv -> txs_from_csv is lossless and order-preserving.
        #[test]
        fn tx_csv_round_trips(
            events in proptest::collection::vec(
                (0u64..u64::MAX, 0u32..1000, 0u64..u64::MAX, 0u64..u64::MAX),
                0..40,
            ),
        ) {
            let log = build_log(&[], &events);
            let csv = txs_to_csv(&log);
            let parsed = txs_from_csv(&csv).expect("well-formed export");
            let mut expected: Vec<TxRecord> = log.txs().copied().collect();
            expected.sort_by_key(|r| r.arrival_seq);
            prop_assert_eq!(parsed, expected);
        }

        /// escape_field/unescape_field round-trip arbitrary label text,
        /// including embedded quotes, commas, and control characters.
        #[test]
        fn field_escaping_round_trips_arbitrary_text(
            chars in proptest::collection::vec(0u8..128, 0..24),
        ) {
            let s: String = chars
                .iter()
                .map(|&b| match b % 8 {
                    0 => ',',
                    1 => '"',
                    2 => '\n',
                    _ => char::from(b'a' + (b % 26)),
                })
                .collect();
            let escaped = escape_field(&s);
            prop_assert_eq!(unescape_field(&escaped), Some(s));
        }
    }
}
