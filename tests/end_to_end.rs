//! End-to-end integration tests: full campaigns through the public facade.

use ethmeter::analysis::{commit, first_observation, propagation, redundancy};
use ethmeter::measure::csv;
use ethmeter::prelude::*;

fn tiny_campaign(seed: u64) -> CampaignData {
    let scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(seed)
        .duration(SimDuration::from_mins(10))
        .build();
    run_campaign(&scenario).campaign
}

#[test]
fn campaign_is_bit_reproducible() {
    let a = tiny_campaign(123);
    let b = tiny_campaign(123);
    assert_eq!(a.truth.tree.head(), b.truth.tree.head());
    assert_eq!(a.truth.tree.len(), b.truth.tree.len());
    assert_eq!(a.truth.txs.len(), b.truth.txs.len());
    // Observer logs identical via their canonical CSV serialization.
    for (oa, ob) in a.observers.iter().zip(b.observers.iter()) {
        assert_eq!(oa.0.name, ob.0.name);
        assert_eq!(csv::blocks_to_csv(&oa.1), csv::blocks_to_csv(&ob.1));
        assert_eq!(csv::txs_to_csv(&oa.1), csv::txs_to_csv(&ob.1));
    }
}

#[test]
fn different_seeds_diverge() {
    let a = tiny_campaign(1);
    let b = tiny_campaign(2);
    assert_ne!(a.truth.tree.head(), b.truth.tree.head());
}

#[test]
fn observers_see_ground_truth_blocks_only() {
    let data = tiny_campaign(9);
    for (v, log) in &data.observers {
        for rec in log.blocks() {
            assert!(
                data.truth.tree.contains(rec.hash),
                "observer {} logged unknown block {}",
                v.name,
                rec.hash
            );
        }
        for rec in log.txs() {
            assert!(
                data.truth.txs.contains_key(&rec.id),
                "observer {} logged unknown tx {}",
                v.name,
                rec.id
            );
        }
    }
}

#[test]
fn main_observers_achieve_high_block_coverage() {
    let data = tiny_campaign(5);
    let produced = data.truth.tree.len() as f64 - 1.0; // minus genesis
    for (v, log) in data.main_observers() {
        let coverage = log.block_count() as f64 / produced;
        assert!(
            coverage > 0.9,
            "observer {} saw only {:.0}% of blocks",
            v.name,
            coverage * 100.0
        );
    }
}

#[test]
fn canonical_blocks_only_contain_known_txs_in_order() {
    let data = tiny_campaign(11);
    let mut seen = std::collections::HashSet::new();
    let mut next_nonce: std::collections::HashMap<_, u64> = Default::default();
    for block in data.truth.tree.canonical_blocks() {
        for txid in block.txs() {
            assert!(seen.insert(*txid), "tx {txid} committed twice");
            let tx = &data.truth.txs[txid];
            let expected = next_nonce.entry(tx.sender).or_insert(0);
            assert_eq!(
                tx.nonce, *expected,
                "sender {} nonce gap in canonical chain",
                tx.sender
            );
            *expected += 1;
        }
    }
}

#[test]
fn csv_round_trips_on_real_logs() {
    let data = tiny_campaign(3);
    let (_, log) = &data.observers[0];
    let blocks = csv::blocks_from_csv(&csv::blocks_to_csv(log)).expect("valid block csv");
    assert_eq!(blocks.len(), log.block_count());
    let txs = csv::txs_from_csv(&csv::txs_to_csv(log)).expect("valid tx csv");
    assert_eq!(txs.len(), log.tx_count());
}

#[test]
fn analyzers_run_on_any_seed() {
    for seed in [21, 22] {
        let data = tiny_campaign(seed);
        let fig1 = propagation::analyze(&data);
        assert!(fig1.blocks_measured > 0);
        let fig2 = first_observation::geo(&data);
        let total: f64 = fig2.per_vantage.iter().map(|(_, s, _)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(redundancy::analyze(&data).is_ok());
        let fig4 = commit::analyze(&data);
        assert!(fig4.txs_measured > 0);
    }
}
