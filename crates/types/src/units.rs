//! Data-size, bandwidth, and gas units.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::time::SimDuration;

/// A size in bytes (message payloads, block bodies, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// The zero size.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A link bandwidth in bits per second.
///
/// Used to compute the serialization delay of a message:
/// `transfer_time = size / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero: a zero-bandwidth link would stall the
    /// simulation forever.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        assert!(mbps > 0, "bandwidth must be positive");
        Bandwidth(mbps * 1_000_000)
    }

    /// Creates a bandwidth from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Time to serialize `size` onto this link.
    #[inline]
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        // nanos = bytes * 8 * 1e9 / bits_per_sec. Real message sizes keep
        // the numerator well inside u64 (the hot path: one u64 divide, not
        // the ~3× slower u128 `__udivti3`); the u128 widening survives only
        // as the overflow fallback for multi-gigabyte payloads. Both paths
        // compute the identical quotient.
        let bytes = size.as_bytes();
        let nanos = match bytes.checked_mul(8_000_000_000) {
            Some(num) => num / self.0,
            None => ((bytes as u128 * 8 * 1_000_000_000) / self.0 as u128) as u64,
        };
        SimDuration::from_nanos(nanos)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbps", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1e6)
        }
    }
}

/// EVM gas, the unit of block capacity.
///
/// The simulator does not execute contracts; gas only bounds how many
/// transactions fit in a block (the paper's "blocks are ~80% full").
pub type Gas = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(2).as_bytes(), 2048);
        assert_eq!(
            ByteSize::from_bytes(7) + ByteSize::from_bytes(3),
            ByteSize(10)
        );
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = Bandwidth::from_mbps(100);
        let t1 = bw.transfer_time(ByteSize::from_bytes(125_000)); // 1 Mbit
        assert_eq!(t1, SimDuration::from_millis(10));
        let t2 = bw.transfer_time(ByteSize::from_bytes(250_000));
        assert_eq!(t2, SimDuration::from_millis(20));
    }

    #[test]
    fn gigabit_link_is_fast() {
        let bw = Bandwidth::from_gbps(10);
        // 25 KiB block on a 10 Gbps backbone: ~20 microseconds.
        let t = bw.transfer_time(ByteSize::from_kib(25));
        assert!(t < SimDuration::from_micros(25), "got {t}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(25).to_string(), "25.00KiB");
        assert_eq!(Bandwidth::from_mbps(100).to_string(), "100.0Mbps");
        assert_eq!(Bandwidth::from_gbps(8).to_string(), "8.0Gbps");
    }
}
