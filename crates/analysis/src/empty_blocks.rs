//! Figure 6: empty blocks per mining pool.
//!
//! "We measure the number of empty blocks in the network, and the mining
//! pools from which they originate" (§III-C3). The report also surfaces
//! the paper's anecdote: miners **all** of whose blocks were empty.

use std::collections::BTreeMap;
use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{pct, Table};
use ethmeter_types::PoolId;

use crate::Reduce;

/// One pool's row in Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyBlockRow {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share.
    pub hash_share: f64,
    /// Canonical blocks mined during the campaign.
    pub blocks: u64,
    /// Canonical blocks with zero transactions.
    pub empty: u64,
}

impl EmptyBlockRow {
    /// Fraction of this pool's blocks that were empty.
    pub fn empty_fraction(&self) -> f64 {
        self.empty as f64 / self.blocks.max(1) as f64
    }
}

/// Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyBlockReport {
    /// Per-pool rows, ordered by descending hash share, tail folded into a
    /// "Remaining pools" row.
    pub rows: Vec<EmptyBlockRow>,
    /// Total canonical blocks.
    pub total_blocks: u64,
    /// Total empty canonical blocks.
    pub total_empty: u64,
    /// Pools whose every block was empty (with ≥1 block) — the paper's
    /// always-empty miner.
    pub all_empty_miners: Vec<(String, u64)>,
}

impl EmptyBlockReport {
    /// Overall empty fraction (paper: 1.45%).
    pub fn empty_fraction(&self) -> f64 {
        self.total_empty as f64 / self.total_blocks.max(1) as f64
    }
}

/// Computes Figure 6 over the canonical chain, keeping `top_n` pools.
pub fn analyze(data: &CampaignData, top_n: usize) -> EmptyBlockReport {
    let mut acc = EmptyBlocks::new(top_n);
    acc.observe(data);
    acc.finish()
}

/// Streaming Figure 6 across many campaigns: per-pool block/empty tallies
/// accumulated run by run.
///
/// The always-empty-miner census is computed at finish time over the
/// *merged* tallies — a pool empty in one run but productive in another
/// correctly drops out, which a per-run report concatenation would get
/// wrong.
#[derive(Debug, Clone)]
pub struct EmptyBlocks {
    top_n: usize,
    /// Per-pool `(canonical blocks, empty blocks)`.
    pools: BTreeMap<PoolId, (u64, u64)>,
    total_blocks: u64,
    total_empty: u64,
    /// Pool label/share snapshot from the first observed campaign.
    pool_names: Vec<String>,
    pool_shares: Vec<f64>,
}

impl EmptyBlocks {
    /// An accumulator keeping `top_n` pools (tail folds into a
    /// "Remaining pools" row at finish time).
    pub fn new(top_n: usize) -> Self {
        EmptyBlocks {
            top_n,
            pools: BTreeMap::new(),
            total_blocks: 0,
            total_empty: 0,
            pool_names: Vec::new(),
            pool_shares: Vec::new(),
        }
    }

    fn pool_name(&self, pool: PoolId) -> String {
        self.pool_names
            .get(pool.index())
            .cloned()
            .unwrap_or_else(|| pool.to_string())
    }

    fn pool_share(&self, pool: PoolId) -> f64 {
        self.pool_shares.get(pool.index()).copied().unwrap_or(0.0)
    }
}

impl Reduce for EmptyBlocks {
    type Report = EmptyBlockReport;

    fn observe(&mut self, data: &CampaignData) {
        if self.pool_names.is_empty() {
            self.pool_names = data.truth.pool_names.clone();
            self.pool_shares = data.truth.pool_shares.clone();
        } else {
            // Row labels, shares, and the top-N fold are all computed from
            // this snapshot, so a directory change mid-reduction would
            // silently mislabel rows. Split per configuration instead
            // (e.g. `PerPoint` in a grid).
            assert!(
                self.pool_names == data.truth.pool_names
                    && self.pool_shares == data.truth.pool_shares,
                "empty-blocks reduction requires a stable pool directory"
            );
        }
        for block in data.truth.tree.canonical_blocks() {
            if block.number() == 0 {
                continue;
            }
            self.total_blocks += 1;
            let e = self.pools.entry(block.miner()).or_default();
            e.0 += 1;
            if block.is_empty() {
                e.1 += 1;
                self.total_empty += 1;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (pool, (b, e)) in other.pools {
            let entry = self.pools.entry(pool).or_default();
            entry.0 += b;
            entry.1 += e;
        }
        self.total_blocks += other.total_blocks;
        self.total_empty += other.total_empty;
        if self.pool_names.is_empty() {
            self.pool_names = other.pool_names;
            self.pool_shares = other.pool_shares;
        } else if !other.pool_names.is_empty() {
            assert!(
                self.pool_names == other.pool_names && self.pool_shares == other.pool_shares,
                "empty-blocks reduction requires a stable pool directory"
            );
        }
    }

    fn finish(self) -> EmptyBlockReport {
        let mut pool_ids: Vec<PoolId> = self.pools.keys().copied().collect();
        pool_ids.sort_by(|a, b| {
            self.pool_share(*b)
                .partial_cmp(&self.pool_share(*a))
                .expect("finite")
                .then(a.cmp(b))
        });
        let mut rows = Vec::new();
        let mut rest = (0u64, 0u64);
        let mut rest_share = 0.0;
        let mut all_empty_miners = Vec::new();
        for (rank, pool) in pool_ids.iter().enumerate() {
            let (b, e) = self.pools[pool];
            let name = self.pool_name(*pool);
            if e == b && b > 0 {
                all_empty_miners.push((name.clone(), b));
            }
            if rank < self.top_n {
                rows.push(EmptyBlockRow {
                    pool: *pool,
                    name,
                    hash_share: self.pool_share(*pool),
                    blocks: b,
                    empty: e,
                });
            } else {
                rest.0 += b;
                rest.1 += e;
                rest_share += self.pool_share(*pool);
            }
        }
        if rest.0 > 0 {
            rows.push(EmptyBlockRow {
                pool: PoolId(u16::MAX),
                name: "Remaining pools".into(),
                hash_share: rest_share,
                blocks: rest.0,
                empty: rest.1,
            });
        }
        EmptyBlockReport {
            rows,
            total_blocks: self.total_blocks,
            total_empty: self.total_empty,
            all_empty_miners,
        }
    }
}

impl fmt::Display for EmptyBlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — empty blocks per pool: {} of {} main blocks empty ({}; paper: 1.45%)",
            self.total_empty,
            self.total_blocks,
            pct(self.empty_fraction())
        )?;
        let mut t = Table::new(vec!["Pool", "Share", "Blocks", "Empty", "Empty %"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.hash_share),
                r.blocks.to_string(),
                r.empty.to_string(),
                pct(r.empty_fraction()),
            ]);
        }
        write!(f, "{t}")?;
        for (name, b) in &self.all_empty_miners {
            writeln!(f)?;
            write!(f, "note: {name} mined {b} blocks, all empty")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_measure::CampaignData;
    use ethmeter_types::{SimTime, TxId};

    /// Chain where pool 0 mines blocks with txs, pool 1 mines empty ones.
    fn campaign() -> CampaignData {
        let mut tree = BlockTree::new();
        let mut parent = tree.genesis_hash();
        for i in 0..10u64 {
            let miner = PoolId((i % 2) as u16);
            let txs = if miner == PoolId(0) {
                vec![TxId(i)]
            } else {
                vec![]
            };
            let b = BlockBuilder::new(parent, i + 1, miner)
                .mined_at(SimTime::from_secs(i))
                .txs(txs)
                .salt(i)
                .build();
            parent = b.hash();
            tree.insert(b).expect("ok");
        }
        CampaignData {
            observers: vec![],
            truth: testutil::truth(tree, Default::default()),
        }
    }

    #[test]
    fn per_pool_counts() {
        let r = analyze(&campaign(), 15);
        assert_eq!(r.total_blocks, 10);
        assert_eq!(r.total_empty, 5);
        assert!((r.empty_fraction() - 0.5).abs() < 1e-9);
        let ethermine = r.rows.iter().find(|x| x.name == "Ethermine").expect("row");
        assert_eq!(ethermine.blocks, 5);
        assert_eq!(ethermine.empty, 0);
        let spark = r.rows.iter().find(|x| x.name == "Sparkpool").expect("row");
        assert_eq!(spark.empty, 5);
        assert!((spark.empty_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_empty_miner_flagged() {
        let r = analyze(&campaign(), 15);
        assert_eq!(r.all_empty_miners, vec![("Sparkpool".to_owned(), 5)]);
        assert!(r.to_string().contains("all empty"));
    }

    #[test]
    fn tail_folding() {
        let r = analyze(&campaign(), 1);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1].name, "Remaining pools");
        assert_eq!(r.rows[1].blocks, 5);
    }

    #[test]
    fn display_renders() {
        assert!(analyze(&campaign(), 15).to_string().contains("Figure 6"));
    }

    #[test]
    #[should_panic(expected = "stable pool directory")]
    fn changing_pool_directory_mid_reduction_is_rejected() {
        let a = campaign();
        let mut b = campaign();
        b.truth.pool_names[0] = "SomeoneElse".to_owned();
        let mut acc = EmptyBlocks::new(15);
        acc.observe(&a);
        acc.observe(&b);
    }

    #[test]
    fn streamed_reduction_merges_tallies() {
        let data = campaign();
        let mut acc = EmptyBlocks::new(15);
        acc.observe(&data);
        acc.observe(&data);
        let r = acc.finish();
        let single = analyze(&data, 15);
        assert_eq!(r.total_blocks, 2 * single.total_blocks);
        assert_eq!(r.total_empty, 2 * single.total_empty);
        assert_eq!(r.all_empty_miners, vec![("Sparkpool".to_owned(), 10)]);
        // Merge of single-run accumulators equals sequential observation.
        let mut left = EmptyBlocks::new(15);
        left.observe(&data);
        let mut right = EmptyBlocks::new(15);
        right.observe(&data);
        left.merge(right);
        assert_eq!(left.finish(), r);
        // One observed run is exactly the classic report.
        let mut one = EmptyBlocks::new(15);
        one.observe(&data);
        assert_eq!(one.finish(), single);
    }
}
