// Fixture: a well-formed pragma that suppresses nothing.
fn tidy() {
    // detlint::allow(entropy, reason = "stale justification left behind after a refactor")
    let x = 1;
    let _ = x;
}
