//! Campaign orchestration: scenarios, the simulation world, runners, and
//! per-experiment entry points.
//!
//! This crate wires every substrate together:
//!
//! - [`scenario`]: declarative experiment descriptions with calibrated
//!   presets (from [`Preset::Tiny`] smoke runs to the
//!   paper-shaped [`Preset::PaperScaled`]);
//! - [`world`]: the discrete-event [`world::SimWorld`] — nodes gossiping
//!   over geographic links, pools racing for blocks from geo-located
//!   gateways, the transaction workload, and the instrumented observers;
//! - [`runner`]: one-call campaign execution returning
//!   [`ethmeter_measure::CampaignData`];
//! - [`sweep`]: parallel multi-seed (and multi-variant) fan-out of one
//!   scenario onto thread workers, with per-seed results bit-identical to
//!   sequential [`runner::run_campaign`] calls;
//! - [`chainonly`]: the fast block-sequence simulator for month- and
//!   chain-lifetime-scale sequence analyses (Figure 7, §III-D);
//! - [`experiments`]: one function per table/figure, shared by the
//!   examples, the benches, and the `repro` binary.
//!
//! # Quickstart
//!
//! ```
//! use ethmeter_core::prelude::*;
//!
//! let scenario = Scenario::builder().preset(Preset::Tiny).seed(7).build();
//! let outcome = run_campaign(&scenario);
//! assert!(outcome.campaign.truth.tree.head_number() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chainonly;
pub mod experiments;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod world;

pub use runner::{run_campaign, CampaignOutcome, CampaignRunner};
pub use scenario::{Preset, Scenario, ScenarioBuilder};
pub use sweep::{Sweep, SweepOutcome, SweepRun};
pub use world::{RunStats, SimWorld};

// Re-export the sub-crates under their natural names so downstream users
// need only depend on the facade.
pub use ethmeter_analysis as analysis;
pub use ethmeter_chain as chain;
pub use ethmeter_geo as geo;
pub use ethmeter_measure as measure;
pub use ethmeter_mining as mining;
pub use ethmeter_net as net;
pub use ethmeter_sim as sim;
pub use ethmeter_stats as stats;
pub use ethmeter_txpool as txpool;
pub use ethmeter_types as types;
pub use ethmeter_workload as workload;

/// The most common imports, re-exported for `use ethmeter_core::prelude::*`.
pub mod prelude {
    pub use crate::chainonly::{run_chain_only, ChainOnlyConfig};
    pub use crate::runner::{run_campaign, CampaignOutcome, CampaignRunner};
    pub use crate::scenario::{Preset, Scenario};
    pub use crate::sweep::{Sweep, SweepOutcome, SweepRun};
    pub use crate::{analysis, chain, geo, measure, mining, net, sim, stats, types, workload};
    pub use ethmeter_measure::CampaignData;
    pub use ethmeter_types::{Region, SimDuration, SimTime};
}
