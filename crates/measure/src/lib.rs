//! The measurement infrastructure: vantage points, observer logs, and the
//! campaign dataset.
//!
//! This crate is the equivalent of the paper's ~1,000-line Geth
//! instrumentation plus its log schema: each observer captures "all
//! incoming network messages ... together with a local timestamp" (§II).
//! Timestamps are *local* — i.e. skewed by the observer's NTP offset — so
//! every cross-observer analysis inherits the same measurement error the
//! paper discusses.
//!
//! - [`vantage`]: vantage-point descriptions, including the paper's four
//!   (Table I) and the complementary default-peers observer of §III-A2;
//! - [`log`]: per-observer logs (block and transaction reception records);
//! - [`campaign`]: the complete dataset of one run — logs plus simulator
//!   ground truth (the paper's analogue: logs plus Etherscan
//!   cross-checks);
//! - [`csv`]: dataset export/import in a stable text format, standing in
//!   for the paper's published measurement data;
//! - [`spill`]: columnar on-disk segments backing budget-bounded
//!   (out-of-core) observer logs for planet-scale campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod csv;
pub mod log;
pub mod spill;
pub mod vantage;

pub use campaign::{CampaignData, GroundTruth};
pub use log::{BlockMsgKind, BlockRecord, ObserverLog, TxRecord, MAX_RETAINED_BYTES};
pub use spill::SpillConfig;
pub use vantage::VantagePoint;
