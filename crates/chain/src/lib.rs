//! Blockchain substrate: blocks, transactions, the block tree, fork choice,
//! uncles, rewards, and fork classification.
//!
//! This crate implements the ledger layer the paper's measurements sit on:
//!
//! - [`block`]: headers, bodies, and size accounting (why empty blocks are
//!   small and fast);
//! - [`tx`]: transactions with per-sender nonces (the mechanism behind
//!   out-of-order commits, §III-C2);
//! - [`consensus`]: the pluggable [`Consensus`] engine trait (fork-choice
//!   scoring, head selection, validation, uncle/reward policy) with
//!   heaviest-chain, longest-chain, and uncle-weighted GHOST engines;
//! - [`forkchoice`]: score-based fork choice with explicit
//!   `head`/`safe`/`finalized` markers and `Result`-based inserts;
//! - [`tree`]: the block tree with engine-driven fork choice, canonical
//!   chain maintenance, and reorg tracking;
//! - [`uncles`]: Ethereum's uncle-validity rules and reference policies,
//!   including the paper's proposed mitigation (§V) that forbids uncles
//!   from a miner that already holds the same-height main block;
//! - [`rewards`]: the post-Constantinople reward schedule used to reason
//!   about why one-miner forks are profitable;
//! - [`forks`]: extraction and classification of forks from a complete
//!   block set (Table III, §III-C4/C5);
//! - [`registry`]: campaign-global dense registries interning every block
//!   and transaction into contiguous `u32` slots at creation time (the
//!   backbone of the hot path's `Vec`-indexed state).
//!
//! # Example
//!
//! ```
//! use ethmeter_chain::block::BlockBuilder;
//! use ethmeter_chain::tree::BlockTree;
//! use ethmeter_types::PoolId;
//!
//! let mut tree = BlockTree::new();
//! let genesis = tree.genesis_hash();
//! let b1 = BlockBuilder::new(genesis, 1, PoolId(0)).build();
//! let h1 = b1.hash();
//! tree.insert(b1)?;
//! assert_eq!(tree.head(), h1);
//! # Ok::<(), ethmeter_chain::tree::InsertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod consensus;
pub mod forkchoice;
pub mod forks;
pub mod registry;
pub mod rewards;
pub mod tree;
pub mod tx;
pub mod uncles;

pub use block::{Block, BlockBuilder, BlockHeader};
pub use consensus::{Consensus, ConsensusKind, HeaviestChain, LongestChain, Score, UncleGhost};
pub use forkchoice::{ForkChoiceError, ForkChoiceTree};
pub use registry::{BlockRegistry, TxRegistry};
pub use tree::{BlockTree, InsertError, InsertOutcome};
pub use tx::Transaction;
pub use uncles::UnclePolicy;
