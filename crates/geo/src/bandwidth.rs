//! Per-node bandwidth classes.
//!
//! Table I of the paper lists the measurement machines' 8–10 Gbps backbone
//! links; ordinary peers span residential to datacenter capacity. Bandwidth
//! converts message size into serialization delay, which is what makes
//! *empty blocks propagate faster* (§III-C3) — a small block clears a slow
//! access link sooner.

use ethmeter_sim::Xoshiro256;
use ethmeter_types::{Bandwidth, ByteSize, SimDuration};

/// Access-link capacity class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthClass {
    /// Home connection (~50 Mbps). Typical hobbyist full node.
    Residential,
    /// Commodity cloud VM (~1 Gbps).
    Datacenter,
    /// Backbone-attached measurement/gateway machine (~10 Gbps, Table I).
    Backbone,
}

impl BandwidthClass {
    /// The nominal capacity of this class.
    pub fn capacity(self) -> Bandwidth {
        match self {
            BandwidthClass::Residential => Bandwidth::from_mbps(50),
            BandwidthClass::Datacenter => Bandwidth::from_gbps(1),
            BandwidthClass::Backbone => Bandwidth::from_gbps(10),
        }
    }

    /// Serialization time of `size` bytes on this class's link.
    ///
    /// The three class capacities divide 8×10⁹ exactly (or nearly), so
    /// each case reduces `bytes * 8e9 / bits_per_sec` to a constant
    /// multiply — bit-identical to [`Bandwidth::transfer_time`] (asserted
    /// by test) but division-free on the per-message hot path.
    #[inline]
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        let bytes = size.as_bytes();
        let nanos = match self {
            // 8e9 / 50e6 = 160 ns per byte, exactly.
            BandwidthClass::Residential => bytes * 160,
            // 8e9 / 1e9 = 8 ns per byte, exactly.
            BandwidthClass::Datacenter => bytes * 8,
            // floor(bytes * 8e9 / 10e9) = floor(bytes * 4 / 5): the
            // constant divisor compiles to a multiply.
            BandwidthClass::Backbone => bytes * 4 / 5,
        };
        SimDuration::from_nanos(nanos)
    }

    /// Block validation speed factor relative to a commodity datacenter
    /// VM. Residential full nodes execute state transitions markedly
    /// slower; backbone/measurement machines (Table I) are faster. This
    /// asymmetry is why a well-provisioned observer's post-import
    /// announcement usually beats its slower neighbors' — the reason
    /// announcements are the *minority* of receptions in Table II.
    pub fn import_factor(self) -> f64 {
        match self {
            // 2019-era home full nodes (HDD, shared CPU) took roughly a
            // second to fully import a block; cloud VMs a few hundred ms;
            // the paper's 40-core backbone machines well under 100 ms.
            // The asymmetry drives Table II: the fast observer's
            // post-import announcement suppresses most of its slower
            // neighbors' announcements.
            BandwidthClass::Residential => 6.0,
            BandwidthClass::Datacenter => 2.5,
            BandwidthClass::Backbone => 0.5,
        }
    }

    /// Samples a class for an ordinary (non-measurement) peer.
    ///
    /// Mix: 60% residential, 38% datacenter, 2% backbone — matching the
    /// observation that most Ethereum peers are unexceptional hosts while
    /// pool gateways are well provisioned.
    pub fn sample_ordinary(rng: &mut Xoshiro256) -> Self {
        let x = rng.next_f64();
        if x < 0.60 {
            BandwidthClass::Residential
        } else if x < 0.98 {
            BandwidthClass::Datacenter
        } else {
            BandwidthClass::Backbone
        }
    }
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BandwidthClass::Residential => "residential",
            BandwidthClass::Datacenter => "datacenter",
            BandwidthClass::Backbone => "backbone",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_by_speed() {
        let size = ByteSize::from_kib(25);
        let res = BandwidthClass::Residential.transfer_time(size);
        let dc = BandwidthClass::Datacenter.transfer_time(size);
        let bb = BandwidthClass::Backbone.transfer_time(size);
        assert!(res > dc && dc > bb);
        // A 25 KiB block on 50 Mbps is ~4ms — noticeable vs. an empty block.
        assert!(res.as_millis() >= 3, "got {res}");
    }

    #[test]
    fn empty_block_advantage() {
        // The serialization advantage of an empty block (~500 B) over a full
        // one (~25 KiB) on a residential link should be milliseconds.
        let empty = BandwidthClass::Residential.transfer_time(ByteSize::from_bytes(500));
        let full = BandwidthClass::Residential.transfer_time(ByteSize::from_kib(25));
        assert!(full.as_millis_f64() - empty.as_millis_f64() > 3.0);
    }

    #[test]
    fn ordinary_mix_is_mostly_residential() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut res = 0;
        let n = 10_000;
        for _ in 0..n {
            if BandwidthClass::sample_ordinary(&mut rng) == BandwidthClass::Residential {
                res += 1;
            }
        }
        let frac = res as f64 / n as f64;
        assert!((0.55..=0.65).contains(&frac), "residential fraction {frac}");
    }

    #[test]
    fn display_names() {
        assert_eq!(BandwidthClass::Backbone.to_string(), "backbone");
    }

    #[test]
    fn class_fast_path_matches_generic_division() {
        // The per-class constant-multiply shortcut must be bit-identical
        // to the generic `Bandwidth::transfer_time` quotient for every
        // size the simulation can produce (and then some).
        let classes = [
            BandwidthClass::Residential,
            BandwidthClass::Datacenter,
            BandwidthClass::Backbone,
        ];
        let sizes = (0..2_000u64)
            .map(ByteSize::from_bytes)
            .chain((0..200u64).map(|k| ByteSize::from_kib(25 * k)))
            .chain([ByteSize::from_bytes(u64::from(u32::MAX))]);
        for size in sizes {
            for class in classes {
                assert_eq!(
                    class.transfer_time(size),
                    class.capacity().transfer_time(size),
                    "{class:?} at {size}"
                );
            }
        }
    }
}
