//! Decentralization scalars: Nakamoto coefficient, Gini, and HHI over
//! hash power, block production, first-observation share, and revenue.
//!
//! The paper's §IV discussion of mining-pool dominance is qualitative;
//! the follow-up literature quantifies it. Motepalli & Jacobsen
//! ("Analyzing Geospatial Distribution in Blockchains") ground
//! geographic decentralization in scalar indices, and Long et al.
//! ("Measuring Miner Decentralization in Proof-of-Work Blockchains")
//! apply the same three to miners. This module computes them over four
//! weight distributions of one (or many merged) campaigns:
//!
//! - **hash power** — the configured pool shares (the input axis);
//! - **block production** — canonical blocks actually mined per pool;
//! - **first observation** — per-vantage new-block win shares (the
//!   measurement-side geographic axis of Figures 2/3);
//! - **revenue** — per-pool rewards under the canonical schedule.
//!
//! All three indices are pure functions of the weight multiset, so the
//! streaming [`Decentralization`] reduction is merge-tree independent
//! like every other [`Reduce`] in this crate.

use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::Table;

use crate::first_observation::FirstObservation;
use crate::rewards::Rewards;
use crate::Reduce;

/// Concentration scalars of one non-negative weight distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Concentration {
    /// Participants with positive weight.
    pub n: usize,
    /// Nakamoto coefficient: the minimum number of participants jointly
    /// controlling strictly more than half the total weight (0 when the
    /// distribution is empty).
    pub nakamoto: u32,
    /// Gini coefficient in `[0, 1)` (population form; 0 = perfectly
    /// equal).
    pub gini: f64,
    /// Herfindahl–Hirschman index: the sum of squared shares, in
    /// `(0, 1]` (1 = monopoly; 0 for an empty distribution).
    pub hhi: f64,
}

impl Concentration {
    /// The all-zero scalars of an empty (or zero-weight) distribution.
    pub fn empty() -> Self {
        Concentration {
            n: 0,
            nakamoto: 0,
            gini: 0.0,
            hhi: 0.0,
        }
    }
}

/// Computes the three concentration scalars of a weight distribution.
/// Weights need not be normalized; zero weights drop out.
///
/// Deterministic: weights are sorted before any accumulation, so the
/// result depends only on the weight multiset, never on input order.
///
/// # Panics
///
/// Panics on negative or non-finite weights.
pub fn concentration(weights: &[f64]) -> Concentration {
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "concentration weights must be finite and non-negative"
    );
    let mut positive: Vec<f64> = weights.iter().copied().filter(|&w| w > 0.0).collect();
    if positive.is_empty() {
        return Concentration::empty();
    }
    positive.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = positive.len();
    let total: f64 = positive.iter().sum();

    // Nakamoto: walk from the largest weight down until the cumulative
    // share strictly exceeds one half.
    let mut nakamoto = 0u32;
    let mut cum = 0.0;
    for &w in positive.iter().rev() {
        cum += w;
        nakamoto += 1;
        if 2.0 * cum > total {
            break;
        }
    }

    // Gini over the ascending sample: G = (2 Σ i·x_i − (n+1) Σ x_i) / (n Σ x_i).
    let weighted_ranks: f64 = positive
        .iter()
        .enumerate()
        .map(|(i, &w)| (i + 1) as f64 * w)
        .sum();
    let gini = (2.0 * weighted_ranks - (n as f64 + 1.0) * total) / (n as f64 * total);

    let hhi = positive.iter().map(|&w| (w / total) * (w / total)).sum();

    Concentration {
        n,
        nakamoto,
        gini,
        hhi,
    }
}

/// The decentralization table of one (or many merged) campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct DecentralizationReport {
    /// Concentration of the configured hash-power shares.
    pub hash_power: Concentration,
    /// Concentration of canonical blocks mined per pool.
    pub block_production: Concentration,
    /// Concentration of per-vantage first-observation win shares.
    pub first_observation: Concentration,
    /// Concentration of per-pool revenue.
    pub revenue: Concentration,
    /// Canonical blocks credited across the observed campaigns.
    pub blocks: u64,
}

impl DecentralizationReport {
    /// The axes as `(label, scalars)` rows, in display order.
    pub fn axes(&self) -> [(&'static str, &Concentration); 4] {
        [
            ("hash_power", &self.hash_power),
            ("block_production", &self.block_production),
            ("first_observation", &self.first_observation),
            ("revenue", &self.revenue),
        ]
    }

    /// Machine-readable form (schema `ethmeter-decentralization/v1`),
    /// consumed by the CI repro-smoke gate.
    pub fn to_json(&self) -> String {
        let axis = |c: &Concentration| {
            format!(
                "{{\"n\":{},\"nakamoto\":{},\"gini\":{},\"hhi\":{}}}",
                c.n, c.nakamoto, c.gini, c.hhi
            )
        };
        let axes = self
            .axes()
            .iter()
            .map(|(label, c)| format!("\"{label}\":{}", axis(c)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"ethmeter-decentralization/v1\",\"blocks\":{},{axes}}}",
            self.blocks
        )
    }
}

/// Computes the decentralization table of one campaign.
pub fn analyze(data: &CampaignData) -> DecentralizationReport {
    let mut acc = Decentralization::new();
    acc.observe(data);
    acc.finish()
}

/// Streaming decentralization across campaigns: per-pool and
/// per-vantage tallies only (via the [`FirstObservation`] and
/// [`Rewards`] reductions), with the scalar indices computed at finish
/// time over the merged distributions.
#[derive(Debug, Clone)]
pub struct Decentralization {
    fo: FirstObservation,
    rewards: Rewards,
    pool_shares: Vec<f64>,
}

impl Decentralization {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        Decentralization {
            fo: FirstObservation::new(usize::MAX),
            rewards: Rewards::new(),
            pool_shares: Vec::new(),
        }
    }
}

impl Default for Decentralization {
    fn default() -> Self {
        Self::new()
    }
}

impl Reduce for Decentralization {
    type Report = DecentralizationReport;

    fn observe(&mut self, data: &CampaignData) {
        if self.pool_shares.is_empty() {
            self.pool_shares = data.truth.pool_shares.clone();
        }
        // The embedded reductions assert a stable pool directory and
        // vantage set, so the snapshot above stays consistent.
        self.fo.observe(data);
        self.rewards.observe(data);
    }

    fn merge(&mut self, other: Self) {
        if self.pool_shares.is_empty() {
            self.pool_shares = other.pool_shares;
        }
        self.fo.merge(other.fo);
        self.rewards.merge(other.rewards);
    }

    fn finish(self) -> DecentralizationReport {
        let geo = self.fo.finish_geo();
        let revenue = self.rewards.finish();
        let first_obs: Vec<f64> = geo.per_vantage.iter().map(|(_, share, _)| *share).collect();
        let mined: Vec<f64> = revenue.rows.iter().map(|r| r.blocks as f64).collect();
        let rewards: Vec<f64> = revenue.rows.iter().map(|r| r.reward as f64).collect();
        DecentralizationReport {
            hash_power: concentration(&self.pool_shares),
            block_production: concentration(&mined),
            first_observation: concentration(&first_obs),
            revenue: concentration(&rewards),
            blocks: revenue.total_blocks,
        }
    }
}

impl fmt::Display for DecentralizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Decentralization — concentration scalars ({} canonical blocks)",
            self.blocks
        )?;
        let mut t = Table::new(vec!["Axis", "Participants", "Nakamoto", "Gini", "HHI"]);
        for (label, c) in self.axes() {
            t.row(vec![
                label.to_owned(),
                c.n.to_string(),
                c.nakamoto.to_string(),
                format!("{:.3}", c.gini),
                format!("{:.3}", c.hhi),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn concentration_matches_hand_computation() {
        let c = concentration(&[0.5, 0.3, 0.2]);
        assert_eq!(c.n, 3);
        // 0.5 alone is not *strictly* more than half; two are.
        assert_eq!(c.nakamoto, 2);
        assert!((c.hhi - 0.38).abs() < 1e-12, "hhi {}", c.hhi);
        // Ascending [0.2, 0.3, 0.5]: G = (2·2.3 − 4·1)/(3·1) = 0.2.
        assert!((c.gini - 0.2).abs() < 1e-12, "gini {}", c.gini);
        // Input order never matters.
        assert_eq!(c, concentration(&[0.2, 0.5, 0.3]));
    }

    #[test]
    fn concentration_edge_cases() {
        assert_eq!(concentration(&[]), Concentration::empty());
        assert_eq!(concentration(&[0.0, 0.0]), Concentration::empty());
        let single = concentration(&[7.0]);
        assert_eq!(single.n, 1);
        assert_eq!(single.nakamoto, 1);
        assert_eq!(single.gini, 0.0);
        assert!((single.hhi - 1.0).abs() < 1e-12);
        // Four equal participants: majority needs three, Gini 0, HHI 1/4.
        let equal = concentration(&[1.0; 4]);
        assert_eq!(equal.nakamoto, 3);
        assert!(equal.gini.abs() < 1e-12);
        assert!((equal.hhi - 0.25).abs() < 1e-12);
        // Weights need not be normalized (scalars agree up to rounding).
        let scaled = concentration(&[2.0, 6.0, 4.0]);
        let normalized = concentration(&[0.1, 0.3, 0.2]);
        assert_eq!(scaled.n, normalized.n);
        assert_eq!(scaled.nakamoto, normalized.nakamoto);
        assert!((scaled.gini - normalized.gini).abs() < 1e-12);
        assert!((scaled.hhi - normalized.hhi).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        let _ = concentration(&[0.5, -0.1]);
    }

    #[test]
    fn campaign_report_is_consistent() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = analyze(&data);
        assert!(r.blocks > 0);
        // Two configured pools, both mining alternating blocks.
        assert_eq!(r.hash_power.n, 2);
        assert_eq!(r.block_production.n, 2);
        // EA wins every first observation: a one-vantage monopoly.
        assert_eq!(r.first_observation.n, 1);
        assert_eq!(r.first_observation.nakamoto, 1);
        assert!((r.first_observation.hhi - 1.0).abs() < 1e-12);
        // Revenue concentrates no harder than a monopoly.
        assert!(r.revenue.hhi <= 1.0 && r.revenue.hhi > 0.0);
        let shown = r.to_string();
        assert!(shown.contains("Decentralization"));
        assert!(shown.contains("hash_power"));
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"ethmeter-decentralization/v1\""));
        assert!(json.contains("\"first_observation\":{\"n\":1,\"nakamoto\":1,"));
    }

    #[test]
    fn streamed_reduction_equals_oneshot_and_merges() {
        let a = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let b = testutil::campaign_with_block_spread(&[100, 0, 40, 60]);
        let mut one = Decentralization::new();
        one.observe(&a);
        assert_eq!(one.finish(), analyze(&a));
        let mut streamed = Decentralization::new();
        streamed.observe(&a);
        streamed.observe(&b);
        let mut left = Decentralization::new();
        left.observe(&a);
        let mut right = Decentralization::new();
        right.observe(&b);
        left.merge(right);
        let merged = left.finish();
        assert_eq!(streamed.finish(), merged);
        // Two vantages now win blocks: the first-observation axis widens.
        assert_eq!(merged.first_observation.n, 2);
        assert!(merged.first_observation.hhi < 1.0);
    }
}
