//! Figures 2 and 3: who sees new blocks first, and from which pools.
//!
//! Figure 2: "the proportion of times each of our measurement nodes was
//! the first to observe a new block", with NTP-uncertainty error bars.
//! Figure 3: the same wins broken down by the block's origin mining pool,
//! which reveals where each pool's gateways sit.

use std::collections::BTreeMap;
use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{pct, Table};
use ethmeter_types::PoolId;

use crate::Reduce;

/// NTP envelope used for the error bars: the paper's "offset under 10ms in
/// 90% of cases".
const NTP_MARGIN_NANOS: u64 = 10_000_000;

/// Figure 2: per-vantage first-observation shares.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoReport {
    /// `(vantage name, share of wins, uncertainty)` — uncertainty is the
    /// fraction of this vantage's wins decided by a margin under the NTP
    /// envelope (could flip under clock error).
    pub per_vantage: Vec<(String, f64, f64)>,
    /// Blocks observed by at least two vantages.
    pub blocks: u64,
}

/// Computes Figure 2.
pub fn geo(data: &CampaignData) -> GeoReport {
    let mut acc = FirstObservation::new(usize::MAX);
    acc.observe(data);
    acc.finish_geo()
}

impl fmt::Display for GeoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — first new-block observations per vantage ({} blocks)",
            self.blocks
        )?;
        let mut t = Table::new(vec!["Vantage", "First observations", "± (NTP)"]);
        for (name, share, unc) in &self.per_vantage {
            t.row(vec![name.clone(), pct(*share), pct(*unc)]);
        }
        writeln!(f, "{t}")?;
        write!(f, "(paper: EA ~40%, NA ~4x less, WE/CE between)")
    }
}

/// One pool's row in Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolFirstObs {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share (the percentage in Figure 3's labels).
    pub hash_share: f64,
    /// Blocks from this pool that were raced by ≥2 observers.
    pub blocks: u64,
    /// Win share per vantage, aligned with [`PoolReport::vantages`].
    pub vantage_shares: Vec<f64>,
}

/// Figure 3: first observations split by origin pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Vantage names (column order of `vantage_shares`).
    pub vantages: Vec<String>,
    /// Rows, ordered by descending hash share (top pools first).
    pub pools: Vec<PoolFirstObs>,
}

/// Computes Figure 3, keeping the `top_n` pools by hash share and folding
/// the rest into a synthetic "Remaining" row.
pub fn by_pool(data: &CampaignData, top_n: usize) -> PoolReport {
    let mut acc = FirstObservation::new(top_n);
    acc.observe(data);
    acc.finish_pool()
}

/// Streaming Figures 2 and 3 across many campaigns.
///
/// One pass over each campaign counts per-vantage wins (with NTP-narrow
/// margins) and per-pool wins; [`Reduce::finish`] — or the more specific
/// [`FirstObservation::finish_geo`] / [`FirstObservation::finish_pool`] —
/// turns the merged counts into the classic reports. Shares, the
/// "Remaining miners" fold, and uncertainty fractions are all computed at
/// finish time, so they are exact over the whole run set.
#[derive(Debug, Clone)]
pub struct FirstObservation {
    top_n: usize,
    /// Vantage names (fixed by the first observed campaign).
    vantages: Vec<String>,
    wins: Vec<u64>,
    narrow_wins: Vec<u64>,
    blocks: u64,
    /// Per-pool `(raced blocks, per-vantage wins)`.
    pools: BTreeMap<PoolId, (u64, Vec<u64>)>,
    /// Pool label/share snapshot from the first observed campaign.
    pool_names: Vec<String>,
    pool_shares: Vec<f64>,
}

impl FirstObservation {
    /// An accumulator keeping `top_n` pools in Figure 3's table (the tail
    /// folds into a "Remaining miners" row at finish time).
    pub fn new(top_n: usize) -> Self {
        FirstObservation {
            top_n,
            vantages: Vec::new(),
            wins: Vec::new(),
            narrow_wins: Vec::new(),
            blocks: 0,
            pools: BTreeMap::new(),
            pool_names: Vec::new(),
            pool_shares: Vec::new(),
        }
    }

    fn pool_name(&self, pool: PoolId) -> String {
        self.pool_names
            .get(pool.index())
            .cloned()
            .unwrap_or_else(|| pool.to_string())
    }

    fn pool_share(&self, pool: PoolId) -> f64 {
        self.pool_shares.get(pool.index()).copied().unwrap_or(0.0)
    }

    /// Finishes into Figure 2 only.
    pub fn finish_geo(&self) -> GeoReport {
        let per_vantage = self
            .vantages
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let share = self.wins[i] as f64 / self.blocks.max(1) as f64;
                let unc = self.narrow_wins[i] as f64 / self.blocks.max(1) as f64;
                (name.clone(), share, unc)
            })
            .collect();
        GeoReport {
            per_vantage,
            blocks: self.blocks,
        }
    }

    /// Finishes into Figure 3 only.
    pub fn finish_pool(&self) -> PoolReport {
        // Order pools by hash share descending; fold the tail.
        let mut pool_ids: Vec<PoolId> = self.pools.keys().copied().collect();
        pool_ids.sort_by(|a, b| {
            self.pool_share(*b)
                .partial_cmp(&self.pool_share(*a))
                .expect("finite shares")
                .then(a.cmp(b))
        });
        let mut pools = Vec::new();
        let mut rest_wins = vec![0u64; self.vantages.len()];
        let mut rest_blocks = 0u64;
        let mut rest_share = 0.0;
        for (rank, pool) in pool_ids.iter().enumerate() {
            let (b, w) = &self.pools[pool];
            let b = *b;
            if rank < self.top_n {
                pools.push(PoolFirstObs {
                    pool: *pool,
                    name: self.pool_name(*pool),
                    hash_share: self.pool_share(*pool),
                    blocks: b,
                    vantage_shares: w.iter().map(|&x| x as f64 / b.max(1) as f64).collect(),
                });
            } else {
                for (i, &x) in w.iter().enumerate() {
                    rest_wins[i] += x;
                }
                rest_blocks += b;
                rest_share += self.pool_share(*pool);
            }
        }
        if rest_blocks > 0 {
            pools.push(PoolFirstObs {
                pool: PoolId(u16::MAX),
                name: "Remaining miners".into(),
                hash_share: rest_share,
                blocks: rest_blocks,
                vantage_shares: rest_wins
                    .iter()
                    .map(|&x| x as f64 / rest_blocks as f64)
                    .collect(),
            });
        }
        PoolReport {
            vantages: self.vantages.clone(),
            pools,
        }
    }
}

impl Reduce for FirstObservation {
    type Report = (GeoReport, PoolReport);

    fn observe(&mut self, data: &CampaignData) {
        let names: Vec<String> = data.main_observers().map(|(v, _)| v.name.clone()).collect();
        if self.vantages.is_empty() {
            self.vantages = names;
            self.wins = vec![0; self.vantages.len()];
            self.narrow_wins = vec![0; self.vantages.len()];
        } else {
            assert_eq!(
                self.vantages, names,
                "first-observation reduction requires a stable vantage set"
            );
        }
        if self.pool_names.is_empty() {
            self.pool_names = data.truth.pool_names.clone();
            self.pool_shares = data.truth.pool_shares.clone();
        } else {
            // Figure 3's labels, shares, and top-N fold come from this
            // snapshot; reject a mid-reduction directory change instead
            // of silently mislabeling rows (split per configuration,
            // e.g. `PerPoint` in a grid).
            assert!(
                self.pool_names == data.truth.pool_names
                    && self.pool_shares == data.truth.pool_shares,
                "first-observation reduction requires a stable pool directory"
            );
        }
        // One streaming merge-join over the observer scans (works for
        // spilled and in-memory logs alike); the truth tree supplies the
        // origin pool per observed hash.
        let tree = &data.truth.tree;
        let genesis = tree.genesis_hash();
        data.for_each_main_block(|hash, group| {
            if hash == genesis || group.len() < 2 {
                return;
            }
            let Some(block) = tree.get(hash) else {
                return;
            };
            self.blocks += 1;
            let (winner, t_first) = group
                .iter()
                .map(|&(i, r)| (i, r.first_local.as_nanos()))
                .min_by_key(|&(_, t)| t)
                .expect("non-empty");
            self.wins[winner] += 1;
            let runner_up = group
                .iter()
                .filter(|&&(i, _)| i != winner)
                .map(|&(_, r)| r.first_local.as_nanos())
                .min()
                .expect("two arrivals");
            if runner_up - t_first < NTP_MARGIN_NANOS {
                self.narrow_wins[winner] += 1;
            }
            let entry = self
                .pools
                .entry(block.miner())
                .or_insert_with(|| (0, vec![0; self.vantages.len()]));
            entry.0 += 1;
            entry.1[winner] += 1;
        });
    }

    fn merge(&mut self, other: Self) {
        if self.vantages.is_empty() {
            *self = other;
            return;
        }
        if other.vantages.is_empty() {
            return;
        }
        assert_eq!(
            self.vantages, other.vantages,
            "first-observation reduction requires a stable vantage set"
        );
        for (a, b) in self.wins.iter_mut().zip(other.wins) {
            *a += b;
        }
        for (a, b) in self.narrow_wins.iter_mut().zip(other.narrow_wins) {
            *a += b;
        }
        self.blocks += other.blocks;
        for (pool, (b, w)) in other.pools {
            let entry = self
                .pools
                .entry(pool)
                .or_insert_with(|| (0, vec![0; self.vantages.len()]));
            entry.0 += b;
            for (a, x) in entry.1.iter_mut().zip(w) {
                *a += x;
            }
        }
        if self.pool_names.is_empty() {
            self.pool_names = other.pool_names;
            self.pool_shares = other.pool_shares;
        } else if !other.pool_names.is_empty() {
            assert!(
                self.pool_names == other.pool_names && self.pool_shares == other.pool_shares,
                "first-observation reduction requires a stable pool directory"
            );
        }
    }

    fn finish(self) -> (GeoReport, PoolReport) {
        (self.finish_geo(), self.finish_pool())
    }
}

impl fmt::Display for PoolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — first observation per origin pool (rows: pools, cols: vantages)"
        )?;
        let mut headers = vec!["Pool (hash share)".to_owned(), "Blocks".to_owned()];
        headers.extend(self.vantages.iter().cloned());
        let mut t = Table::new(headers);
        for p in &self.pools {
            let mut row = vec![
                format!("{} ({})", p.name, pct(p.hash_share)),
                p.blocks.to_string(),
            ];
            row.extend(p.vantage_shares.iter().map(|&s| pct(s)));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn ea_wins_everything_in_synthetic_spread() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = geo(&data);
        assert_eq!(r.blocks, testutil::BLOCKS as u64);
        let ea = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "EA")
            .expect("EA present");
        assert!((ea.1 - 1.0).abs() < 1e-9, "EA wins all: {}", ea.1);
        // Margin to runner-up is 40ms > 10ms NTP envelope: no uncertainty.
        assert_eq!(ea.2, 0.0);
        let na = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "NA")
            .expect("NA present");
        assert_eq!(na.1, 0.0);
    }

    #[test]
    fn narrow_margins_flagged_as_uncertain() {
        // WE trails EA by only 5ms: every EA win is uncertain.
        let data = testutil::campaign_with_block_spread(&[0, 100, 5, 60]);
        let r = geo(&data);
        let ea = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "EA")
            .expect("EA present");
        assert!((ea.2 - 1.0).abs() < 1e-9, "uncertainty {}", ea.2);
    }

    #[test]
    fn shares_sum_to_one() {
        let data = testutil::campaign_with_block_spread(&[0, 30, 40, 60]);
        let r = geo(&data);
        let total: f64 = r.per_vantage.iter().map(|(_, s, _)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pool_breakdown_aligns_with_miners() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = by_pool(&data, 15);
        // Two pools, alternating blocks; every block won by EA.
        assert_eq!(r.pools.len(), 2);
        assert_eq!(r.pools[0].name, "Ethermine"); // larger share first
        for p in &r.pools {
            assert_eq!(p.blocks, testutil::BLOCKS as u64 / 2);
            let ea_idx = r.vantages.iter().position(|v| v == "EA").expect("EA");
            assert!((p.vantage_shares[ea_idx] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tail_folds_into_remaining() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = by_pool(&data, 1);
        assert_eq!(r.pools.len(), 2);
        assert_eq!(r.pools[1].name, "Remaining miners");
        assert_eq!(r.pools[1].blocks, testutil::BLOCKS as u64 / 2);
    }

    #[test]
    fn streamed_reduction_counts_across_runs() {
        use crate::Reduce;
        let a = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let b = testutil::campaign_with_block_spread(&[100, 0, 40, 60]); // NA first
        let mut acc = FirstObservation::new(15);
        acc.observe(&a);
        acc.observe(&b);
        let (geo_r, pool_r) = acc.finish();
        assert_eq!(geo_r.blocks, 2 * testutil::BLOCKS as u64);
        // EA won every block of run a, NA every block of run b.
        let share = |name: &str| {
            geo_r
                .per_vantage
                .iter()
                .find(|(n, ..)| n == name)
                .expect("present")
                .1
        };
        assert!((share("EA") - 0.5).abs() < 1e-9);
        assert!((share("NA") - 0.5).abs() < 1e-9);
        // Pool tallies doubled relative to one run.
        let single = by_pool(&a, 15);
        assert_eq!(pool_r.pools.len(), single.pools.len());
        assert_eq!(pool_r.pools[0].blocks, 2 * single.pools[0].blocks);
        // Merging two single-run accumulators equals observing both.
        let mut left = FirstObservation::new(15);
        left.observe(&a);
        let mut right = FirstObservation::new(15);
        right.observe(&b);
        left.merge(right);
        assert_eq!(left.finish_geo(), geo_r);
        assert_eq!(left.finish_pool(), pool_r);
        // One observed run reproduces the classic reports exactly.
        let mut one = FirstObservation::new(15);
        one.observe(&a);
        assert_eq!(one.finish_geo(), geo(&a));
        assert_eq!(one.finish_pool(), single);
    }

    #[test]
    fn displays_render() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        assert!(geo(&data).to_string().contains("Figure 2"));
        assert!(by_pool(&data, 15).to_string().contains("Figure 3"));
    }
}
