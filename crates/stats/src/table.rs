//! Plain-text table rendering for paper-style reports.
//!
//! Every analyzer in `ethmeter-analysis` prints its result as an ASCII
//! table shaped like the corresponding table/figure of the paper, so that
//! `repro table2` output can be compared against Table II line by line.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
}

/// A simple text table builder.
///
/// # Examples
///
/// ```
/// use ethmeter_stats::table::Table;
///
/// let mut t = Table::new(vec!["Message Type", "Avg.", "Med."]);
/// t.row(vec!["Announcements".into(), "2.585".into(), "2".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("Announcements"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned; the rest right-aligned (the usual numeric layout).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the alignment of a column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals ("25.32%").
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an integer with thousands separators ("201,086").
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Name", "Count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: "1" ends at same offset as "12345".
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(vec!["A", "B"]);
        t.align(1, Align::Left);
        t.row(vec!["x".into(), "y".into()]);
        assert!(t.to_string().contains('y'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.2532), "25.32%");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(grouped(201_086), "201,086");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1_000), "1,000");
        assert_eq!(grouped(0), "0");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["A"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
