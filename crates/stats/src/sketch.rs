//! Fixed-size, merge-stable streaming quantile sketch.
//!
//! Planet-scale campaigns produce delay samples far beyond what an exact
//! [`Cdf`](crate::Cdf) (which retains every value) can hold. [`QuantileSketch`]
//! is the out-of-core counterpart: a DDSketch-style log-bucketed counter
//! array of **fixed size** (~20 KiB regardless of sample count) whose
//! quantile answers carry a documented *relative* error bound.
//!
//! Two properties make it safe inside the deterministic pipeline:
//!
//! - **Integer-only state.** The sketch stores only `u64` bucket counts
//!   plus the exact running `min`/`max` (`f64` min/max are exact,
//!   associative and commutative). There is no floating-point running sum,
//!   so no operation whose result depends on accumulation order.
//! - **Merge = element-wise add.** Folding two sketches adds their bucket
//!   counts, which is fully associative and commutative. A sweep can merge
//!   per-shard sketches in any tree shape — 1, 2, 4 or 8 shards — and land
//!   on the bit-identical sketch every time.
//!
//! # Error bound
//!
//! For samples `>= MIN_TRACKED` (1e-9), every quantile answer `e` satisfies
//!
//! ```text
//! exact <= e <= exact * GAMMA        (GAMMA = 1.02, i.e. <= 2% relative)
//! ```
//!
//! where `exact` is the nearest-rank quantile the exact [`Cdf`] would
//! return for the same sample (up to one `f64` ulp of slop from the log
//! bucketing). Samples in `[0, MIN_TRACKED)` are represented as `0.0`
//! (absolute error below 1e-9 — invisible at nanosecond granularity).
//! Samples above `MAX_TRACKED` clamp into the top bucket; the returned
//! estimate is still capped at the exact observed maximum.

use std::fmt;

use crate::histogram::Histogram;

/// Relative-accuracy base: bucket `i` spans `[γ^i, γ^{i+1})`.
pub const GAMMA: f64 = 1.02;

/// Documented relative error bound of [`QuantileSketch::quantile`]:
/// `exact <= estimate <= exact * (1 + RELATIVE_ERROR)`.
pub const RELATIVE_ERROR: f64 = GAMMA - 1.0;

/// Smallest positive value resolved by the log buckets. Anything in
/// `[0, MIN_TRACKED)` lands in the dedicated low bucket and reads back
/// as `0.0`.
pub const MIN_TRACKED: f64 = 1e-9;

/// Largest value resolved by the log buckets; larger values clamp into
/// the top bucket (the estimate is still capped at the observed max).
pub const MAX_TRACKED: f64 = 1e12;

/// `-floor(ln(MIN_TRACKED) / ln(GAMMA))`: shifts bucket indices so that
/// `MIN_TRACKED` maps to index 0 (pinned by a unit test below).
const OFFSET: i64 = 1047;

/// Bucket count covering `[MIN_TRACKED, MAX_TRACKED]` with headroom.
const NUM_BUCKETS: usize = 2_500;

/// A fixed-size streaming quantile sketch with deterministic merge.
///
/// See the [module docs](self) for the error bound and the determinism
/// argument. Construction, recording, and merging never allocate beyond
/// the one fixed bucket array.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Log-bucket counts: bucket `i` covers `[γ^{i-OFFSET}, γ^{i-OFFSET+1})`.
    buckets: Vec<u64>,
    /// Count of samples in `[0, MIN_TRACKED)`.
    low: u64,
    /// Total samples recorded.
    count: u64,
    /// Exact smallest sample (`f64::INFINITY` when empty).
    min: f64,
    /// Exact largest sample (`f64::NEG_INFINITY` when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: vec![0; NUM_BUCKETS],
            low: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index of a value `>= MIN_TRACKED` (clamped to the top
    /// bucket above `MAX_TRACKED`).
    fn index_of(x: f64) -> usize {
        let idx = (x.ln() / GAMMA.ln()).floor() as i64 + OFFSET;
        idx.clamp(0, NUM_BUCKETS as i64 - 1) as usize
    }

    /// The upper edge `γ^{i-OFFSET+1}` of bucket `i` — the quantile
    /// representative guaranteeing `exact <= estimate <= exact * GAMMA`.
    fn upper_edge(i: usize) -> f64 {
        GAMMA.powi((i as i64 - OFFSET + 1) as i32)
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative, NaN, or infinite — the measurement
    /// pipeline only sketches non-negative delays and shares.
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "sketch input must be finite and non-negative, got {x}"
        );
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < MIN_TRACKED {
            self.low += 1;
        } else {
            self.buckets[Self::index_of(x)] += 1;
        }
    }

    /// Records every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Folds another sketch into this one.
    ///
    /// The merge is element-wise addition of bucket counts plus exact
    /// min/max folding — fully associative and commutative, so any merge
    /// tree over the same per-run sketches produces the bit-identical
    /// result (the property the sharded engine and sweeps rely on).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.low += other.low;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile estimate, within the documented
    /// [`RELATIVE_ERROR`] of the exact [`Cdf`](crate::Cdf) answer (rank
    /// selection mirrors `Cdf::quantile`: rank `ceil(q*n)` clamped to
    /// `[1, n]`).
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty sketch");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.low {
            return 0.0;
        }
        let mut cum = self.low;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The exact rank-`rank` sample lies inside bucket `i`
                // (bucketing is monotone), so the upper edge over-estimates
                // it by at most a factor of GAMMA. Cap at the exact max so
                // q = 1 never overshoots the sample range.
                return Self::upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Projects the sketch onto a fixed-width [`Histogram`] over
    /// `[lo, hi)` — the streaming replacement for building a histogram
    /// from raw rows. Each log bucket contributes its full count at its
    /// quantile representative (upper edge capped at the observed max),
    /// so bins are accurate to the same ~[`RELATIVE_ERROR`] displacement.
    ///
    /// # Panics
    ///
    /// Propagates [`Histogram::new`]'s panics on an invalid range.
    pub fn to_histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        if self.count == 0 {
            return h;
        }
        for _ in 0..self.low {
            h.record(0.0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let x = Self::upper_edge(i).min(self.max);
            for _ in 0..c {
                h.record(x);
            }
        }
        h
    }
}

impl fmt::Display for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "sketch(n=0)");
        }
        write!(
            f,
            "sketch(n={}, p10={:.3}, p50={:.3}, p90={:.3}, p99={:.3})",
            self.count,
            self.quantile(0.10),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cdf;
    use proptest::prelude::*;

    #[test]
    fn offset_and_range_constants_are_consistent() {
        assert_eq!(-((MIN_TRACKED.ln() / GAMMA.ln()).floor() as i64), OFFSET);
        // MIN_TRACKED maps to the first bucket, MAX_TRACKED fits below the top.
        assert_eq!(QuantileSketch::index_of(MIN_TRACKED), 0);
        assert!(QuantileSketch::index_of(MAX_TRACKED) < NUM_BUCKETS - 1);
        // Upper edges bound their bucket contents.
        for x in [1e-9, 1e-3, 0.5, 1.0, 13.3, 400.0, 1e6, 9.9e11] {
            let i = QuantileSketch::index_of(x);
            let upper = QuantileSketch::upper_edge(i);
            assert!(x <= upper * (1.0 + 1e-12), "{x} above edge {upper}");
            assert!(
                upper <= x * GAMMA * (1.0 + 1e-12),
                "{x} edge {upper} too far"
            );
        }
    }

    #[test]
    fn quantiles_track_the_exact_cdf() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.37).collect();
        let mut s = QuantileSketch::new();
        s.record_all(values.iter().copied());
        let c = Cdf::from_values(values);
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = c.quantile(q);
            let est = s.quantile(q);
            assert!(
                est >= exact * (1.0 - 1e-12) && est <= exact * GAMMA * (1.0 + 1e-12),
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.min(), Some(0.37));
        assert_eq!(s.max(), Some(3700.0));
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn zero_and_subnormal_values_read_back_as_zero() {
        let mut s = QuantileSketch::new();
        s.record_all([0.0, 0.0, 5e-10, 1.0]);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(0.25), 0.0);
        assert!(s.quantile(1.0) >= 1.0);
        assert_eq!(s.min(), Some(0.0));
    }

    #[test]
    fn estimates_never_exceed_the_observed_max() {
        let mut s = QuantileSketch::new();
        s.record_all([2e12, 3e12]); // beyond MAX_TRACKED: clamped buckets
        assert_eq!(s.quantile(1.0), 3e12);
        assert!(s.quantile(0.5) <= 3e12);
    }

    #[test]
    fn merge_is_elementwise_and_tree_shape_independent() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let b: Vec<f64> = (0..300).map(|i| i as f64 * 2.5).collect();
        let c: Vec<f64> = (0..200).map(|i| 1000.0 / (i + 1) as f64).collect();
        let sk = |v: &[f64]| {
            let mut s = QuantileSketch::new();
            s.record_all(v.iter().copied());
            s
        };
        // ((a+b)+c) == (a+(b+c)) == one-shot, bit-for-bit.
        let mut left = sk(&a);
        left.merge(&sk(&b));
        left.merge(&sk(&c));
        let mut bc = sk(&b);
        bc.merge(&sk(&c));
        let mut right = sk(&a);
        right.merge(&bc);
        let mut oneshot = QuantileSketch::new();
        oneshot.record_all(a.iter().chain(&b).chain(&c).copied());
        assert_eq!(left, oneshot);
        assert_eq!(right, oneshot);
        // Merging an empty sketch is the identity.
        let mut x = sk(&a);
        x.merge(&QuantileSketch::new());
        assert_eq!(x, sk(&a));
    }

    #[test]
    fn histogram_projection_matches_direct_recording_within_bound() {
        let values: Vec<f64> = (0..2_000).map(|i| (i % 487) as f64).collect();
        let mut s = QuantileSketch::new();
        s.record_all(values.iter().copied());
        let h = s.to_histogram(0.0, 500.0, 25);
        assert_eq!(h.total(), 2_000);
        let mut exact = Histogram::new(0.0, 500.0, 25);
        exact.record_all(values.iter().copied());
        // Only samples within a factor GAMMA below a bin edge can shift up
        // by one bin, so each bin's error is bounded by the number of
        // samples hugging its two edges.
        let near_edge = |edge: f64| {
            values
                .iter()
                .filter(|&&v| v >= edge / GAMMA && v < edge)
                .count() as u64
        };
        for i in 0..h.bins() {
            let (lo, hi) = exact.bin_edges(i);
            let slop = near_edge(lo) + near_edge(hi);
            let (a, b) = (h.count(i), exact.count(i));
            assert!(a.abs_diff(b) <= slop, "bin {i}: {a} vs {b} (slop {slop})");
        }
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn empty_quantile_panics() {
        QuantileSketch::new().quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_input_rejected() {
        QuantileSketch::new().record(-1.0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = QuantileSketch::new();
        s.record_all([1.0, 2.0, 3.0]);
        assert!(s.to_string().contains("n=3"));
        assert_eq!(QuantileSketch::new().to_string(), "sketch(n=0)");
    }

    proptest! {
        #[test]
        fn quantiles_within_documented_bound_vs_exact_cdf(
            values in proptest::collection::vec(0.0f64..1e7, 1..400),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let mut s = QuantileSketch::new();
            s.record_all(values.iter().copied());
            let c = Cdf::from_values(values.iter().copied());
            for &q in qs.iter().chain(&[1.0]) {
                let exact = c.quantile(q);
                let est = s.quantile(q);
                if exact < MIN_TRACKED {
                    prop_assert!(est <= MIN_TRACKED);
                } else {
                    prop_assert!(
                        est >= exact * (1.0 - 1e-12),
                        "q={} est {} below exact {}", q, est, exact
                    );
                    prop_assert!(
                        est <= exact * GAMMA * (1.0 + 1e-12),
                        "q={} est {} above bound for exact {}", q, est, exact
                    );
                }
            }
        }

        #[test]
        fn sharded_merge_is_bit_identical(
            values in proptest::collection::vec(0.0f64..1e6, 0..300),
            shards in 1usize..9,
        ) {
            let mut oneshot = QuantileSketch::new();
            oneshot.record_all(values.iter().copied());
            // Round-robin partition, then fold per-shard sketches.
            let mut parts = vec![QuantileSketch::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                parts[i % shards].record(v);
            }
            let mut merged = QuantileSketch::new();
            for p in &parts {
                merged.merge(p);
            }
            prop_assert_eq!(merged, oneshot);
        }
    }
}
