//! Streaming, composable campaign metrics.
//!
//! The paper's claims are statistics *across* runs; a results API that
//! retains every run's full [`CampaignData`](ethmeter_measure::CampaignData)
//! bounds grid size by RAM instead of CPU. A [`Metric`] is the streaming
//! alternative: it sees each [`CampaignOutcome`] once, reduces it to a
//! compact summary, and merges with other instances — so a thousand-run
//! [`Grid`](crate::grid::Grid) runs at roughly the memory footprint of a
//! single campaign.
//!
//! # Determinism contract
//!
//! [`Grid::run`](crate::grid::Grid::run) clones the caller's prototype
//! metric once per job, lets the clone observe exactly one outcome on
//! whatever worker thread executed the job, and then folds the per-job
//! instances together **in grid order** on the coordinating thread. The
//! observe/merge sequence is therefore a pure function of the grid — never
//! of thread count or scheduling — so every metric result (floating-point
//! accumulation included) is bit-identical from `threads(1)` to
//! `threads(N)`.
//!
//! # Composition
//!
//! Tuples of metrics are metrics: `(RetainRuns::new(), Analyze::new(...))`
//! computes both in one pass. [`PerPoint`] lifts any metric into a
//! per-grid-point family, which is how cross-seed aggregation per scenario
//! configuration is expressed.

use std::sync::Arc;

use ethmeter_analysis::Reduce;

use crate::grid::GridPoint;
use crate::runner::CampaignOutcome;
use crate::scenario::Scenario;

/// Everything a metric may know about the run it is observing, beyond the
/// outcome itself.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx<'a> {
    /// Job index in grid order (point-major, then seed).
    pub index: usize,
    /// Index of the scenario-axis grid point.
    pub point_index: usize,
    /// Index into the seed axis.
    pub seed_index: usize,
    /// The seed this run used.
    pub seed: u64,
    /// Structured coordinates of the scenario-axis grid point.
    pub point: &'a GridPoint,
    /// The fully materialized scenario the run executed.
    pub scenario: &'a Scenario,
}

/// A streaming collector of campaign outcomes.
///
/// Implementations must uphold the merge-order contract documented at the
/// [module level](self): `merge` is called on per-job instances in grid
/// order, and the result must depend only on that sequence.
pub trait Metric: Send {
    /// What [`Metric::finish`] produces.
    type Output;

    /// Observes one run's outcome. Reduce it now — the outcome is dropped
    /// when this returns (unless the metric itself retains it, as
    /// [`RetainRuns`] does).
    fn observe(&mut self, ctx: &RunCtx<'_>, outcome: &CampaignOutcome);

    /// Observes an outcome the caller no longer needs. The grid calls
    /// this (each job observes exactly once), so retaining collectors
    /// can take ownership instead of deep-cloning the dataset —
    /// [`RetainRuns`] overrides it. The default delegates to
    /// [`Metric::observe`]; composite metrics (tuples) keep the default
    /// because ownership cannot be split between members.
    fn observe_owned(&mut self, ctx: &RunCtx<'_>, outcome: CampaignOutcome)
    where
        Self: Sized,
    {
        self.observe(ctx, &outcome);
    }

    /// Absorbs another instance of the same metric (cloned from the same
    /// prototype). `other`'s observations are from later grid positions
    /// than `self`'s.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Produces the final value once every run has been observed and
    /// merged.
    fn finish(self) -> Self::Output
    where
        Self: Sized;
}

// ---------------------------------------------------------------------------
// RetainRuns: the back-compat collector.

/// One run kept in full by [`RetainRuns`].
#[derive(Debug, Clone)]
pub struct RetainedRun {
    /// Job index in grid order.
    pub index: usize,
    /// The seed this run used.
    pub seed: u64,
    /// The scenario-axis coordinates of the run.
    pub point: GridPoint,
    /// The complete campaign result.
    pub outcome: CampaignOutcome,
}

/// Retains every [`CampaignOutcome`] — the legacy `SweepOutcome::runs`
/// behavior as a metric.
///
/// Memory grows linearly with the grid (each retained outcome holds the
/// observer logs and the full ground-truth tree), so prefer streaming
/// metrics for large grids; this collector exists for tests and tooling
/// that genuinely need every dataset.
#[derive(Debug, Default, Clone)]
pub struct RetainRuns {
    runs: Vec<RetainedRun>,
}

impl RetainRuns {
    /// A collector retaining nothing yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Metric for RetainRuns {
    type Output = Vec<RetainedRun>;

    fn observe(&mut self, ctx: &RunCtx<'_>, outcome: &CampaignOutcome) {
        self.observe_owned(ctx, outcome.clone());
    }

    /// Ownership fast path: a directly-retained outcome (the `Sweep`
    /// case) is moved in, never deep-cloned.
    fn observe_owned(&mut self, ctx: &RunCtx<'_>, outcome: CampaignOutcome) {
        self.runs.push(RetainedRun {
            index: ctx.index,
            seed: ctx.seed,
            point: ctx.point.clone(),
            outcome,
        });
    }

    fn merge(&mut self, other: Self) {
        self.runs.extend(other.runs);
    }

    fn finish(self) -> Vec<RetainedRun> {
        self.runs
    }
}

// ---------------------------------------------------------------------------
// Analyze: lift any ethmeter-analysis reduction into a metric.

/// Adapts an [`ethmeter_analysis::Reduce`] accumulator into a [`Metric`].
///
/// ```
/// use ethmeter_core::metric::Analyze;
/// use ethmeter_core::analysis::propagation::Propagation;
///
/// let metric = Analyze::new(Propagation::new()); // Output: PropagationReport
/// # let _ = metric;
/// ```
#[derive(Debug, Clone, Default)]
pub struct Analyze<R>(pub R);

impl<R> Analyze<R> {
    /// Wraps a configured (empty) reduction accumulator.
    pub fn new(reduce: R) -> Self {
        Analyze(reduce)
    }
}

impl<R: Reduce + Send> Metric for Analyze<R> {
    type Output = R::Report;

    fn observe(&mut self, _ctx: &RunCtx<'_>, outcome: &CampaignOutcome) {
        self.0.observe(&outcome.campaign);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }

    fn finish(self) -> R::Report {
        self.0.finish()
    }
}

// ---------------------------------------------------------------------------
// PerPoint: per-grid-point metric families.

/// Runs an independent copy of `M` for every scenario-axis grid point,
/// yielding `(point, output)` pairs in point order — the building block
/// of "aggregate across seeds, split by configuration".
#[derive(Debug, Clone)]
pub struct PerPoint<M> {
    proto: M,
    /// `(point index, point, accumulated metric)`, ascending point index.
    slots: Vec<(usize, GridPoint, M)>,
}

impl<M: Clone> PerPoint<M> {
    /// Wraps the per-point prototype metric.
    pub fn new(proto: M) -> Self {
        PerPoint {
            proto,
            slots: Vec::new(),
        }
    }

    fn slot(&mut self, point_index: usize, point: &GridPoint) -> &mut M {
        let pos = match self.slots.binary_search_by_key(&point_index, |s| s.0) {
            Ok(pos) => pos,
            Err(pos) => {
                self.slots
                    .insert(pos, (point_index, point.clone(), self.proto.clone()));
                pos
            }
        };
        &mut self.slots[pos].2
    }
}

impl<M: Metric + Clone> Metric for PerPoint<M> {
    type Output = Vec<(GridPoint, M::Output)>;

    fn observe(&mut self, ctx: &RunCtx<'_>, outcome: &CampaignOutcome) {
        self.slot(ctx.point_index, ctx.point).observe(ctx, outcome);
    }

    fn merge(&mut self, other: Self) {
        for (idx, point, m) in other.slots {
            match self.slots.binary_search_by_key(&idx, |s| s.0) {
                Ok(pos) => self.slots[pos].2.merge(m),
                Err(pos) => self.slots.insert(pos, (idx, point, m)),
            }
        }
    }

    fn finish(self) -> Self::Output {
        self.slots
            .into_iter()
            .map(|(_, point, m)| (point, m.finish()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Scalars: named per-run scalar probes -> a cross-seed GridReport.

/// A named per-run scalar extraction.
type ProbeFn = Arc<dyn Fn(&RunCtx<'_>, &CampaignOutcome) -> f64 + Send + Sync>;

/// Extracts named scalar statistics from every run and aggregates them
/// across seeds per grid point, finishing into a
/// [`GridReport`](crate::report::GridReport).
///
/// This is the one-stop results-table metric: declare the columns once,
/// run the grid, and print/export mean ± stddev (plus the
/// percentile-of-percentiles spread) for every scenario configuration.
///
/// ```
/// use ethmeter_core::metric::Scalars;
///
/// let metric = Scalars::new()
///     .column("head_number", |_, o| o.campaign.truth.tree.head_number() as f64)
///     .column("events", |_, o| o.events as f64);
/// # let _ = metric;
/// ```
#[derive(Clone, Default)]
pub struct Scalars {
    columns: Vec<(String, ProbeFn)>,
    /// `(point index, point, per-column per-run values)`, ascending index.
    slots: Vec<(usize, GridPoint, Vec<Vec<f64>>)>,
}

impl Scalars {
    /// A probe set with no columns yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named column extracted from every run.
    ///
    /// A probe returning a non-finite value (NaN/infinity) does not
    /// panic: the sample is excluded from that cell's aggregation and
    /// the cell's `runs` count reflects only finite values.
    #[must_use]
    pub fn column<F>(mut self, name: impl Into<String>, probe: F) -> Self
    where
        F: Fn(&RunCtx<'_>, &CampaignOutcome) -> f64 + Send + Sync + 'static,
    {
        assert!(
            self.slots.is_empty(),
            "add columns before observing any runs"
        );
        self.columns.push((name.into(), Arc::new(probe)));
        self
    }

    /// Column names, in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(n, _)| n.clone()).collect()
    }
}

impl std::fmt::Debug for Scalars {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scalars")
            .field("columns", &self.column_names())
            .field("points_observed", &self.slots.len())
            .finish()
    }
}

impl Metric for Scalars {
    type Output = crate::report::GridReport;

    fn observe(&mut self, ctx: &RunCtx<'_>, outcome: &CampaignOutcome) {
        let values: Vec<Vec<f64>> = self
            .columns
            .iter()
            .map(|(_, probe)| vec![probe(ctx, outcome)])
            .collect();
        match self.slots.binary_search_by_key(&ctx.point_index, |s| s.0) {
            Ok(pos) => {
                for (col, v) in self.slots[pos].2.iter_mut().zip(values) {
                    col.extend(v);
                }
            }
            Err(pos) => self
                .slots
                .insert(pos, (ctx.point_index, ctx.point.clone(), values)),
        }
    }

    fn merge(&mut self, other: Self) {
        for (idx, point, values) in other.slots {
            match self.slots.binary_search_by_key(&idx, |s| s.0) {
                Ok(pos) => {
                    for (col, v) in self.slots[pos].2.iter_mut().zip(values) {
                        col.extend(v);
                    }
                }
                Err(pos) => self.slots.insert(pos, (idx, point, values)),
            }
        }
    }

    fn finish(self) -> crate::report::GridReport {
        crate::report::GridReport::from_samples(
            self.column_names(),
            self.slots
                .into_iter()
                .map(|(_, point, values)| (point, values))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Tuple composition.

macro_rules! tuple_metric {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Metric),+> Metric for ($($name,)+) {
            type Output = ($($name::Output,)+);

            fn observe(&mut self, ctx: &RunCtx<'_>, outcome: &CampaignOutcome) {
                $(self.$idx.observe(ctx, outcome);)+
            }

            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }

            fn finish(self) -> Self::Output {
                ($(self.$idx.finish(),)+)
            }
        }
    };
}

tuple_metric!(A: 0);
tuple_metric!(A: 0, B: 1);
tuple_metric!(A: 0, B: 1, C: 2);
tuple_metric!(A: 0, B: 1, C: 2, D: 3);
tuple_metric!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_metric!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
