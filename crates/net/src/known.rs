//! Bounded "known items" sets.
//!
//! Geth tracks, per peer, which block/transaction hashes that peer is known
//! to have (`knownBlocks`, `knownTxs`), bounded to avoid unbounded memory.
//! The bound matters behaviorally: once evicted, an item may be re-sent,
//! which is one source of the redundant receptions measured in Table II.
//!
//! Three implementations share the contract:
//!
//! - [`KnownSet`] — the generic original (`FxHashSet` + FIFO queue), kept as
//!   the reference model for equivalence testing and for cold paths;
//! - [`DenseKnownSet`] — the hot-path replacement over interned `u32`
//!   keys: a linear-probing table with multiplicative hashing and
//!   backward-shift deletion;
//! - [`PeerKnownSet`] — a whole *family* of bounded sets (one per peer of
//!   a node) sharing a key-major bitmap. Transaction gossip floods one
//!   recent key across every peer link of a node in a tight time window;
//!   with per-peer probe tables each of those operations lands in a
//!   different table (a cache miss per insert — measured as the single
//!   largest cost of the simulation hot path), whereas key-major rows put
//!   all of a key's per-peer bits on the same cache line.

use std::collections::VecDeque;
use std::hash::Hash;

use ethmeter_types::FxHashSet;

/// A FIFO-bounded set: inserting beyond capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct KnownSet<T> {
    set: FxHashSet<T>,
    order: VecDeque<T>,
    cap: usize,
}

impl<T: Copy + Eq + Hash> KnownSet<T> {
    /// Creates a set bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "known-set capacity must be positive");
        // Storage grows on demand: a simulation holds one known-set per
        // (node, peer) pair, so eager preallocation would dominate memory.
        KnownSet {
            set: FxHashSet::default(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// True if `item` is currently tracked.
    pub fn contains(&self, item: T) -> bool {
        self.set.contains(&item)
    }

    /// Inserts `item`; returns `true` if it was new. Evicts the oldest
    /// entry when full.
    pub fn insert(&mut self, item: T) -> bool {
        if !self.set.insert(item) {
            return false;
        }
        self.order.push_back(item);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Current number of tracked items.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Sentinel marking an empty probe-table slot (keys must stay below it —
/// interned slots are sequential, so a campaign would need 4 billion
/// artifacts to collide).
const EMPTY: u32 = u32::MAX;

/// A FIFO-bounded set of interned `u32` keys; behaviorally identical to
/// [`KnownSet`] (same insert/contains results, same eviction order) but
/// backed by a flat linear-probing table.
///
/// The table grows lazily from empty — a simulation holds one set per
/// (node, peer) pair, most of which stay far below capacity — and is
/// bounded by `cap`, so memory is O(min(items, cap)).
#[derive(Debug, Clone)]
pub struct DenseKnownSet {
    /// Linear-probing table of keys; `EMPTY` marks free slots. Length is
    /// always a power of two (or zero before the first insert).
    table: Vec<u32>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u32>,
    cap: usize,
}

impl DenseKnownSet {
    /// Creates a set bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "known-set capacity must be positive");
        DenseKnownSet {
            table: Vec::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Fibonacci-hash bucket of `key` in the current table.
    #[inline]
    fn bucket(&self, key: u32) -> usize {
        debug_assert!(!self.table.is_empty());
        let h = u64::from(key).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (self.table.len() - 1)
    }

    /// True if `key` is currently tracked.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        if self.table.is_empty() {
            return false;
        }
        let mut i = self.bucket(key);
        loop {
            match self.table[i] {
                EMPTY => return false,
                k if k == key => return true,
                _ => i = (i + 1) & (self.table.len() - 1),
            }
        }
    }

    /// Inserts `key`; returns `true` if it was new. Evicts the oldest
    /// entry when full.
    ///
    /// # Panics
    ///
    /// Panics if `key == u32::MAX` (reserved sentinel).
    pub fn insert(&mut self, key: u32) -> bool {
        assert_ne!(key, EMPTY, "u32::MAX is reserved");
        // Keep load factor ≤ 1/2 while below the bound; at the bound the
        // table is fixed and eviction holds occupancy constant.
        if self.table.len() < 2 * (self.order.len() + 1) {
            // Growth path (rare): membership check, then rebuild + place.
            if self.contains(key) {
                return false;
            }
            self.grow();
            self.insert_slot(key);
        } else {
            // Hot path: one fused probe walk either finds the key
            // (present — no-op) or the first empty slot, which is exactly
            // where `insert_slot` would place it.
            let mask = self.table.len() - 1;
            let mut i = self.bucket(key);
            loop {
                match self.table[i] {
                    EMPTY => {
                        self.table[i] = key;
                        break;
                    }
                    k if k == key => return false,
                    _ => i = (i + 1) & mask,
                }
            }
        }
        self.order.push_back(key);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.erase(old);
            }
        }
        true
    }

    /// Current number of tracked keys.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Forgets every key, keeping the probe table's allocation. A cleared
    /// set answers every query exactly like a fresh one (the table size
    /// only affects probe positions, never membership or eviction).
    pub fn clear(&mut self) {
        self.table.fill(EMPTY);
        self.order.clear();
    }

    /// [`DenseKnownSet::clear`] plus a new capacity bound — the reuse
    /// path for per-peer sets whose configuration may change between
    /// campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn reset(&mut self, cap: usize) {
        assert!(cap > 0, "known-set capacity must be positive");
        self.cap = cap;
        self.clear();
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2)
            .max(16)
            .min((2 * self.cap + 1).next_power_of_two());
        if new_len == self.table.len() {
            return;
        }
        self.table = vec![EMPTY; new_len];
        // Rebuild from the order queue (it holds exactly the live keys).
        for i in 0..self.order.len() {
            let key = self.order[i];
            self.insert_slot(key);
        }
    }

    /// Places `key` in its probe slot; the caller guarantees it is absent
    /// and that a free slot exists.
    #[inline]
    fn insert_slot(&mut self, key: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.bucket(key);
        while self.table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.table[i] = key;
    }

    /// Removes `key` using backward-shift deletion, keeping every probe
    /// chain contiguous (no tombstones, so lookups never degrade).
    fn erase(&mut self, key: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match self.table[i] {
                EMPTY => return, // not present (cannot happen for live keys)
                k if k == key => break,
                _ => i = (i + 1) & mask,
            }
        }
        // Slot i is now free; pull back any displaced successors.
        let mut j = i;
        loop {
            self.table[i] = EMPTY;
            loop {
                j = (j + 1) & mask;
                let k = self.table[j];
                if k == EMPTY {
                    return;
                }
                // Move k back iff its home bucket is outside the cyclic
                // range (i, j] — i.e. probing for k would pass through i.
                let home = self.bucket(k);
                if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                    self.table[i] = k;
                    break;
                }
            }
            i = j;
        }
    }
}

/// Rows per bitmap page (power of two).
const PAGE_ROWS: usize = 1024;

/// One page of the key-major bitmap: `PAGE_ROWS × words` bits plus a
/// live-bit count so fully evicted pages can be freed.
#[derive(Debug, Clone)]
struct Page {
    bits: Vec<u64>,
    live: u32,
}

/// A family of FIFO-bounded known-sets — one per peer position of a node
/// — over dense `u32` keys, sharing one key-major bitmap.
///
/// Behaviorally, `(insert, contains)` on peer `p` is identical to an
/// independent [`KnownSet`]/[`DenseKnownSet`] per peer (same results,
/// same per-peer FIFO eviction; pinned by the `peer_family_*` property
/// tests below against a per-peer [`KnownSet`] model). The
/// difference is layout: bit `p` of row `key` lives next to every other
/// peer's bit for the same key, so the flood of one fresh key across all
/// of a node's links touches one or two cache lines instead of one probe
/// table per peer.
///
/// Memory is bounded: rows live in [`PAGE_ROWS`]-row pages that are
/// allocated on first touch and freed when eviction clears their last
/// bit, so steady state holds only the sliding window of recent keys
/// (`≈ cap` rows), not the whole campaign's key space.
#[derive(Debug, Clone, Default)]
pub struct PeerKnownSet {
    /// `pages[key / PAGE_ROWS]`, each `PAGE_ROWS × words` bits.
    pages: Vec<Option<Page>>,
    /// Per-peer insertion order for FIFO eviction.
    order: Vec<VecDeque<u32>>,
    /// Per-peer capacity bound.
    caps: Vec<usize>,
    /// `u64` words per row — sized to the highest peer position.
    words: usize,
    /// Cleared order queues parked across `clear` for reuse.
    spare: Vec<VecDeque<u32>>,
}

impl PeerKnownSet {
    /// Creates an empty family with no peers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the next peer position with its capacity bound and
    /// returns that position. Positions are dense (0, 1, 2, …), matching
    /// the node's connection-order peer slab.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`, or if a peer is added after keys were
    /// inserted and the row width would have to grow (peers are wired
    /// before gossip starts, so this cannot happen in a simulation).
    pub fn add_peer(&mut self, cap: usize) -> usize {
        assert!(cap > 0, "known-set capacity must be positive");
        let pos = self.caps.len();
        self.caps.push(cap);
        self.order.push(self.spare.pop().unwrap_or_default());
        let needed = pos / 64 + 1;
        if needed > self.words {
            assert!(
                self.pages.iter().all(Option::is_none),
                "cannot widen rows after keys were inserted"
            );
            self.words = needed;
        }
        pos
    }

    /// Number of registered peers.
    pub fn peers(&self) -> usize {
        self.caps.len()
    }

    /// Number of keys currently tracked for peer `pos`.
    pub fn len_of(&self, pos: usize) -> usize {
        self.order[pos].len()
    }

    /// True if peer `pos` is known to have `key`.
    #[inline]
    pub fn contains(&self, pos: usize, key: u32) -> bool {
        let row = key as usize;
        match self.pages.get(row / PAGE_ROWS) {
            Some(Some(page)) => {
                let at = (row % PAGE_ROWS) * self.words + pos / 64;
                page.bits[at] & (1u64 << (pos % 64)) != 0
            }
            _ => false,
        }
    }

    /// Inserts `key` for peer `pos`; returns `true` if it was new for
    /// that peer. Evicts the peer's oldest key when its bound is full —
    /// exactly [`KnownSet`] semantics per peer.
    #[inline]
    pub fn insert(&mut self, pos: usize, key: u32) -> bool {
        let row = key as usize;
        let page_idx = row / PAGE_ROWS;
        let at = (row % PAGE_ROWS) * self.words + pos / 64;
        let mask = 1u64 << (pos % 64);
        // Hot path: the key's page exists (it covers the sliding window
        // of recent keys, which is where gossip lives).
        match self.pages.get_mut(page_idx) {
            Some(Some(page)) => {
                let bits = &mut page.bits[at];
                if *bits & mask != 0 {
                    return false;
                }
                *bits |= mask;
                page.live += 1;
            }
            _ => self.insert_cold(page_idx, at, mask),
        }
        self.order[pos].push_back(key);
        if self.order[pos].len() > self.caps[pos] {
            if let Some(old) = self.order[pos].pop_front() {
                self.clear_bit(pos, old);
            }
        }
        true
    }

    /// Page-fault path of [`PeerKnownSet::insert`]: allocates the page
    /// and sets the (necessarily fresh) bit.
    #[cold]
    fn insert_cold(&mut self, page_idx: usize, at: usize, mask: u64) {
        if page_idx >= self.pages.len() {
            self.pages.resize(page_idx + 1, None);
        }
        let words = self.words;
        let page = self.pages[page_idx].get_or_insert_with(|| Page {
            bits: vec![0; PAGE_ROWS * words],
            live: 0,
        });
        debug_assert_eq!(page.bits[at] & mask, 0, "fresh page has no set bits");
        page.bits[at] |= mask;
        page.live += 1;
    }

    /// Unregisters peer position `pos`, forgetting its keys and
    /// compacting the slab by moving the *last* position into `pos`
    /// (swap-remove, mirroring `Vec::swap_remove` so callers can keep
    /// their own peer slabs in lockstep).
    ///
    /// The row width (`words`) never shrinks: a position re-registered
    /// later lands at an index at or below the historical maximum, so
    /// runtime rejoin/heal paths can never trip the widen-after-insert
    /// assertion in [`PeerKnownSet::add_peer`].
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not a registered position.
    pub fn remove_peer(&mut self, pos: usize) {
        let last = self.caps.len() - 1;
        let mut dead = std::mem::take(&mut self.order[pos]);
        while let Some(key) = dead.pop_front() {
            self.clear_bit(pos, key);
        }
        self.spare.push(dead);
        if pos != last {
            // Relocate the last position's bits down to `pos`, key by
            // key. Set before clear: both bits share the key's page, so
            // this keeps its live count above zero throughout and the
            // page is never freed mid-move.
            for i in 0..self.order[last].len() {
                let key = self.order[last][i];
                self.set_bit(pos, key);
                self.clear_bit(last, key);
            }
        }
        self.order.swap_remove(pos);
        self.caps.swap_remove(pos);
    }

    /// Sets peer `pos`'s bit for `key`; the caller guarantees the bit is
    /// currently clear. Allocates the page if the key row has none.
    fn set_bit(&mut self, pos: usize, key: u32) {
        let row = key as usize;
        let page_idx = row / PAGE_ROWS;
        let at = (row % PAGE_ROWS) * self.words + pos / 64;
        let mask = 1u64 << (pos % 64);
        match self.pages.get_mut(page_idx) {
            Some(Some(page)) => {
                debug_assert_eq!(page.bits[at] & mask, 0, "set_bit of a live bit");
                page.bits[at] |= mask;
                page.live += 1;
            }
            _ => self.insert_cold(page_idx, at, mask),
        }
    }

    /// Clears peer `pos`'s bit for `key`, freeing the page if it was the
    /// last live bit.
    fn clear_bit(&mut self, pos: usize, key: u32) {
        let row = key as usize;
        let page_idx = row / PAGE_ROWS;
        let slot = self.pages[page_idx]
            .as_mut()
            .expect("live keys have a page");
        let at = (row % PAGE_ROWS) * self.words + pos / 64;
        let mask = 1u64 << (pos % 64);
        debug_assert!(slot.bits[at] & mask != 0, "order holds only live keys");
        slot.bits[at] &= !mask;
        slot.live -= 1;
        if slot.live == 0 {
            // Backstop for the page/bitmap invariant: `live` counts set
            // bits, so a page released at live == 0 must be all-zero —
            // a drifted counter here would silently forget live keys.
            debug_assert!(
                slot.bits.iter().all(|&w| w == 0),
                "page freed with live bits: live counter diverged from bitmap"
            );
            // The sliding eviction window has moved past this page:
            // release it so memory tracks the window, not the campaign.
            self.pages[page_idx] = None;
        }
    }

    /// Forgets every key and every peer, parking the order queues for
    /// reuse by the next [`PeerKnownSet::add_peer`] round. A cleared
    /// family behaves exactly like a new one; peers must be
    /// re-registered. (Bitmap pages are dropped: they track the sliding
    /// eviction window and are reallocated lazily, a handful of
    /// page-sized allocations per campaign.)
    pub fn clear(&mut self) {
        self.pages.clear();
        for mut q in self.order.drain(..) {
            q.clear();
            self.spare.push(q);
        }
        self.caps.clear();
        self.words = 0;
    }

    /// Bytes currently held by live bitmap pages (diagnostics).
    pub fn page_bytes(&self) -> usize {
        self.pages
            .iter()
            .flatten()
            .map(|p| p.bits.len() * std::mem::size_of::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = KnownSet::with_capacity(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut s = KnownSet::with_capacity(3);
        for i in 0..3 {
            s.insert(i);
        }
        assert_eq!(s.len(), 3);
        s.insert(3); // evicts 0
        assert_eq!(s.len(), 3);
        assert!(!s.contains(0));
        assert!(s.contains(1) && s.contains(2) && s.contains(3));
        // Re-inserting the evicted item works (and evicts 1).
        assert!(s.insert(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn duplicate_insert_does_not_evict() {
        let mut s = KnownSet::with_capacity(2);
        s.insert(1);
        s.insert(2);
        s.insert(2); // no-op
        assert!(s.contains(1), "duplicate insert must not evict");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: KnownSet<u32> = KnownSet::with_capacity(0);
    }

    #[test]
    fn dense_set_matches_reference_on_basics() {
        let mut s = DenseKnownSet::with_capacity(3);
        assert!(s.is_empty());
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(10));
        assert!(!s.contains(11));
        for k in [11, 12, 13] {
            assert!(s.insert(k)); // 13 evicts 10
        }
        assert_eq!(s.len(), 3);
        assert!(!s.contains(10));
        assert!(s.contains(11) && s.contains(12) && s.contains(13));
        // Duplicate insert must not evict.
        assert!(!s.insert(13));
        assert!(s.contains(11));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn dense_set_rejects_sentinel_key() {
        let mut s = DenseKnownSet::with_capacity(4);
        s.insert(u32::MAX);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dense_zero_capacity_rejected() {
        let _ = DenseKnownSet::with_capacity(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The dense replacement must be observationally identical to the
        /// original [`KnownSet`] — same insert results, same membership,
        /// same FIFO eviction — under arbitrary key streams and small
        /// capacities (small caps maximize evictions, the hard part of
        /// backward-shift deletion).
        #[test]
        fn dense_set_equivalent_to_knownset_model(
            cap in 1usize..24,
            keys in proptest::collection::vec(0u32..48, 0..256),
        ) {
            let mut dense = DenseKnownSet::with_capacity(cap);
            let mut model: KnownSet<u32> = KnownSet::with_capacity(cap);
            for &k in &keys {
                prop_assert_eq!(dense.insert(k), model.insert(k), "insert {}", k);
                prop_assert_eq!(dense.len(), model.len());
                // Full-universe membership sweep after every operation.
                for probe in 0..48u32 {
                    prop_assert_eq!(
                        dense.contains(probe),
                        model.contains(probe),
                        "probe {} after inserting {}",
                        probe,
                        k
                    );
                }
            }
        }

        /// Same equivalence under adversarial clustering: keys drawn from
        /// a tiny residue class collide heavily in the probe table,
        /// stressing displacement chains across wrap-around.
        #[test]
        fn dense_set_survives_heavy_collisions(
            cap in 1usize..12,
            seeds in proptest::collection::vec(0u32..8, 0..192),
        ) {
            let mut dense = DenseKnownSet::with_capacity(cap);
            let mut model: KnownSet<u32> = KnownSet::with_capacity(cap);
            for &s in &seeds {
                // Multiples of 16 share low bits; with a 16-slot table all
                // of them fight for a handful of buckets.
                let k = s * 16;
                prop_assert_eq!(dense.insert(k), model.insert(k));
                for probe in 0..8u32 {
                    prop_assert_eq!(dense.contains(probe * 16), model.contains(probe * 16));
                }
            }
            prop_assert_eq!(dense.len(), model.len());
        }
    }
}

#[cfg(test)]
mod peer_family_tests {
    use super::*;

    #[test]
    fn per_peer_independence_and_eviction() {
        let mut fam = PeerKnownSet::new();
        assert_eq!(fam.add_peer(2), 0);
        assert_eq!(fam.add_peer(3), 1);
        assert_eq!(fam.peers(), 2);
        // Peer 0 fills and evicts; peer 1 is untouched by it.
        assert!(fam.insert(0, 10));
        assert!(!fam.insert(0, 10), "duplicate per peer");
        assert!(fam.insert(0, 11));
        assert!(fam.insert(0, 12)); // evicts 10 for peer 0
        assert!(!fam.contains(0, 10));
        assert!(fam.contains(0, 11) && fam.contains(0, 12));
        assert!(!fam.contains(1, 11), "peers are independent");
        assert!(fam.insert(1, 11));
        assert!(fam.contains(1, 11));
        assert_eq!(fam.len_of(0), 2);
        assert_eq!(fam.len_of(1), 1);
    }

    #[test]
    fn pages_free_as_the_window_slides() {
        let mut fam = PeerKnownSet::new();
        fam.add_peer(4);
        // Walk keys across several pages with a tiny cap: old pages must
        // be released once eviction clears their last bit.
        for key in 0..(PAGE_ROWS as u32 * 3) {
            fam.insert(0, key);
        }
        assert_eq!(fam.len_of(0), 4);
        assert!(
            fam.page_bytes() <= 2 * PAGE_ROWS * std::mem::size_of::<u64>(),
            "stale pages must be freed, held {} bytes",
            fam.page_bytes()
        );
        // Keys far behind the window read as absent.
        assert!(!fam.contains(0, 0));
    }

    #[test]
    fn clear_requires_reregistration_and_forgets_everything() {
        let mut fam = PeerKnownSet::new();
        fam.add_peer(8);
        fam.insert(0, 5);
        fam.clear();
        assert_eq!(fam.peers(), 0);
        assert_eq!(fam.add_peer(8), 0);
        assert!(!fam.contains(0, 5), "cleared families forget");
        assert!(fam.insert(0, 5));
    }

    #[test]
    fn remove_peer_swap_removes_and_keeps_survivors_intact() {
        let mut fam = PeerKnownSet::new();
        for _ in 0..3 {
            fam.add_peer(4);
        }
        fam.insert(0, 1);
        fam.insert(1, 2);
        fam.insert(1, 3);
        fam.insert(2, 4);
        // Removing the middle position moves position 2 down into it.
        fam.remove_peer(1);
        assert_eq!(fam.peers(), 2);
        assert!(fam.contains(0, 1), "untouched peer keeps its keys");
        assert!(fam.contains(1, 4), "last peer's keys moved to the hole");
        assert!(
            !fam.contains(1, 2) && !fam.contains(1, 3),
            "removed peer forgotten"
        );
        assert_eq!(fam.len_of(1), 1);
        // Re-registering lands at the vacated dense position.
        assert_eq!(fam.add_peer(4), 2);
        assert!(!fam.contains(2, 4), "re-registered position starts empty");
        assert!(fam.insert(2, 4));
    }

    #[test]
    fn remove_peer_never_narrows_rows() {
        let mut fam = PeerKnownSet::new();
        for _ in 0..70 {
            fam.add_peer(4);
        }
        fam.insert(69, 9); // second u64 word of row 9
        for _ in 0..70 {
            fam.remove_peer(0);
        }
        assert_eq!(fam.peers(), 0);
        // Re-adding with live pages must not panic: `words` was kept at
        // its historical width by `remove_peer`.
        let mut fam2 = PeerKnownSet::new();
        for _ in 0..70 {
            fam2.add_peer(4);
        }
        fam2.insert(69, 9);
        fam2.remove_peer(69);
        assert_eq!(fam2.add_peer(4), 69);
        assert!(!fam2.contains(69, 9));
        assert!(fam2.insert(69, 9));
    }

    #[test]
    fn wide_positions_use_multiple_words() {
        let mut fam = PeerKnownSet::new();
        for _ in 0..130 {
            fam.add_peer(16);
        }
        // Positions on different u64 words of the same key row.
        assert!(fam.insert(0, 7));
        assert!(fam.insert(64, 7));
        assert!(fam.insert(129, 7));
        assert!(fam.contains(0, 7) && fam.contains(64, 7) && fam.contains(129, 7));
        assert!(!fam.contains(1, 7));
    }
}

#[cfg(test)]
mod peer_family_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The family must be observationally identical to one
        /// independent [`KnownSet`] per peer — same insert results, same
        /// membership, same FIFO eviction — under arbitrary interleaved
        /// `(peer, key)` streams. Small caps maximize evictions (and
        /// page frees); keys span multiple bitmap pages.
        #[test]
        fn peer_family_equivalent_to_independent_knownsets(
            caps in proptest::collection::vec(1usize..6, 1..6),
            ops in proptest::collection::vec((0usize..6, 0u32..2_600), 0..384),
        ) {
            let mut fam = PeerKnownSet::new();
            let mut models: Vec<KnownSet<u32>> = Vec::new();
            for &cap in &caps {
                fam.add_peer(cap);
                models.push(KnownSet::with_capacity(cap));
            }
            for &(pos, key) in &ops {
                let pos = pos % caps.len();
                prop_assert_eq!(
                    fam.insert(pos, key),
                    models[pos].insert(key),
                    "insert ({}, {})",
                    pos,
                    key
                );
                prop_assert_eq!(fam.len_of(pos), models[pos].len());
            }
            // Full membership sweep at the end, across page boundaries.
            for (pos, model) in models.iter().enumerate() {
                for probe in (0..2_600).step_by(13) {
                    prop_assert_eq!(
                        fam.contains(pos, probe),
                        model.contains(probe),
                        "probe ({}, {})",
                        pos,
                        probe
                    );
                }
            }
        }

        /// Under interleaved inserts, `remove_peer`, and re-registration,
        /// the family stays observationally identical to a `Vec` of
        /// independent [`KnownSet`]s maintained with `Vec::swap_remove`
        /// — the exact lockstep contract the node's peer slabs rely on
        /// for runtime churn.
        #[test]
        fn peer_family_equivalent_under_removal(
            ops in proptest::collection::vec((0usize..8, 0u32..2_200, 0u8..10), 1..256),
        ) {
            let mut fam = PeerKnownSet::new();
            let mut models: Vec<KnownSet<u32>> = Vec::new();
            for &(pos, key, kind) in &ops {
                if (kind == 0 && models.len() < 8) || models.is_empty() {
                    // Register a peer (cap from the key operand). Bounded
                    // to 8 concurrent peers: widening the row word-width
                    // with live pages is outside the API contract.
                    let cap = 1 + (key as usize) % 5;
                    prop_assert_eq!(fam.add_peer(cap), models.len());
                    models.push(KnownSet::with_capacity(cap));
                } else if kind == 1 && !models.is_empty() {
                    let pos = pos % models.len();
                    fam.remove_peer(pos);
                    models.swap_remove(pos);
                } else {
                    let pos = pos % models.len();
                    prop_assert_eq!(fam.insert(pos, key), models[pos].insert(key));
                }
                prop_assert_eq!(fam.peers(), models.len());
            }
            for (pos, model) in models.iter().enumerate() {
                prop_assert_eq!(fam.len_of(pos), model.len());
                for probe in (0..2_200).step_by(11) {
                    prop_assert_eq!(
                        fam.contains(pos, probe),
                        model.contains(probe),
                        "probe ({}, {})",
                        pos,
                        probe
                    );
                }
            }
        }

        /// `clear` + re-registration behaves exactly like a fresh family
        /// (the sweep-worker reuse path).
        #[test]
        fn peer_family_reuse_matches_fresh(
            first in proptest::collection::vec((0usize..4, 0u32..2_000), 0..128),
            second in proptest::collection::vec((0usize..4, 0u32..2_000), 0..128),
        ) {
            let mut reused = PeerKnownSet::new();
            for _ in 0..4 {
                reused.add_peer(3);
            }
            for &(pos, key) in &first {
                reused.insert(pos, key);
            }
            reused.clear();
            let mut fresh = PeerKnownSet::new();
            for _ in 0..4 {
                reused.add_peer(3);
                fresh.add_peer(3);
            }
            for &(pos, key) in &second {
                prop_assert_eq!(reused.insert(pos, key), fresh.insert(pos, key));
            }
            for pos in 0..4 {
                prop_assert_eq!(reused.len_of(pos), fresh.len_of(pos));
                for probe in (0..2_000).step_by(7) {
                    prop_assert_eq!(reused.contains(pos, probe), fresh.contains(pos, probe));
                }
            }
        }
    }
}
