//! Transaction mempool with Geth's pending/queued semantics.
//!
//! Geth splits a node's transaction pool into **pending** (executable now:
//! the sender's nonces form a gap-free run from the account's next nonce)
//! and **queued** (future nonces, waiting for their predecessors). This
//! split is the machinery behind the paper's §III-C2 finding: transactions
//! received out of order "must wait for their delayed predecessors before
//! committing", inflating their commit delay (Figure 5).
//!
//! Block packing follows Geth's price-sorted strategy: repeatedly take the
//! highest-gas-price *executable* transaction across accounts, respecting
//! per-sender nonce order, until the block gas limit is exhausted.
//!
//! # Example
//!
//! ```
//! use ethmeter_txpool::{AddOutcome, Mempool};
//! use ethmeter_chain::tx::{Transaction, SIMPLE_TX_GAS};
//! use ethmeter_types::{AccountId, ByteSize, NodeId, SimTime, TxId};
//!
//! let mut pool = Mempool::new();
//! let tx = |id: u64, nonce: u64, price: u64| Transaction {
//!     id: TxId(id), sender: AccountId(1), nonce, gas_price: price,
//!     gas: SIMPLE_TX_GAS, size: ByteSize::from_bytes(180),
//!     submitted_at: SimTime::ZERO, origin: NodeId(0),
//! };
//! // Nonce 1 arrives before nonce 0: it queues.
//! assert_eq!(pool.add(&tx(11, 1, 5)), AddOutcome::Queued);
//! assert_eq!(pool.add(&tx(10, 0, 5)), AddOutcome::Pending);
//! // Both are now executable, in nonce order.
//! assert_eq!(pool.pack(1_000_000), vec![TxId(10), TxId(11)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ethmeter_chain::tx::Transaction;
use ethmeter_types::{AccountId, FxHashMap, Gas, Nonce, TxId};

/// What happened when a transaction was offered to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// Executable immediately (contiguous nonce run).
    Pending,
    /// Future nonce; parked until predecessors arrive.
    Queued,
    /// Replaced a same-nonce transaction with a lower gas price.
    Replaced,
    /// Already known (same id, or same nonce at a non-better price).
    Known,
    /// Nonce below the account's committed nonce; useless.
    Stale,
}

/// The slice of a [`Transaction`] the pool needs to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TxMeta {
    id: TxId,
    gas_price: u64,
    gas: Gas,
}

/// A per-node transaction pool.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    /// sender -> nonce -> tx meta (pending and queued together; the
    /// pending/queued boundary is derived from `next_nonce`).
    ///
    /// All three maps are keyed through `FxHasher64`: account and
    /// transaction ids are small integers, so the default SipHash is pure
    /// overhead on the per-gossip-event add path. No output ever depends
    /// on map iteration order (packing tie-breaks on `(price, account)`),
    /// so the hasher choice is behavior-neutral.
    per_account: FxHashMap<AccountId, BTreeMap<Nonce, TxMeta>>,
    /// sender -> next nonce the chain expects (all lower nonces committed).
    next_nonce: FxHashMap<AccountId, Nonce>,
    /// Reverse index for membership tests.
    by_id: FxHashMap<TxId, (AccountId, Nonce)>,
}

impl Mempool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the pool currently holds this transaction.
    pub fn contains(&self, id: TxId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Number of transactions currently held (pending + queued).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if the pool holds nothing.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The next nonce the pool believes the chain expects from `sender`.
    pub fn expected_nonce(&self, sender: AccountId) -> Nonce {
        self.next_nonce.get(&sender).copied().unwrap_or(0)
    }

    /// Count of executable transactions (gap-free runs).
    pub fn pending_count(&self) -> usize {
        self.per_account
            .iter()
            .map(|(acct, txs)| {
                let mut expected = self.expected_nonce(*acct);
                let mut run = 0usize;
                for &nonce in txs.keys() {
                    if nonce == expected {
                        run += 1;
                        expected += 1;
                    } else {
                        break;
                    }
                }
                run
            })
            .sum()
    }

    /// Count of parked (future-nonce) transactions.
    pub fn queued_count(&self) -> usize {
        self.len() - self.pending_count()
    }

    /// Offers a transaction to the pool.
    pub fn add(&mut self, tx: &Transaction) -> AddOutcome {
        if self.by_id.contains_key(&tx.id) {
            return AddOutcome::Known;
        }
        let expected = self.expected_nonce(tx.sender);
        if tx.nonce < expected {
            return AddOutcome::Stale;
        }
        let slots = self.per_account.entry(tx.sender).or_default();
        if let Some(existing) = slots.get(&tx.nonce) {
            // Same-nonce replacement: require a strictly better price
            // (Geth additionally requires a 10% bump; strict improvement is
            // the behavior that matters for ordering).
            if tx.gas_price > existing.gas_price {
                let old_id = existing.id;
                slots.insert(
                    tx.nonce,
                    TxMeta {
                        id: tx.id,
                        gas_price: tx.gas_price,
                        gas: tx.gas,
                    },
                );
                self.by_id.remove(&old_id);
                self.by_id.insert(tx.id, (tx.sender, tx.nonce));
                return AddOutcome::Replaced;
            }
            return AddOutcome::Known;
        }
        slots.insert(
            tx.nonce,
            TxMeta {
                id: tx.id,
                gas_price: tx.gas_price,
                gas: tx.gas,
            },
        );
        self.by_id.insert(tx.id, (tx.sender, tx.nonce));
        // Executable iff every nonce in [expected, tx.nonce] is present.
        let txs = &self.per_account[&tx.sender];
        let contiguous = (expected..=tx.nonce).all(|n| txs.contains_key(&n));
        if contiguous {
            AddOutcome::Pending
        } else {
            AddOutcome::Queued
        }
    }

    /// Packs a block: highest-gas-price executable transactions first,
    /// respecting per-sender nonce order, until `gas_limit` is filled.
    ///
    /// Returns transaction ids in inclusion order. The pool itself is not
    /// mutated — call [`Mempool::on_block`] when the block commits.
    pub fn pack(&self, gas_limit: Gas) -> Vec<TxId> {
        let mut out = Vec::new();
        self.pack_into(gas_limit, &mut out);
        out
    }

    /// [`Mempool::pack`] into a caller-provided buffer (cleared first), so
    /// repeated packing reuses one allocation.
    pub fn pack_into(&self, gas_limit: Gas, out: &mut Vec<TxId>) {
        out.clear();
        // cursor per account: next executable nonce during this packing.
        let mut cursors: FxHashMap<AccountId, Nonce> = FxHashMap::default();
        let mut gas_left = gas_limit;
        loop {
            // Find the best-priced executable candidate across accounts.
            let mut best: Option<(u64, AccountId, Nonce, TxMeta)> = None;
            // detlint::allow(unordered-iter, reason = "argmax fold with a total-order (price, account) tie-break below; the selected candidate is iteration-order independent")
            for (&acct, txs) in &self.per_account {
                let cursor = *cursors.get(&acct).unwrap_or(&self.expected_nonce(acct));
                let Some(meta) = txs.get(&cursor) else {
                    continue; // gap or exhausted
                };
                if meta.gas > gas_left {
                    continue;
                }
                let candidate = (meta.gas_price, acct, cursor, *meta);
                // Tie-break by (price, then account id) for determinism.
                let better = match &best {
                    None => true,
                    Some((bp, bacct, ..)) => {
                        candidate.0 > *bp || (candidate.0 == *bp && acct < *bacct)
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
            let Some((_, acct, nonce, meta)) = best else {
                break;
            };
            out.push(meta.id);
            gas_left -= meta.gas;
            cursors.insert(acct, nonce + 1);
        }
    }

    /// Forgets every transaction and every account nonce, retaining the
    /// maps' allocations. A cleared pool behaves exactly like a new one.
    pub fn clear(&mut self) {
        self.per_account.clear();
        self.next_nonce.clear();
        self.by_id.clear();
    }

    /// Applies a committed block: advances account nonces past every
    /// included transaction and drops included and stale entries.
    pub fn on_block<'a, I>(&mut self, included: I)
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        for tx in included {
            let next = self.next_nonce.entry(tx.sender).or_insert(0);
            if tx.nonce + 1 > *next {
                *next = tx.nonce + 1;
            }
        }
        // Drop everything below each account's new nonce.
        let next_nonce = &self.next_nonce;
        let by_id = &mut self.by_id;
        self.per_account.retain(|acct, txs| {
            let floor = next_nonce.get(acct).copied().unwrap_or(0);
            let stale: Vec<Nonce> = txs.range(..floor).map(|(&n, _)| n).collect();
            for n in stale {
                if let Some(meta) = txs.remove(&n) {
                    by_id.remove(&meta.id);
                }
            }
            !txs.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethmeter_chain::tx::SIMPLE_TX_GAS;
    use ethmeter_types::{ByteSize, NodeId, SimTime};

    fn tx(id: u64, sender: u32, nonce: u64, price: u64) -> Transaction {
        Transaction {
            id: TxId(id),
            sender: AccountId(sender),
            nonce,
            gas_price: price,
            gas: SIMPLE_TX_GAS,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        }
    }

    #[test]
    fn in_order_arrivals_are_pending() {
        let mut pool = Mempool::new();
        assert_eq!(pool.add(&tx(1, 1, 0, 10)), AddOutcome::Pending);
        assert_eq!(pool.add(&tx(2, 1, 1, 10)), AddOutcome::Pending);
        assert_eq!(pool.pending_count(), 2);
        assert_eq!(pool.queued_count(), 0);
    }

    #[test]
    fn gap_queues_until_filled() {
        let mut pool = Mempool::new();
        assert_eq!(pool.add(&tx(2, 1, 1, 10)), AddOutcome::Queued);
        assert_eq!(pool.add(&tx(3, 1, 2, 10)), AddOutcome::Queued);
        assert_eq!(pool.pending_count(), 0);
        assert_eq!(pool.queued_count(), 2);
        // Filling the gap makes the whole run executable.
        assert_eq!(pool.add(&tx(1, 1, 0, 10)), AddOutcome::Pending);
        assert_eq!(pool.pending_count(), 3);
        assert_eq!(pool.queued_count(), 0);
    }

    #[test]
    fn duplicates_and_stale() {
        let mut pool = Mempool::new();
        let t = tx(1, 1, 0, 10);
        assert_eq!(pool.add(&t), AddOutcome::Pending);
        assert_eq!(pool.add(&t), AddOutcome::Known);
        // Same nonce, worse or equal price: Known.
        assert_eq!(pool.add(&tx(2, 1, 0, 10)), AddOutcome::Known);
        assert_eq!(pool.add(&tx(3, 1, 0, 5)), AddOutcome::Known);
        // Same nonce, better price: Replaced.
        assert_eq!(pool.add(&tx(4, 1, 0, 20)), AddOutcome::Replaced);
        assert!(!pool.contains(TxId(1)));
        assert!(pool.contains(TxId(4)));
        // Commit it; now nonce 0 is stale.
        pool.on_block([&tx(4, 1, 0, 20)]);
        assert_eq!(pool.add(&tx(5, 1, 0, 30)), AddOutcome::Stale);
    }

    #[test]
    fn pack_orders_by_price_respecting_nonces() {
        let mut pool = Mempool::new();
        // Account 1: cheap then expensive (nonce order binds them).
        pool.add(&tx(1, 1, 0, 1));
        pool.add(&tx(2, 1, 1, 100));
        // Account 2: expensive single.
        pool.add(&tx(3, 2, 0, 50));
        let packed = pool.pack(10 * SIMPLE_TX_GAS);
        // 50 beats 1; then after account 2 drains, account 1's nonce 0
        // unlocks nonce 1 (100) only after nonce 0 (price 1) is taken.
        assert_eq!(packed, vec![TxId(3), TxId(1), TxId(2)]);
    }

    #[test]
    fn pack_respects_gas_limit() {
        let mut pool = Mempool::new();
        for i in 0..10 {
            pool.add(&tx(i, i as u32, 0, 10));
        }
        let packed = pool.pack(3 * SIMPLE_TX_GAS);
        assert_eq!(packed.len(), 3);
        let none = pool.pack(SIMPLE_TX_GAS - 1);
        assert!(none.is_empty());
    }

    #[test]
    fn pack_skips_queued_gaps() {
        let mut pool = Mempool::new();
        pool.add(&tx(1, 1, 0, 10));
        pool.add(&tx(3, 1, 2, 99)); // gap at nonce 1
        let packed = pool.pack(10 * SIMPLE_TX_GAS);
        assert_eq!(packed, vec![TxId(1)]);
    }

    #[test]
    fn on_block_prunes_and_promotes() {
        let mut pool = Mempool::new();
        pool.add(&tx(1, 1, 0, 10));
        pool.add(&tx(2, 1, 1, 10));
        pool.add(&tx(3, 1, 2, 10));
        // Block includes nonces 0 and 1 (mined elsewhere, different ids).
        pool.on_block([&tx(100, 1, 0, 10), &tx(101, 1, 1, 10)]);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(TxId(3)));
        assert_eq!(pool.expected_nonce(AccountId(1)), 2);
        assert_eq!(pool.pending_count(), 1);
        // Re-offering a committed nonce is stale.
        assert_eq!(pool.add(&tx(4, 1, 1, 10)), AddOutcome::Stale);
    }

    #[test]
    fn on_block_handles_unknown_senders() {
        let mut pool = Mempool::new();
        pool.on_block([&tx(1, 9, 4, 10)]);
        assert_eq!(pool.expected_nonce(AccountId(9)), 5);
        assert!(pool.is_empty());
    }

    #[test]
    fn multi_account_independence() {
        let mut pool = Mempool::new();
        pool.add(&tx(1, 1, 1, 10)); // queued (gap at 0)
        pool.add(&tx(2, 2, 0, 10)); // pending
        assert_eq!(pool.pending_count(), 1);
        assert_eq!(pool.queued_count(), 1);
        pool.on_block([&tx(3, 1, 0, 10)]);
        // Account 1's queued tx promotes once nonce 0 commits.
        assert_eq!(pool.pending_count(), 2);
        assert_eq!(pool.queued_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ethmeter_chain::tx::SIMPLE_TX_GAS;
    use ethmeter_types::{ByteSize, NodeId, SimTime};
    use proptest::prelude::*;

    fn arb_tx() -> impl Strategy<Value = Transaction> {
        (0u32..4, 0u64..8, 1u64..100, 0u64..u64::MAX).prop_map(|(s, n, p, id)| Transaction {
            id: TxId(id),
            sender: AccountId(s),
            nonce: n,
            gas_price: p,
            gas: SIMPLE_TX_GAS,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        })
    }

    proptest! {
        /// Whatever arrival order, a packed block never contains a nonce
        /// gap and never violates per-sender nonce ordering.
        #[test]
        fn packed_blocks_are_nonce_valid(txs in proptest::collection::vec(arb_tx(), 0..64)) {
            let mut pool = Mempool::new();
            let mut by_id = std::collections::HashMap::new();
            for t in &txs {
                pool.add(t);
                by_id.insert(t.id, (t.sender, t.nonce));
            }
            let packed = pool.pack(1_000 * SIMPLE_TX_GAS);
            // Per-sender nonces in the packed list must be 0,1,2,... exactly.
            let mut seen: std::collections::HashMap<AccountId, Nonce> = Default::default();
            for id in &packed {
                let &(sender, nonce) = by_id.get(id).expect("packed tx came from input");
                let expected = seen.get(&sender).copied().unwrap_or(0);
                prop_assert_eq!(nonce, expected, "sender {:?}", sender);
                seen.insert(sender, expected + 1);
            }
            // No duplicate ids.
            let set: std::collections::HashSet<_> = packed.iter().collect();
            prop_assert_eq!(set.len(), packed.len());
        }

        /// pending + queued always equals len, and counts never go negative
        /// through arbitrary add/commit interleavings.
        #[test]
        fn counts_are_consistent(
            txs in proptest::collection::vec(arb_tx(), 0..48),
            commit_every in 1usize..8,
        ) {
            let mut pool = Mempool::new();
            for (i, t) in txs.iter().enumerate() {
                pool.add(t);
                prop_assert_eq!(pool.pending_count() + pool.queued_count(), pool.len());
                if i % commit_every == 0 {
                    let packed = pool.pack(8 * SIMPLE_TX_GAS);
                    let committed: Vec<Transaction> = txs
                        .iter()
                        .filter(|t| packed.contains(&t.id))
                        .cloned()
                        .collect();
                    pool.on_block(committed.iter());
                    prop_assert_eq!(pool.pending_count() + pool.queued_count(), pool.len());
                    // Committed txs are gone.
                    for id in packed {
                        prop_assert!(!pool.contains(id));
                    }
                }
            }
        }
    }
}
