//! Bounded "known items" sets.
//!
//! Geth tracks, per peer, which block/transaction hashes that peer is known
//! to have (`knownBlocks`, `knownTxs`), bounded to avoid unbounded memory.
//! The bound matters behaviorally: once evicted, an item may be re-sent,
//! which is one source of the redundant receptions measured in Table II.
//!
//! Two implementations share the contract:
//!
//! - [`KnownSet`] — the generic original (`HashSet` + FIFO queue), kept as
//!   the reference model for equivalence testing and for cold paths;
//! - [`DenseKnownSet`] — the hot-path replacement over interned `u32`
//!   keys: a linear-probing table with multiplicative hashing and
//!   backward-shift deletion. One simulation holds a known-set per
//!   (node, peer) pair and queries it per delivered message, so the
//!   per-operation constant here is a first-order term of campaign wall
//!   time.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// A FIFO-bounded set: inserting beyond capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct KnownSet<T> {
    set: HashSet<T>,
    order: VecDeque<T>,
    cap: usize,
}

impl<T: Copy + Eq + Hash> KnownSet<T> {
    /// Creates a set bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "known-set capacity must be positive");
        // Storage grows on demand: a simulation holds one known-set per
        // (node, peer) pair, so eager preallocation would dominate memory.
        KnownSet {
            set: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// True if `item` is currently tracked.
    pub fn contains(&self, item: T) -> bool {
        self.set.contains(&item)
    }

    /// Inserts `item`; returns `true` if it was new. Evicts the oldest
    /// entry when full.
    pub fn insert(&mut self, item: T) -> bool {
        if !self.set.insert(item) {
            return false;
        }
        self.order.push_back(item);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Current number of tracked items.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Sentinel marking an empty probe-table slot (keys must stay below it —
/// interned slots are sequential, so a campaign would need 4 billion
/// artifacts to collide).
const EMPTY: u32 = u32::MAX;

/// A FIFO-bounded set of interned `u32` keys; behaviorally identical to
/// [`KnownSet`] (same insert/contains results, same eviction order) but
/// backed by a flat linear-probing table.
///
/// The table grows lazily from empty — a simulation holds one set per
/// (node, peer) pair, most of which stay far below capacity — and is
/// bounded by `cap`, so memory is O(min(items, cap)).
#[derive(Debug, Clone)]
pub struct DenseKnownSet {
    /// Linear-probing table of keys; `EMPTY` marks free slots. Length is
    /// always a power of two (or zero before the first insert).
    table: Vec<u32>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u32>,
    cap: usize,
}

impl DenseKnownSet {
    /// Creates a set bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "known-set capacity must be positive");
        DenseKnownSet {
            table: Vec::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Fibonacci-hash bucket of `key` in the current table.
    #[inline]
    fn bucket(&self, key: u32) -> usize {
        debug_assert!(!self.table.is_empty());
        let h = u64::from(key).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (self.table.len() - 1)
    }

    /// True if `key` is currently tracked.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        if self.table.is_empty() {
            return false;
        }
        let mut i = self.bucket(key);
        loop {
            match self.table[i] {
                EMPTY => return false,
                k if k == key => return true,
                _ => i = (i + 1) & (self.table.len() - 1),
            }
        }
    }

    /// Inserts `key`; returns `true` if it was new. Evicts the oldest
    /// entry when full.
    ///
    /// # Panics
    ///
    /// Panics if `key == u32::MAX` (reserved sentinel).
    pub fn insert(&mut self, key: u32) -> bool {
        assert_ne!(key, EMPTY, "u32::MAX is reserved");
        if self.contains(key) {
            return false;
        }
        // Keep load factor ≤ 1/2 while below the bound; at the bound the
        // table is fixed and eviction holds occupancy constant.
        if self.table.len() < 2 * (self.order.len() + 1) {
            self.grow();
        }
        self.insert_slot(key);
        self.order.push_back(key);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.erase(old);
            }
        }
        true
    }

    /// Current number of tracked keys.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2)
            .max(16)
            .min((2 * self.cap + 1).next_power_of_two());
        if new_len == self.table.len() {
            return;
        }
        self.table = vec![EMPTY; new_len];
        // Rebuild from the order queue (it holds exactly the live keys).
        for i in 0..self.order.len() {
            let key = self.order[i];
            self.insert_slot(key);
        }
    }

    /// Places `key` in its probe slot; the caller guarantees it is absent
    /// and that a free slot exists.
    #[inline]
    fn insert_slot(&mut self, key: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.bucket(key);
        while self.table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.table[i] = key;
    }

    /// Removes `key` using backward-shift deletion, keeping every probe
    /// chain contiguous (no tombstones, so lookups never degrade).
    fn erase(&mut self, key: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match self.table[i] {
                EMPTY => return, // not present (cannot happen for live keys)
                k if k == key => break,
                _ => i = (i + 1) & mask,
            }
        }
        // Slot i is now free; pull back any displaced successors.
        let mut j = i;
        loop {
            self.table[i] = EMPTY;
            loop {
                j = (j + 1) & mask;
                let k = self.table[j];
                if k == EMPTY {
                    return;
                }
                // Move k back iff its home bucket is outside the cyclic
                // range (i, j] — i.e. probing for k would pass through i.
                let home = self.bucket(k);
                if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                    self.table[i] = k;
                    break;
                }
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = KnownSet::with_capacity(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut s = KnownSet::with_capacity(3);
        for i in 0..3 {
            s.insert(i);
        }
        assert_eq!(s.len(), 3);
        s.insert(3); // evicts 0
        assert_eq!(s.len(), 3);
        assert!(!s.contains(0));
        assert!(s.contains(1) && s.contains(2) && s.contains(3));
        // Re-inserting the evicted item works (and evicts 1).
        assert!(s.insert(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn duplicate_insert_does_not_evict() {
        let mut s = KnownSet::with_capacity(2);
        s.insert(1);
        s.insert(2);
        s.insert(2); // no-op
        assert!(s.contains(1), "duplicate insert must not evict");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: KnownSet<u32> = KnownSet::with_capacity(0);
    }

    #[test]
    fn dense_set_matches_reference_on_basics() {
        let mut s = DenseKnownSet::with_capacity(3);
        assert!(s.is_empty());
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(10));
        assert!(!s.contains(11));
        for k in [11, 12, 13] {
            assert!(s.insert(k)); // 13 evicts 10
        }
        assert_eq!(s.len(), 3);
        assert!(!s.contains(10));
        assert!(s.contains(11) && s.contains(12) && s.contains(13));
        // Duplicate insert must not evict.
        assert!(!s.insert(13));
        assert!(s.contains(11));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn dense_set_rejects_sentinel_key() {
        let mut s = DenseKnownSet::with_capacity(4);
        s.insert(u32::MAX);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dense_zero_capacity_rejected() {
        let _ = DenseKnownSet::with_capacity(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The dense replacement must be observationally identical to the
        /// original [`KnownSet`] — same insert results, same membership,
        /// same FIFO eviction — under arbitrary key streams and small
        /// capacities (small caps maximize evictions, the hard part of
        /// backward-shift deletion).
        #[test]
        fn dense_set_equivalent_to_knownset_model(
            cap in 1usize..24,
            keys in proptest::collection::vec(0u32..48, 0..256),
        ) {
            let mut dense = DenseKnownSet::with_capacity(cap);
            let mut model: KnownSet<u32> = KnownSet::with_capacity(cap);
            for &k in &keys {
                prop_assert_eq!(dense.insert(k), model.insert(k), "insert {}", k);
                prop_assert_eq!(dense.len(), model.len());
                // Full-universe membership sweep after every operation.
                for probe in 0..48u32 {
                    prop_assert_eq!(
                        dense.contains(probe),
                        model.contains(probe),
                        "probe {} after inserting {}",
                        probe,
                        k
                    );
                }
            }
        }

        /// Same equivalence under adversarial clustering: keys drawn from
        /// a tiny residue class collide heavily in the probe table,
        /// stressing displacement chains across wrap-around.
        #[test]
        fn dense_set_survives_heavy_collisions(
            cap in 1usize..12,
            seeds in proptest::collection::vec(0u32..8, 0..192),
        ) {
            let mut dense = DenseKnownSet::with_capacity(cap);
            let mut model: KnownSet<u32> = KnownSet::with_capacity(cap);
            for &s in &seeds {
                // Multiples of 16 share low bits; with a 16-slot table all
                // of them fight for a handful of buckets.
                let k = s * 16;
                prop_assert_eq!(dense.insert(k), model.insert(k));
                for probe in 0..8u32 {
                    prop_assert_eq!(dense.contains(probe * 16), model.contains(probe * 16));
                }
            }
            prop_assert_eq!(dense.len(), model.len());
        }
    }
}
