//! Time-ordered event queue.
//!
//! Delivers events in non-decreasing time order, breaking ties by
//! insertion order (FIFO). Deterministic tie-breaking is essential: two
//! messages scheduled for the same nanosecond must always be processed in
//! the same order, or replays diverge.
//!
//! Layout: a calendar queue over 16-byte packed keys. Each key carries
//! `time << 64 | seq << SLOT_BITS | slot` — the unique insertion sequence
//! plus the payload's slab slot — so comparing keys *is* comparing
//! `(time, seq)`, and the pop sequence is the total `(time, seq)` order
//! regardless of internal layout (the property tests pin exactly that).
//! Near-future keys hash by time into a ring of ~131 µs buckets (a
//! shift, not a division); a bucket is sorted once when the cursor
//! reaches it, so the steady state costs O(1) amortized per push/pop instead of a
//! `log n` heap sift — measurably faster at the multi-thousand pending
//! depths of a gossip campaign. Keys beyond the ring's horizon (mining
//! solves, retarget lags) wait in a small overflow heap and migrate as
//! the cursor advances. Event payloads live in a slab (`Vec<Option<E>>`
//! + free list) and never move.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ethmeter_types::SimTime;

/// Bits of the packed key word reserved for the slab slot.
const SLOT_BITS: u32 = 24;
/// Maximum number of simultaneously pending events (slab slots).
const MAX_PENDING: u64 = 1 << SLOT_BITS;
/// Maximum insertion sequence (fits the remaining high bits).
const MAX_SEQ: u64 = 1 << (64 - SLOT_BITS);

/// log2 of the bucket width in nanoseconds (2^17 ≈ 131 µs). Narrower
/// than the smallest realistic link delay (~1.3 ms floor + overheads), so
/// handlers essentially never push into the bucket being drained — the
/// pattern that would force repeated tail re-sorts. At gossip-burst
/// densities a bucket still holds only a handful of keys, sorted once
/// when the cursor arrives.
const WIDTH_SHIFT: u32 = 17;
/// Ring size (buckets). Span = 4096 × 131 µs ≈ 537 ms, which covers the
/// bulk of gossip/import delays; longer delays (mining solves, retarget
/// lags, fetch timeouts) take the overflow path.
const N_BUCKETS: usize = 4096;

/// An event queue ordered by `(time, insertion sequence)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of key buckets; slot `b % N_BUCKETS` holds absolute bucket
    /// `b` for `b` in `[cursor, cursor + N_BUCKETS)`.
    buckets: Vec<Vec<u128>>,
    /// Absolute index (`time >> WIDTH_SHIFT`) of the bucket being
    /// drained. The cursor is *lazy*: it stands on the bucket of the most
    /// recently popped key and only advances inside [`EventQueue::pop`]'s
    /// opening settle when that bucket runs dry, so handler pushes (which
    /// are never in the past) land at or ahead of it.
    cursor: u64,
    /// Consumed prefix of the current bucket.
    drained: usize,
    /// True if the current bucket needs a (re)sort before its next read:
    /// set on arrival at a bucket and again when keys are pushed into it.
    dirty: bool,
    /// Keys currently in the ring (excludes the drained prefix).
    ring_count: usize,
    /// Keys beyond the ring horizon, by min-heap.
    overflow: BinaryHeap<Reverse<u128>>,
    /// Slab of pending payloads, addressed by the key's slot bits.
    events: Vec<Option<E>>,
    /// Vacated slab slots available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Cached timestamp of the earliest pending event, kept accurate by
    /// every mutating operation: [`EventQueue::push`] lowers it,
    /// [`EventQueue::pop`] relocates the new head on its way out (without
    /// advancing the cursor — see [`EventQueue::min_after_pop`]), and
    /// [`EventQueue::clear`] resets it. This is what lets
    /// [`EventQueue::peek_time`] take `&self` — the parallel window loop
    /// peeks between every window, so a mutating peek was a latent
    /// hazard.
    min_time: Option<SimTime>,
    /// Debug backstop: a `(time, seq)` watermark every pop must meet or
    /// exceed. Raised to each popped key, lowered by any push below it —
    /// so delivering a key out of order relative to a co-pending earlier
    /// key trips the assert, whatever the calendar layout did.
    #[cfg(debug_assertions)]
    last_order: u128,
}

#[inline]
fn abs_bucket(key: u128) -> u64 {
    ((key >> 64) as u64) >> WIDTH_SHIFT
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: vec![Vec::new(); N_BUCKETS],
            cursor: 0,
            drained: 0,
            dirty: true,
            ring_count: 0,
            overflow: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            min_time: None,
            #[cfg(debug_assertions)]
            last_order: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.events.reserve(cap);
        q
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if more than 2²⁴ events are pending at once or the queue
    /// processes more than 2⁴⁰ events over its lifetime (both far beyond
    /// any realistic campaign; [`EventQueue::clear`] resets the latter).
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        assert!(seq < MAX_SEQ, "event sequence space exhausted");
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.events[s as usize] = Some(event);
                s
            }
            None => {
                let s = self.events.len() as u64;
                assert!(s < MAX_PENDING, "pending-event slots exhausted");
                self.events.push(Some(event));
                s as u32
            }
        };
        let key =
            (u128::from(time.as_nanos()) << 64) | u128::from((seq << SLOT_BITS) | u64::from(slot));
        #[cfg(debug_assertions)]
        {
            // A push below the watermark legitimately lowers the floor of
            // the next pop (the queue orders whatever is pending; only
            // the *scheduler* guarantees pushes are never in the past).
            self.last_order = self.last_order.min(key >> SLOT_BITS);
        }
        // Handlers never schedule into the past, but an idle queue may be
        // re-primed below the cursor (a fresh run after a drain): clamp
        // into the current bucket, where the next sort orders it.
        let ab = abs_bucket(key).max(self.cursor);
        if ab >= self.cursor + N_BUCKETS as u64 {
            self.overflow.push(Reverse(key));
        } else {
            if ab == self.cursor {
                self.dirty = true;
            }
            self.buckets[(ab as usize) & (N_BUCKETS - 1)].push(key);
            self.ring_count += 1;
        }
        self.min_time = Some(match self.min_time {
            Some(m) => m.min(time),
            None => time,
        });
    }

    /// Advances the cursor to the bucket holding the minimum pending key
    /// and leaves that bucket sorted with `drained` at its head. Returns
    /// false iff the queue is empty. Amortized O(1): the cursor only
    /// moves forward, so each bucket is crossed once per sweep of
    /// simulated time, and each key is sorted O(1) times.
    fn settle(&mut self) -> bool {
        loop {
            let slot = (self.cursor as usize) & (N_BUCKETS - 1);
            if self.drained < self.buckets[slot].len() {
                if self.dirty {
                    // Arrival sort, or late keys pushed behind the read
                    // head: order the unconsumed tail (every tail key is
                    // ≥ every already-popped key by monotonicity).
                    self.buckets[slot][self.drained..].sort_unstable();
                    self.dirty = false;
                }
                return true;
            }
            // Bucket exhausted: recycle it and advance to the next
            // non-empty bucket (or jump to the overflow minimum), which
            // will need its arrival sort.
            self.buckets[slot].clear();
            self.drained = 0;
            self.dirty = true;
            if self.ring_count > 0 {
                self.cursor += 1;
            } else if let Some(&Reverse(next)) = self.overflow.peek() {
                self.cursor = abs_bucket(next);
            } else {
                return false;
            }
            self.migrate_overflow();
        }
    }

    /// Pulls overflow keys that now fall inside the ring horizon.
    #[inline]
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + N_BUCKETS as u64;
        while let Some(&Reverse(key)) = self.overflow.peek() {
            let ab = abs_bucket(key);
            if ab >= horizon {
                break;
            }
            self.overflow.pop();
            if ab == self.cursor {
                self.dirty = true;
            }
            self.buckets[(ab as usize) & (N_BUCKETS - 1)].push(key);
            self.ring_count += 1;
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.settle() {
            return None;
        }
        let cur = &self.buckets[(self.cursor as usize) & (N_BUCKETS - 1)];
        let key = cur[self.drained];
        #[cfg(debug_assertions)]
        {
            // `key >> SLOT_BITS` strips the slab slot, leaving exactly
            // the `(time, seq)` order word.
            debug_assert!(
                key >> SLOT_BITS >= self.last_order,
                "event queue popped out of (time, seq) order"
            );
            self.last_order = key >> SLOT_BITS;
        }
        self.drained += 1;
        self.ring_count -= 1;
        let slot = (key as u64 & (MAX_PENDING - 1)) as u32;
        let event = self.events[slot as usize]
            .take()
            .expect("ring keys reference live slots");
        self.free.push(slot);
        self.min_time = self.min_after_pop();
        Some((key_time(key), event))
    }

    /// The minimum pending key's timestamp, located **without advancing
    /// the cursor** — refreshing the [`EventQueue::peek_time`] cache on
    /// the way out of a pop must not move the cursor ahead of the popped
    /// bucket, because the handler's pushes (at the popped time plus a
    /// delay) haven't landed yet. A cursor that has already jumped to the
    /// next pending bucket would clamp those pushes into it, piling
    /// sparse-regime traffic into one perpetually re-sorted bucket.
    fn min_after_pop(&mut self) -> Option<SimTime> {
        // Fast path: the settled (sorted) current bucket still has keys.
        let slot = (self.cursor as usize) & (N_BUCKETS - 1);
        if self.drained < self.buckets[slot].len() {
            if self.dirty {
                self.buckets[slot][self.drained..].sort_unstable();
                self.dirty = false;
            }
            return Some(key_time(self.buckets[slot][self.drained]));
        }
        // Current bucket exhausted: the ring minimum (if any) is in the
        // first non-empty later bucket — later buckets hold strictly
        // later times. The walk re-crosses buckets the next settle will
        // clear anyway; emptiness checks are cheap.
        let mut ring_min = None;
        if self.ring_count > 0 {
            for off in 1..N_BUCKETS as u64 {
                let b = &self.buckets[((self.cursor + off) as usize) & (N_BUCKETS - 1)];
                if !b.is_empty() {
                    ring_min = b.iter().copied().min();
                    break;
                }
            }
        }
        let over_min = self.overflow.peek().map(|&Reverse(k)| k);
        let best = match (ring_min, over_min) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        };
        best.map(key_time)
    }

    /// The timestamp of the earliest pending event.
    ///
    /// Non-mutating: the value is a cache maintained by `push`/`pop`/
    /// `clear`, so peeking can never advance the lazy calendar cursor or
    /// otherwise perturb `(time, seq)` pop order (a regression test pins
    /// this).
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_time
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_count + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.ring_count == 0 && self.overflow.is_empty()
    }

    /// Drops every pending event and resets the insertion sequence, while
    /// keeping the bucket, heap, and slab allocations — a cleared queue
    /// behaves exactly like a new one but starts its next run
    /// allocation-free.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cursor = 0;
        self.drained = 0;
        self.dirty = true;
        self.ring_count = 0;
        self.overflow.clear();
        self.events.clear();
        self.free.clear();
        self.next_seq = 0;
        self.min_time = None;
        #[cfg(debug_assertions)]
        {
            self.last_order = 0;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethmeter_types::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2), 1);
        q.push(t(1), 2);
        q.push(t(2), 3);
        q.push(t(1), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn interleaved_peeks_never_perturb_pop_order() {
        // Regression test for the old `&mut self` peek, whose lazy-cursor
        // settle was a mutation: a queue peeked between every operation
        // must pop the exact same (time, seq) sequence as an un-peeked
        // twin. Times deliberately collide and span bucket widths.
        let mut peeked = EventQueue::new();
        let mut plain = EventQueue::new();
        let times: Vec<u64> = (0..256u64).map(|i| (i * 2_654_435_761) % 400_000).collect();
        for (i, &nanos) in times.iter().enumerate() {
            let at = SimTime::from_nanos(nanos);
            assert_eq!(peeked.peek_time(), plain.peek_time());
            peeked.push(at, i);
            plain.push(at, i);
            assert_eq!(peeked.peek_time(), plain.peek_time());
            if i % 3 == 0 {
                for _ in 0..8 {
                    let _ = peeked.peek_time(); // repeated peeks are free
                }
                assert_eq!(peeked.pop(), plain.pop());
                assert_eq!(peeked.peek_time(), plain.peek_time());
            }
        }
        loop {
            assert_eq!(peeked.peek_time(), plain.peek_time());
            let (a, b) = (peeked.pop(), plain.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_tracks_minimum_through_churn() {
        // The cached minimum must stay accurate when a push undercuts the
        // current head and when pops drain across bucket boundaries.
        let mut q = EventQueue::new();
        q.push(t(5), 0u32);
        assert_eq!(q.peek_time(), Some(t(5)));
        q.push(t(2), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 1)));
        assert_eq!(q.peek_time(), Some(t(5)));
        // Push behind the settled head, into the same bucket region.
        q.push(SimTime::from_nanos(t(5).as_nanos() - 1), 2);
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_nanos(t(5).as_nanos() - 1))
        );
        q.pop();
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Steady-state churn at depth 2 must not grow the slab.
        q.push(t(0), 0u64);
        q.push(t(1), 1u64);
        for i in 2..1_000u64 {
            q.pop().expect("primed");
            q.push(t(i), i);
        }
        assert_eq!(q.len(), 2);
        assert!(q.events.len() <= 3, "slab grew to {}", q.events.len());
    }

    #[test]
    fn deep_heaps_drain_sorted() {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(t(i.wrapping_mul(2_654_435_761) % 97), i);
        }
        let mut prev = None;
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            if let Some(p) = prev {
                assert!(time >= p, "heap order violated");
            }
            prev = Some(time);
            n += 1;
        }
        assert_eq!(n, 1_000);
    }

    #[test]
    fn clear_resets_like_new() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.push(t(i % 7), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // FIFO sequencing restarts from scratch after a clear.
        q.push(t(3), 100u64);
        q.push(t(3), 101u64);
        assert_eq!(q.pop(), Some((t(3), 100)));
        assert_eq!(q.pop(), Some((t(3), 101)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mixed_push_pop_with_durations() {
        // Exercises the sift paths with a realistic churn pattern.
        let mut q = EventQueue::with_capacity(128);
        let mut clock = SimTime::ZERO;
        for i in 0..128u64 {
            q.push(clock + SimDuration::from_nanos((i * 37) % 101), i);
        }
        let mut popped = 0;
        while let Some((when, _)) = q.pop() {
            assert!(when >= clock, "time went backwards");
            clock = when;
            popped += 1;
            if popped % 3 == 0 {
                q.push(clock + SimDuration::from_nanos(popped % 13), 1_000 + popped);
            }
            if popped > 4_000 {
                break;
            }
        }
        assert!(q.is_empty() || popped > 4_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Against arbitrary interleavings of (time, payload) pushes —
        /// including heavy timestamp collisions — the pop sequence must be
        /// exactly the stable sort of the input by time: non-decreasing
        /// times, FIFO among equal instants. This is the engine's replay
        /// guarantee in one property.
        #[test]
        fn pop_order_is_stable_sort_by_time(
            times in proptest::collection::vec(0u64..16, 0..128),
        ) {
            let mut q = EventQueue::new();
            for (payload, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), payload);
            }
            let mut model: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            // Stable sort keeps insertion order among equal times — the
            // FIFO contract the queue must honor.
            model.sort_by_key(|&(t, _)| t);
            let popped: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(popped, model);
            prop_assert!(q.is_empty());
        }

        /// Interleaved push/pop phases never break the ordering contract:
        /// after any prefix of operations, `peek_time` equals the earliest
        /// pending time and pops stay non-decreasing from the last pop.
        #[test]
        fn interleaved_push_pop_keeps_order(
            ops in proptest::collection::vec((0u64..8, 0u64..4), 1..96),
        ) {
            let mut q = EventQueue::with_capacity(8);
            let mut pending: Vec<(u64, u64)> = Vec::new(); // (time, seq)
            for (seq, &(t, pops)) in ops.iter().enumerate() {
                let seq = seq as u64;
                q.push(SimTime::from_nanos(t), seq);
                pending.push((t, seq));
                for _ in 0..pops {
                    prop_assert_eq!(
                        q.peek_time().map(SimTime::as_nanos),
                        pending.iter().map(|&(t, _)| t).min()
                    );
                    let Some((got_t, got_e)) = q.pop() else {
                        prop_assert!(pending.is_empty());
                        break;
                    };
                    // The popped entry is the FIFO-earliest at the minimum
                    // pending time.
                    let min_t = pending.iter().map(|&(t, _)| t).min().expect("non-empty");
                    let expect_seq = pending
                        .iter()
                        .filter(|&&(t, _)| t == min_t)
                        .map(|&(_, s)| s)
                        .min()
                        .expect("non-empty");
                    prop_assert_eq!(got_t.as_nanos(), min_t);
                    prop_assert_eq!(got_e, expect_seq);
                    pending.retain(|&(_, s)| s != expect_seq);
                }
            }
            prop_assert_eq!(q.len(), pending.len());
        }
    }
}

#[cfg(test)]
mod calendar_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The single-bucket proptests above cannot see bucket-ring bugs,
        /// so this one spreads times across many ~131 µs buckets AND the
        /// overflow horizon (multi-second deltas) and checks the same
        /// stable-sort contract.
        #[test]
        fn wide_time_ranges_pop_in_stable_order(
            dense in proptest::collection::vec(0u64..64, 0..64),
            wide in proptest::collection::vec(0u64..8_000, 0..32),
        ) {
            // The dense cluster steps 50 µs — well under the 131 µs
            // bucket width, so several *distinct* times collide per
            // bucket and the arrival sort must reorder them (a fresh
            // bucket only ever saw appends). The wide tail steps 400 µs
            // over ~3.2 s, spreading across many buckets and past the
            // ring horizon into the overflow heap.
            let times: Vec<u64> = dense
                .iter()
                .map(|&c| c * 50_000)
                .chain(wide.iter().map(|&c| c * 400_000))
                .collect();
            let mut q = EventQueue::new();
            for (payload, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), payload);
            }
            let mut model: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            model.sort_by_key(|&(t, _)| t);
            let popped: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(popped, model);
            prop_assert!(q.is_empty());
        }

        /// Interleaved push/pop across wide time ranges, mimicking the
        /// engine: pops advance a clock floor, pushes schedule at or after
        /// it (the monotonic contract), with bursts landing in the same
        /// bucket, nearby buckets, and the overflow.
        #[test]
        fn interleaved_wide_schedule_keeps_order(
            ops in proptest::collection::vec((0u64..4_000_000_000, 0u64..3), 1..128),
        ) {
            let mut q = EventQueue::new();
            let mut pending: Vec<(u64, u64)> = Vec::new();
            let mut clock = 0u64;
            for (seq, &(delay, pops)) in ops.iter().enumerate() {
                let seq = seq as u64;
                let at = clock + delay;
                q.push(SimTime::from_nanos(at), seq);
                pending.push((at, seq));
                for _ in 0..pops {
                    let Some((got_t, got_e)) = q.pop() else {
                        prop_assert!(pending.is_empty());
                        break;
                    };
                    let min_t = pending.iter().map(|&(t, _)| t).min().expect("non-empty");
                    let expect_seq = pending
                        .iter()
                        .filter(|&&(t, _)| t == min_t)
                        .map(|&(_, s)| s)
                        .min()
                        .expect("non-empty");
                    prop_assert_eq!(got_t.as_nanos(), min_t);
                    prop_assert_eq!(got_e, expect_seq);
                    prop_assert!(got_t.as_nanos() >= clock, "time went backwards");
                    clock = got_t.as_nanos();
                    pending.retain(|&(_, s)| s != expect_seq);
                }
            }
            prop_assert_eq!(q.len(), pending.len());
        }
    }
}
