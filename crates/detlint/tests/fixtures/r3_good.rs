// Fixture: time and randomness routed through the deterministic stack.
use ethmeter_types::{SimTime, Xoshiro256};

fn proper(now: SimTime, rng: &mut Xoshiro256) -> u64 {
    // Mentioning Instant::now or thread_rng in a comment is fine.
    let jitter = rng.next_u64() % 1_000;
    now.as_nanos() + jitter
}
