// Fixture: wall-clock and OS entropy on the simulation path (three
// violating lines).
fn naughty() -> u64 {
    let started = std::time::Instant::now();
    let seed = rand::thread_rng().gen::<u64>();
    let knob = std::env::var("TUNE").ok();
    let _ = (started, knob);
    seed
}
