//! Transaction commit latency (paper §III-C1/C2): inclusion time,
//! confirmation depth, and the out-of-order penalty.
//!
//! ```sh
//! cargo run --release --example commit_latency
//! ```

use ethmeter::analysis::commit;
use ethmeter::prelude::*;

fn main() {
    let scenario = Scenario::builder()
        .preset(Preset::Small)
        .seed(4)
        .duration(SimDuration::from_hours(2))
        .build();
    let outcome = run_campaign(&scenario);
    let data = &outcome.campaign;

    // Figure 4: inclusion plus 3/12/15/36-confirmation CDFs.
    let fig4 = commit::analyze(data);
    println!("{fig4}\n");

    // Figure 5: in-order vs out-of-order commit delay.
    let fig5 = commit::ordering(data);
    println!("{fig5}\n");

    // The confirmation-depth trade-off in one line each: what a user
    // waits, per finality budget.
    println!("confirmation depth -> median wait (seconds):");
    for (k, cdf) in &fig4.confirmations {
        if !cdf.is_empty() {
            println!("  {k:>2} blocks: {:.0}s", cdf.quantile(0.5));
        }
    }
    println!(
        "\nThe 12-block rule costs ~3 minutes; §III-D shows why even that\n\
         may be optimistic once pools mine long private runs."
    );
}
