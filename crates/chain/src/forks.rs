//! Fork extraction and classification (Table III, §III-C4/C5).
//!
//! Vocabulary follows the paper:
//!
//! - a **fork** is a maximal branch of non-canonical blocks hanging off the
//!   canonical chain; its **length** is the branch's depth;
//! - a fork is **recognized** when its blocks were referenced as uncles by
//!   main-chain blocks ("forks of length one are very likely to become
//!   recognized ... not a single fork longer than 1 became recognized");
//! - a **one-miner fork** is a set of blocks at the same height produced by
//!   the same miner (§III-C5's pairs/triples/tuples).

use std::collections::BTreeMap;

use ethmeter_types::{BlockHash, BlockNumber, PoolId};

use crate::tree::BlockTree;

/// One fork: a branch of non-canonical blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkRecord {
    /// The canonical block the branch forks from.
    pub branch_point: BlockHash,
    /// Height of the first fork block (`branch_point.number + 1`).
    pub start_number: BlockNumber,
    /// Every block in the branch subtree.
    pub blocks: Vec<BlockHash>,
    /// Depth of the branch (1 = a single competing block).
    pub length: usize,
    /// True if *every* block of the branch was referenced as an uncle.
    /// Blocks at depth ≥ 2 are structurally unreferenceable (their parent
    /// is off-chain), so only length-1 forks can be recognized.
    pub recognized: bool,
}

/// Extracts all forks from a tree.
///
/// Each non-canonical child of a canonical block roots one fork; the fork's
/// blocks are that root's whole non-canonical subtree and its length is the
/// subtree's depth.
pub fn extract_forks(tree: &BlockTree) -> Vec<ForkRecord> {
    let mut forks = Vec::new();
    for canonical in tree.canonical_blocks() {
        for &child in tree.children_of(canonical.hash()) {
            if tree.is_canonical(child) {
                continue;
            }
            // Walk the subtree rooted at `child`.
            let mut blocks = Vec::new();
            let mut depth = 0usize;
            let mut frontier = vec![(child, 1usize)];
            while let Some((h, d)) = frontier.pop() {
                blocks.push(h);
                depth = depth.max(d);
                for &c in tree.children_of(h) {
                    frontier.push((c, d + 1));
                }
            }
            blocks.sort_unstable();
            let recognized = blocks.iter().all(|&h| tree.is_recognized_uncle(h));
            forks.push(ForkRecord {
                branch_point: canonical.hash(),
                start_number: canonical.number() + 1,
                blocks,
                length: depth,
                recognized,
            });
        }
    }
    forks.sort_by_key(|f| (f.start_number, f.blocks.first().copied()));
    forks
}

/// Table III's aggregation: counts of forks by length, split by
/// recognition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForkLengthTable {
    /// `(length, total, recognized, unrecognized)` rows, ascending length.
    pub rows: Vec<(usize, u64, u64, u64)>,
}

/// Builds Table III from extracted forks.
pub fn fork_length_table(forks: &[ForkRecord]) -> ForkLengthTable {
    let mut by_len: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for f in forks {
        let e = by_len.entry(f.length).or_default();
        e.0 += 1;
        if f.recognized {
            e.1 += 1;
        }
    }
    let mut rows: Vec<(usize, u64, u64, u64)> = by_len
        .into_iter()
        .map(|(len, (total, rec))| (len, total, rec, total - rec))
        .collect();
    rows.sort_unstable();
    ForkLengthTable { rows }
}

/// Block-level census: the paper's "92.81% ... became part of the main
/// chain, 6.97% became uncles ... 0.22% ... unrecognized uncles".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCensus {
    /// Canonical (main-chain) blocks, excluding genesis.
    pub main: u64,
    /// Non-canonical blocks referenced as uncles.
    pub recognized_uncles: u64,
    /// Non-canonical blocks never referenced.
    pub unrecognized: u64,
}

impl BlockCensus {
    /// All captured blocks.
    pub fn total(&self) -> u64 {
        self.main + self.recognized_uncles + self.unrecognized
    }

    /// Fraction of blocks on the main chain.
    pub fn main_fraction(&self) -> f64 {
        self.main as f64 / self.total().max(1) as f64
    }
}

/// Classifies every non-genesis block in the tree.
pub fn census(tree: &BlockTree) -> BlockCensus {
    let mut c = BlockCensus::default();
    for b in tree.all_blocks() {
        if b.number() == 0 {
            continue; // genesis
        }
        if tree.is_canonical(b.hash()) {
            c.main += 1;
        } else if tree.is_recognized_uncle(b.hash()) {
            c.recognized_uncles += 1;
        } else {
            c.unrecognized += 1;
        }
    }
    c
}

/// A one-miner fork group: several blocks at one height by one miner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneMinerGroup {
    /// The miner.
    pub miner: PoolId,
    /// The contested height.
    pub number: BlockNumber,
    /// All the miner's blocks at this height (canonical one included if it
    /// exists), sorted by hash.
    pub blocks: Vec<BlockHash>,
    /// How many of the group's non-canonical blocks were uncle-recognized.
    pub recognized_duplicates: u64,
    /// Count of non-canonical blocks in the group.
    pub duplicates: u64,
    /// True if all blocks in the group carry the same transaction multiset
    /// ("in 56% of cases, mining pools appeared to be using their full
    /// mining power for mining distinct versions of the same block").
    pub same_tx_set: bool,
}

impl OneMinerGroup {
    /// Group size (2 = pair, 3 = triple, ...).
    pub fn size(&self) -> usize {
        self.blocks.len()
    }
}

/// Finds all one-miner fork groups in the tree.
pub fn one_miner_groups(tree: &BlockTree) -> Vec<OneMinerGroup> {
    let mut by_key: BTreeMap<(PoolId, BlockNumber), Vec<BlockHash>> = BTreeMap::new();
    for b in tree.all_blocks() {
        if b.number() == 0 {
            continue;
        }
        by_key
            .entry((b.miner(), b.number()))
            .or_default()
            .push(b.hash());
    }
    let mut groups: Vec<OneMinerGroup> = by_key
        .into_iter()
        .filter(|(_, v)| v.len() >= 2)
        .map(|((miner, number), mut blocks)| {
            blocks.sort_unstable();
            let mut recognized = 0u64;
            let mut duplicates = 0u64;
            for &h in &blocks {
                if !tree.is_canonical(h) {
                    duplicates += 1;
                    if tree.is_recognized_uncle(h) {
                        recognized += 1;
                    }
                }
            }
            let same_tx_set = {
                let first = sorted_txs(tree, blocks[0]);
                blocks[1..].iter().all(|&h| sorted_txs(tree, h) == first)
            };
            OneMinerGroup {
                miner,
                number,
                blocks,
                recognized_duplicates: recognized,
                duplicates,
                same_tx_set,
            }
        })
        .collect();
    groups.sort_by_key(|g| (g.number, g.miner));
    groups
}

fn sorted_txs(tree: &BlockTree, hash: BlockHash) -> Vec<ethmeter_types::TxId> {
    let mut txs = tree.get(hash).map(|b| b.txs().to_vec()).unwrap_or_default();
    txs.sort_unstable();
    txs
}

/// The canonical chain's miner sequence, excluding genesis — the input to
/// Figure 7's run-length analysis.
pub fn miner_sequence(tree: &BlockTree) -> Vec<PoolId> {
    tree.canonical_blocks()
        .filter(|b| b.number() > 0)
        .map(|b| b.miner())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use ethmeter_types::TxId;

    /// Builds a main chain of `len` blocks by miner 0, returning hashes.
    fn main_chain(tree: &mut BlockTree, len: u64) -> Vec<BlockHash> {
        let mut out = Vec::new();
        let mut cur = tree.genesis_hash();
        for i in 0..len {
            let b = BlockBuilder::new(cur, i + 1, PoolId(0)).salt(i).build();
            cur = b.hash();
            out.push(cur);
            tree.insert(b).expect("insert main");
        }
        out
    }

    #[test]
    fn no_forks_in_linear_chain() {
        let mut tree = BlockTree::new();
        main_chain(&mut tree, 5);
        assert!(extract_forks(&tree).is_empty());
        let c = census(&tree);
        assert_eq!(c.main, 5);
        assert_eq!(c.total(), 5);
        assert_eq!(c.main_fraction(), 1.0);
    }

    #[test]
    fn single_fork_block_recognized() {
        let mut tree = BlockTree::new();
        let main = main_chain(&mut tree, 2);
        // Fork block at height 1.
        let f = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(1))
            .salt(100)
            .build();
        let fh = f.hash();
        tree.insert(f).expect("ok");
        // Nephew at height 3 references it.
        let nephew = BlockBuilder::new(main[1], 3, PoolId(0))
            .uncles(vec![fh])
            .salt(3)
            .build();
        tree.insert(nephew).expect("ok");

        let forks = extract_forks(&tree);
        assert_eq!(forks.len(), 1);
        assert_eq!(forks[0].length, 1);
        assert!(forks[0].recognized);
        assert_eq!(forks[0].start_number, 1);
        assert_eq!(forks[0].blocks, vec![fh]);

        let table = fork_length_table(&forks);
        assert_eq!(table.rows, vec![(1, 1, 1, 0)]);

        let c = census(&tree);
        assert_eq!(c.main, 3);
        assert_eq!(c.recognized_uncles, 1);
        assert_eq!(c.unrecognized, 0);
    }

    #[test]
    fn length_two_fork_cannot_be_recognized() {
        let mut tree = BlockTree::new();
        let main = main_chain(&mut tree, 4);
        let f1 = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(1))
            .salt(100)
            .build();
        let f1h = f1.hash();
        tree.insert(f1).expect("ok");
        let f2 = BlockBuilder::new(f1h, 2, PoolId(1)).salt(101).build();
        let f2h = f2.hash();
        tree.insert(f2).expect("ok");
        // Even if someone references f1, f2 cannot be referenced, so the
        // fork as a unit stays unrecognized (Table III row: len 2, 0 rec).
        let nephew = BlockBuilder::new(main[3], 5, PoolId(0))
            .uncles(vec![f1h])
            .salt(5)
            .build();
        tree.insert(nephew).expect("ok");

        let forks = extract_forks(&tree);
        assert_eq!(forks.len(), 1);
        assert_eq!(forks[0].length, 2);
        assert!(!forks[0].recognized);
        assert_eq!(forks[0].blocks.len(), 2);
        assert!(forks[0].blocks.contains(&f2h));

        let table = fork_length_table(&forks);
        assert_eq!(table.rows, vec![(2, 1, 0, 1)]);
    }

    #[test]
    fn sibling_forks_counted_separately() {
        let mut tree = BlockTree::new();
        main_chain(&mut tree, 2);
        for salt in [100, 101] {
            let f = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(1))
                .salt(salt)
                .build();
            tree.insert(f).expect("ok");
        }
        let forks = extract_forks(&tree);
        assert_eq!(forks.len(), 2);
        assert!(forks.iter().all(|f| f.length == 1));
    }

    #[test]
    fn one_miner_pair_detection() {
        let mut tree = BlockTree::new();
        let main = main_chain(&mut tree, 2);
        // Miner 0 also mines a duplicate at height 1 with the same (empty)
        // tx set.
        let dup = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(0))
            .salt(500)
            .build();
        let duph = dup.hash();
        tree.insert(dup).expect("ok");
        // It gets recognized.
        let nephew = BlockBuilder::new(main[1], 3, PoolId(0))
            .uncles(vec![duph])
            .salt(3)
            .build();
        tree.insert(nephew).expect("ok");

        let groups = one_miner_groups(&tree);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.miner, PoolId(0));
        assert_eq!(g.number, 1);
        assert_eq!(g.size(), 2);
        assert_eq!(g.duplicates, 1);
        assert_eq!(g.recognized_duplicates, 1);
        assert!(g.same_tx_set);
    }

    #[test]
    fn one_miner_group_distinct_tx_sets() {
        let mut tree = BlockTree::new();
        main_chain(&mut tree, 1);
        // Replace: canonical block at height 1 is empty; duplicate carries
        // a tx -> different tx sets.
        let dup = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(0))
            .txs(vec![TxId(9)])
            .salt(500)
            .build();
        tree.insert(dup).expect("ok");
        let groups = one_miner_groups(&tree);
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].same_tx_set);
    }

    #[test]
    fn different_miners_not_grouped() {
        let mut tree = BlockTree::new();
        main_chain(&mut tree, 1);
        let other = BlockBuilder::new(tree.genesis_hash(), 1, PoolId(1))
            .salt(7)
            .build();
        tree.insert(other).expect("ok");
        assert!(one_miner_groups(&tree).is_empty());
    }

    #[test]
    fn miner_sequence_follows_canonical_chain() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a = BlockBuilder::new(g, 1, PoolId(3)).salt(1).build();
        let ah = a.hash();
        tree.insert(a).expect("ok");
        let b = BlockBuilder::new(ah, 2, PoolId(5)).salt(2).build();
        tree.insert(b).expect("ok");
        assert_eq!(miner_sequence(&tree), vec![PoolId(3), PoolId(5)]);
    }
}
