//! Adversarial-mining integration: the selfish machine in the full
//! network simulation, honest-behavior golden identity, and the
//! Niu–Feng profitability-threshold monotonicity.

use ethmeter::experiments;
use ethmeter::mining::{PoolBehavior, PoolDirectory, SelfishConfig};
use ethmeter::prelude::*;

mod common;

fn tiny(seed: u64, mins: u64) -> ethmeter::ScenarioBuilder {
    Scenario::builder()
        .preset(Preset::Tiny)
        .seed(seed)
        .duration(SimDuration::from_mins(mins))
}

#[test]
fn explicit_honest_behavior_is_fingerprint_identical_to_goldens() {
    // Setting PoolBehavior::Honest on every pool must change nothing:
    // same digest as the default directory AND as the pinned golden.
    let mut pools = PoolDirectory::paper_dsn2020();
    for i in 0..pools.len() {
        let p = pools.pool_mut(ethmeter::types::PoolId(i as u16));
        assert_eq!(p.behavior, PoolBehavior::Honest, "default is honest");
        p.behavior = PoolBehavior::Honest;
    }
    let explicit = run_campaign(&tiny(101, 5).pools(pools).build())
        .campaign
        .fingerprint();
    let default = run_campaign(&tiny(101, 5).build()).campaign.fingerprint();
    assert_eq!(explicit, default);
    // The shared golden table (tests/common/mod.rs) is the source of
    // truth, so a blessed re-capture updates this assertion too.
    assert_eq!(
        explicit,
        common::digest("tiny-101"),
        "behavior layer broke the golden"
    );
}

#[test]
fn full_sim_attacker_withholds_and_releases() {
    let scenario = tiny(9, 12)
        .pools(PoolDirectory::attacker_vs_honest(
            0.40,
            6,
            SelfishConfig::classic(),
        ))
        .build();
    let outcome = run_campaign(&scenario);
    // The machine actually engaged: blocks were withheld at mint time and
    // published through fork-choice-time release events.
    assert!(
        outcome.stats.blocks_withheld > 0,
        "no withholding: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.blocks_released > 0,
        "no releases: {:?}",
        outcome.stats
    );
    // Withholding at 40% hash power forks the chain visibly.
    let tree = &outcome.campaign.truth.tree;
    assert!(tree.len() as u64 > tree.head_number() + 1, "no fork blocks");
    // The revenue pipeline sees the attacker.
    let revenue = ethmeter::analysis::rewards::analyze(&outcome.campaign);
    let attacker = revenue
        .row(ethmeter::types::PoolId(0))
        .expect("attacker earned something");
    assert_eq!(attacker.name, "Attacker");
    assert!(attacker.blocks > 0);

    // Determinism: adversarial campaigns replay bit for bit.
    let again = run_campaign(&scenario);
    assert_eq!(outcome.stats, again.stats);
    assert_eq!(outcome.campaign.fingerprint(), again.campaign.fingerprint());
}

#[test]
fn stubborn_variant_runs_in_full_sim() {
    let scenario = tiny(5, 8)
        .pools(PoolDirectory::attacker_vs_honest(
            0.35,
            4,
            SelfishConfig::stubborn(0),
        ))
        .build();
    let outcome = run_campaign(&scenario);
    assert!(outcome.stats.blocks_withheld > 0);
    assert!(outcome.campaign.truth.tree.head_number() > 5);
}

#[test]
fn selfish_threshold_crosses_and_decreases_with_gamma() {
    // The acceptance grid: α × γ × seeds, chain-only for statistical
    // power. Deterministic per seed, so these assertions are exact
    // replays, not flaky statistics.
    let report = experiments::selfish_threshold(
        &[0.15, 0.20, 0.25, 0.30, 0.35],
        &[0.0, 0.5, 1.0],
        11,
        2,
        10_000,
    );
    // Every γ row crosses gain = 1 inside the α grid…
    let thresholds: Vec<f64> = (0..report.gammas.len())
        .map(|g| {
            report
                .threshold(g)
                .unwrap_or_else(|| panic!("gamma {} never crossed 1.0", report.gammas[g]))
        })
        .collect();
    // …the gain rises with α within each row at the profitable end…
    for row in &report.gain {
        assert!(
            row.last().expect("non-empty") > row.first().expect("non-empty"),
            "gain must grow with alpha: {row:?}"
        );
    }
    // …and the profitability threshold falls as γ rises (Niu–Feng's
    // headline shape): monotone non-increasing, strictly lower overall.
    for pair in thresholds.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "thresholds must not increase with gamma: {thresholds:?}"
        );
    }
    assert!(
        thresholds[2] < thresholds[0] - 0.02,
        "gamma must materially lower the threshold: {thresholds:?}"
    );
}
