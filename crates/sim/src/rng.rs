//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately ships its own generator instead of depending
//! on the `rand` crate: a measurement-reproduction toolkit lives or dies by
//! bit-stable replays, and pinning the generator *in the repository* means a
//! seed printed in `EXPERIMENTS.md` will regenerate the same run forever.
//!
//! Two algorithms are provided:
//!
//! - [`SplitMix64`]: a tiny generator used to expand a single `u64` seed
//!   into independent state words (its intended purpose per Steele et al.).
//! - [`Xoshiro256`]: `xoshiro256**`, the general-purpose generator used for
//!   all simulation randomness. It is fast, passes BigCrush, and supports
//!   `jump()` for carving independent streams out of one seed.

use std::fmt;

/// SplitMix64 — a 64-bit generator mainly used for seeding.
///
/// Reference: Guy L. Steele Jr., Doug Lea, Christine H. Flood,
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` — the workspace's general-purpose PRNG.
///
/// Reference: David Blackman and Sebastiano Vigna, "Scrambled linear
/// pseudorandom number generators" (2018). Period 2^256 − 1.
#[derive(Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl fmt::Debug for Xoshiro256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // State is deliberately summarized: printing 256 bits of state in
        // logs is noise, but the value must never be empty (C-DEBUG-NONEMPTY).
        write!(f, "Xoshiro256 {{ s0: {:#x}, .. }}", self.s[0])
    }
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through [`SplitMix64`].
    ///
    /// Any seed is acceptable, including zero (the expansion cannot produce
    /// the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Derives an independent child generator for a named subsystem.
    ///
    /// Mixing a label keeps subsystem streams decoupled: adding draws in one
    /// subsystem does not perturb any other, which keeps experiments
    /// comparable across code changes.
    pub fn fork(&mut self, label: &str) -> Xoshiro256 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Xoshiro256::seed_from_u64(self.next_u64() ^ h)
    }

    /// Returns the next 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits and scale by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in the open interval `(0, 1]` (never zero), suitable
    /// for `ln()` without domain errors.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "invalid range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p`.
    ///
    /// `p <= 0` never fires; `p >= 1` always fires.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm).
    ///
    /// Returns all of `0..n` (in random order is *not* guaranteed) when
    /// `k >= n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut chosen = Vec::new();
        self.sample_indices_into(n, k, &mut chosen);
        chosen
    }

    /// [`Xoshiro256::sample_indices`] into a caller-provided buffer
    /// (cleared first), so steady-state fan-out sampling reuses one
    /// allocation. The draw sequence is identical to `sample_indices`.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        out.clear();
        if k >= n {
            out.extend(0..n);
            return;
        }
        // Floyd's algorithm yields k distinct values without rejection.
        out.reserve(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
    }

    /// Chooses one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.index(slice.len())]
    }

    /// Chooses an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be non-empty with positive finite sum"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference values computed from the published SplitMix64 algorithm
        // (seed = 1234567). Pinning them here freezes the stream: any change
        // to the implementation is a breaking change for stored seeds.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            0x599e_d017_fb08_fc85u64,
            0x2c73_f084_5854_0fa5,
            0x883e_bce5_a3f2_7c77,
            0x3fbe_f740_e917_7b3f,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // First outputs of xoshiro256** seeded through SplitMix64(42),
        // cross-computed from the published algorithm description.
        let mut rng = Xoshiro256::seed_from_u64(42);
        let expected = [
            0x1578_0b2e_0c2e_c716u64,
            0x6104_d986_6d11_3a7e,
            0xae17_5332_39e4_99a1,
            0xecb8_ad47_03b3_60a1,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let mut c = Xoshiro256::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(10) as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            // Expected 10,000 per bucket; allow ±5%.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_helpers() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert_eq!(rng.range_u64(5, 5), 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((24_000..=26_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for _ in 0..100 {
            let s = rng.sample_indices(50, 12);
            assert_eq!(s.len(), 12);
            let set: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(set.len(), 12);
            assert!(s.iter().all(|&i| i < 50));
        }
        assert_eq!(rng.sample_indices(5, 10).len(), 5);
        assert_eq!(rng.sample_indices(5, 5).len(), 5);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let weights = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert!((68_000..=72_000).contains(&counts[0]), "{counts:?}");
        assert!((18_000..=22_000).contains(&counts[1]), "{counts:?}");
        assert!((8_000..=12_000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn forked_streams_are_independent_of_label_order() {
        let mut root1 = Xoshiro256::seed_from_u64(100);
        let mut net1 = root1.fork("net");
        let mut root2 = Xoshiro256::seed_from_u64(100);
        let mut net2 = root2.fork("net");
        assert_eq!(net1.next_u64(), net2.next_u64());

        let mut root3 = Xoshiro256::seed_from_u64(100);
        let mut other = root3.fork("mining");
        assert_ne!(net1.next_u64(), other.next_u64());
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let rng = Xoshiro256::seed_from_u64(1);
        assert!(!format!("{rng:?}").is_empty());
    }
}
