//! A small Rust surface lexer: produces a *code view* of a source file in
//! which every comment, string literal, character literal, and raw string
//! is blanked to spaces (byte offsets and line breaks are preserved), and
//! extracts `detlint` allow pragmas from the comment text.
//!
//! This is deliberately not a parser. The determinism rules only need to
//! see real tokens — a `HashMap` inside a doc comment or a format string
//! must not trip them — and blanking non-code bytes in place keeps every
//! diagnostic's `file:line` exact without building an AST. The lexer
//! handles the constructs that matter for that fidelity: nested block
//! comments, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and escaped quotes.

/// One allow pragma found in a comment.
///
/// Syntax (inside any `//` or `/* */` comment): the literal marker
/// `detlint::allow` followed immediately by an open paren, the rule id,
/// and a mandatory `reason = "<non-empty reason>"` — see `DETERMINISM.md`
/// for worked examples. (The exact form is not spelled out here so that
/// detlint's own sources do not register a stray pragma.)
///
/// A pragma suppresses matching diagnostics on its own line and on the
/// next line, so it can trail the offending expression or sit on the line
/// above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line of the comment carrying the pragma.
    pub line: usize,
    /// The rule id named by the pragma (not yet validated).
    pub rule: String,
    /// The mandatory human-written justification.
    pub reason: String,
}

/// A malformed pragma: the marker was present but the payload did not
/// parse or the reason was missing/empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

/// The blanked source plus everything recovered from comments.
#[derive(Debug, Clone)]
pub struct CodeView {
    /// The source with comments/literals replaced by spaces. Same length
    /// and line structure as the input.
    pub code: String,
    /// Well-formed allow pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas, in source order.
    pub pragma_errors: Vec<PragmaError>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl CodeView {
    /// The 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The blanked text of the given 1-based line (without the newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.code.len(), |&e| e - 1);
        &self.code[start..end.max(start)]
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// The marker that introduces an allow pragma inside a comment. Built by
/// concatenation so the lexer's own sources never contain the literal
/// marker in comment position.
const PRAGMA_MARKER: &str = concat!("detlint", "::allow(");

/// Lexes `source` into a [`CodeView`].
pub fn lex(source: &str) -> CodeView {
    let bytes = source.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut pragmas = Vec::new();
    let mut pragma_errors = Vec::new();
    let mut line_starts = vec![0usize];
    let mut i = 0usize;
    let mut line = 1usize;

    // Pushes a blanked byte, keeping newlines so lines stay aligned.
    macro_rules! blank {
        ($b:expr) => {
            code.push(if $b == b'\n' { b'\n' } else { b' ' })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code.push(b'\n');
            line += 1;
            line_starts.push(i + 1);
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let mut text = Vec::new();
            while i < bytes.len() && bytes[i] != b'\n' {
                text.push(bytes[i]);
                blank!(bytes[i]);
                i += 1;
            }
            scan_comment_for_pragma(
                std::str::from_utf8(&text).unwrap_or(""),
                start_line,
                &mut pragmas,
                &mut pragma_errors,
            );
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = Vec::new();
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_starts.push(i + 1);
                    }
                    text.push(bytes[i]);
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            scan_comment_for_pragma(
                std::str::from_utf8(&text).unwrap_or(""),
                start_line,
                &mut pragmas,
                &mut pragma_errors,
            );
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br##"..."##.
        if let Some((prefix_len, fence)) = raw_string_at(bytes, i) {
            for _ in 0..prefix_len {
                blank!(bytes[i]);
                i += 1;
            }
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', fence))
                .collect();
            while i < bytes.len() {
                if bytes[i..].starts_with(&closer) {
                    for _ in 0..closer.len() {
                        blank!(bytes[i]);
                        i += 1;
                    }
                    break;
                }
                if bytes[i] == b'\n' {
                    line += 1;
                    line_starts.push(i + 1);
                }
                blank!(bytes[i]);
                i += 1;
            }
            continue;
        }
        // Ordinary (byte) string.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            if b == b'b' {
                blank!(bytes[i]);
                i += 1;
            }
            blank!(bytes[i]); // opening quote
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        blank!(bytes[i]);
                        if i + 1 < bytes.len() {
                            // `\` + newline is a line-continuation escape.
                            if bytes[i + 1] == b'\n' {
                                line += 1;
                                line_starts.push(i + 2);
                            }
                            blank!(bytes[i + 1]);
                        }
                        i += 2;
                    }
                    b'"' => {
                        blank!(bytes[i]);
                        i += 1;
                        break;
                    }
                    c => {
                        if c == b'\n' {
                            line += 1;
                            line_starts.push(i + 1);
                        }
                        blank!(c);
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs. lifetime. `'x'` and `'\n'` are literals;
        // `'static` (no closing quote after one "unit") is a lifetime and
        // stays in the code view.
        if b == b'\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(&c) if c != b'\'' => bytes.get(i + 2) == Some(&b'\''),
                _ => false,
            };
            if is_char {
                blank!(bytes[i]);
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            blank!(bytes[i]);
                            if i + 1 < bytes.len() {
                                blank!(bytes[i + 1]);
                            }
                            i += 2;
                        }
                        b'\'' => {
                            blank!(bytes[i]);
                            i += 1;
                            break;
                        }
                        c => {
                            blank!(c);
                            i += 1;
                        }
                    }
                }
                continue;
            }
        }
        code.push(b);
        i += 1;
    }

    CodeView {
        code: String::from_utf8_lossy(&code).into_owned(),
        pragmas,
        pragma_errors,
        line_starts,
    }
}

/// Detects a raw-string opener at `i`; returns `(prefix_len, fence)`
/// where `prefix_len` covers `r`/`br` plus fence hashes plus the opening
/// quote, and `fence` is the number of `#`.
fn raw_string_at(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    // Don't treat the `r` of an identifier like `for` as a prefix.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut fence = 0usize;
    while bytes.get(j) == Some(&b'#') {
        fence += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    Some((j + 1 - i, fence))
}

/// Parses every pragma occurrence in one comment's text.
fn scan_comment_for_pragma(
    text: &str,
    line: usize,
    pragmas: &mut Vec<Pragma>,
    errors: &mut Vec<PragmaError>,
) {
    let mut rest = text;
    while let Some(at) = rest.find(PRAGMA_MARKER) {
        let payload = &rest[at + PRAGMA_MARKER.len()..];
        match parse_pragma_payload(payload) {
            Ok((rule, reason)) => pragmas.push(Pragma { line, rule, reason }),
            Err(message) => errors.push(PragmaError { line, message }),
        }
        rest = payload;
    }
}

/// Parses `<rule-id>, reason = "<reason>")`. The reason is delimited by
/// its quotes (it may itself contain parentheses or commas); the closing
/// paren is required after the closing quote.
fn parse_pragma_payload(payload: &str) -> Result<(String, String), String> {
    let id_end = payload
        .find([',', ')'])
        .ok_or_else(|| "pragma is missing its closing parenthesis".to_string())?;
    let rule_part = payload[..id_end].trim();
    if rule_part.is_empty()
        || !rule_part
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(format!("malformed rule id `{rule_part}` in pragma"));
    }
    let missing_reason =
        || format!("pragma for `{rule_part}` is missing the mandatory `reason = \"...\"`");
    if payload.as_bytes()[id_end] == b')' {
        return Err(missing_reason());
    }
    let rest = payload[id_end + 1..].trim_start();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or_else(missing_reason)?;
    let reason = reason
        .strip_prefix('"')
        .ok_or_else(|| format!("pragma reason for `{rule_part}` must be a quoted string"))?;
    let quote_end = reason
        .find('"')
        .ok_or_else(|| format!("pragma reason for `{rule_part}` has no closing quote"))?;
    let after = reason[quote_end + 1..].trim_start();
    if !after.starts_with(')') {
        return Err(format!(
            "pragma for `{rule_part}` is missing its closing parenthesis"
        ));
    }
    let reason = reason[..quote_end].trim();
    if reason.is_empty() {
        return Err(format!("pragma reason for `{rule_part}` must not be empty"));
    }
    Ok((rule_part.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 1; /* HashSet */\n";
        let v = lex(src);
        assert!(!v.code.contains("HashMap"));
        assert!(!v.code.contains("HashSet"));
        assert_eq!(v.code.len(), src.len());
        assert_eq!(v.line_count(), 3); // trailing newline opens line 3
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "let r = r#\"Instant::now\"#; let c = 'x'; fn f<'a>(v: &'a u8) {}";
        let v = lex(src);
        assert!(!v.code.contains("Instant"));
        assert!(!v.code.contains('x'));
        assert!(v.code.contains("<'a>"), "lifetime must survive: {}", v.code);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let v = lex(src);
        assert!(v.code.contains("let x = 1;"));
        assert!(!v.code.contains("outer"));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"line1\nline2\";\nlet t = 9;\n";
        let v = lex(src);
        let off = v.code.find("let t").expect("t found");
        assert_eq!(v.line_of(off), 3);
    }

    #[test]
    fn pragma_round_trip() {
        let marker = PRAGMA_MARKER;
        let src = format!("// {marker}default-hasher, reason = \"interned slots\")\nlet x = 1;\n");
        let v = lex(&src);
        assert_eq!(v.pragma_errors, Vec::new());
        assert_eq!(
            v.pragmas,
            vec![Pragma {
                line: 1,
                rule: "default-hasher".into(),
                reason: "interned slots".into()
            }]
        );
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let src = format!("// {}entropy)\nlet x = 1;\n", PRAGMA_MARKER);
        let v = lex(&src);
        assert!(v.pragmas.is_empty());
        assert_eq!(v.pragma_errors.len(), 1);
        assert!(v.pragma_errors[0].message.contains("reason"));
    }

    #[test]
    fn pragma_with_empty_reason_is_an_error() {
        let src = format!("// {}entropy, reason = \"  \")\n", PRAGMA_MARKER);
        let v = lex(&src);
        assert!(v.pragmas.is_empty());
        assert_eq!(v.pragma_errors.len(), 1);
    }
}
