//! The per-node protocol state machine.
//!
//! A [`Node`] makes Geth-1.8's gossip decisions: push full blocks to
//! √(peers) immediately on arrival (before import), announce to the rest
//! after import, fetch announced blocks with timeout fallback, and relay
//! fresh transactions. It returns the [`Send`]s it wants performed; the
//! simulation driver applies link latency and schedules delivery, keeping
//! this type synchronous and unit-testable.
//!
//! Hot-path layout: all per-peer and per-artifact state is dense. Blocks
//! and transactions arrive with their campaign-interned slots
//! ([`BlockIdx`]/[`TxIdx`], issued by the driver's registries at creation
//! time), peers are addressed by connection position, and the
//! known/seen/pending sets are `Vec`-indexed slabs and flat probe tables
//! ([`DenseKnownSet`]) — no `BlockHash`- or `NodeId`-keyed hash maps
//! anywhere on the per-message path. Wire messages still carry real
//! hashes; slots never leave the process.
//!
//! Handlers are allocation-free in steady state: every handler appends
//! its outgoing messages to a caller-owned `Vec<Send>` (the driver
//! recycles one buffer across all events), message payloads inline their
//! one-or-two ids
//! ([`crate::message::AnnounceList`]/[`crate::message::TxBatch`]), and
//! all intermediate candidate lists live in per-node scratch buffers.

use std::sync::Arc;

use ethmeter_chain::block::Block;
use ethmeter_chain::consensus::Consensus;
use ethmeter_chain::tx::Transaction;
use ethmeter_chain::uncles::UnclePolicy;
use ethmeter_geo::BandwidthClass;
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{BlockHash, BlockIdx, NodeId, Region, TxId, TxIdx};

use crate::config::{NetConfig, TxRelayPolicy};
use crate::headerview::{HeaderInsert, HeaderView};
use crate::known::{DenseKnownSet, PeerKnownSet};
use crate::message::{AnnounceList, Message, TxBatch};
use ethmeter_txpool::Mempool;

/// An outgoing message the driver must deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Send {
    /// Destination peer.
    pub to: NodeId,
    /// Payload.
    pub msg: Message,
}

/// Whether the node wants an import scheduled after validation latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportAction {
    /// Schedule `on_import_complete` for this block after validation time.
    Schedule(BlockIdx),
    /// Nothing to do (duplicate or unwanted).
    None,
}

#[derive(Debug, Clone)]
struct FetchState {
    announcers: Vec<NodeId>,
    tried: usize,
}

/// Sentinel in the `NodeId → peer position` table for non-peers.
const NO_PEER: u32 = u32::MAX;

/// Why a runtime link add was rejected (see [`Node::try_add_link`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// Both endpoints are the same node.
    SelfLink,
    /// The link already exists.
    Duplicate,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::SelfLink => write!(f, "self-link"),
            LinkError::Duplicate => write!(f, "duplicate link"),
        }
    }
}

impl std::error::Error for LinkError {}

/// A network node: peer links, chain view, gossip state, and (for miner
/// gateways) a mempool.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    region: Region,
    bandwidth: BandwidthClass,
    peers: Vec<NodeId>,
    /// `peer_pos[node]` = position of `node` in `peers` (slab key for the
    /// per-peer state below), or [`NO_PEER`].
    peer_pos: Vec<u32>,
    /// Per-peer known-block sets, by peer position, keyed by [`BlockIdx`].
    peer_known_blocks: Vec<DenseKnownSet>,
    /// Per-peer known-tx sets, by peer position, keyed by [`TxIdx`] —
    /// one key-major bitmap family (see [`PeerKnownSet`]): transaction
    /// floods touch every peer's bit for the same recent key, so the
    /// shared rows keep those operations on hot cache lines.
    peer_known_txs: PeerKnownSet,
    chain: HeaderView,
    /// Transactions this node has seen, keyed by [`TxIdx`] — a
    /// single-member [`PeerKnownSet`], so membership bits of consecutive
    /// recent transactions share cache lines.
    seen_txs: PeerKnownSet,
    /// Blocks whose body this node holds (or is importing), keyed by
    /// [`BlockIdx`].
    have_body: DenseKnownSet,
    /// Blocks with a scheduled import: `(slot, provenance)`. In-flight
    /// imports are at most a handful, so a flat vector with linear probes
    /// beats any hashed structure.
    import_pending: Vec<(BlockIdx, Option<NodeId>)>,
    /// Blocks currently being fetched (same flat-vector reasoning).
    fetching: Vec<(BlockIdx, FetchState)>,
    mempool: Option<Mempool>,
    /// A cleared mempool parked here across [`Node::reset`] so a node
    /// that is a gateway again next campaign reuses the allocation.
    spare_mempool: Option<Mempool>,
    /// Reusable relay-candidate buffer of `(peer position, peer)` pairs
    /// (cleared per call; never observable). Carrying the position avoids
    /// a `peer_pos` lookup per send in the fan-out loops.
    scratch: Vec<(u32, NodeId)>,
    /// Second reusable buffer for fanout sampling (swapped with `scratch`).
    scratch_picks: Vec<(u32, NodeId)>,
    /// Reusable buffer for sampled fan-out indices.
    scratch_idx: Vec<usize>,
    /// Reusable `(slot, id)` buffer of fresh transactions per batch.
    scratch_fresh: Vec<(TxIdx, TxId)>,
}

impl Node {
    /// Creates a node rooted at `genesis`, with fork choice driven by
    /// `consensus`.
    pub fn new(
        id: NodeId,
        region: Region,
        bandwidth: BandwidthClass,
        genesis: BlockHash,
        cfg: &NetConfig,
        consensus: Arc<dyn Consensus>,
    ) -> Self {
        Node {
            id,
            region,
            bandwidth,
            peers: Vec::new(),
            peer_pos: Vec::new(),
            peer_known_blocks: Vec::new(),
            peer_known_txs: PeerKnownSet::new(),
            chain: HeaderView::with_consensus(genesis, cfg.header_window, consensus),
            seen_txs: {
                let mut seen = PeerKnownSet::new();
                seen.add_peer(cfg.known_txs_cap);
                seen
            },
            have_body: DenseKnownSet::with_capacity(4 * cfg.header_window as usize),
            import_pending: Vec::new(),
            fetching: Vec::new(),
            mempool: None,
            spare_mempool: None,
            scratch: Vec::new(),
            scratch_picks: Vec::new(),
            scratch_idx: Vec::new(),
            scratch_fresh: Vec::new(),
        }
    }

    /// Rewinds the node to the state `Node::new(id, region, bandwidth,
    /// genesis, cfg, consensus)` would build, keeping every allocation:
    /// peer slabs, per-peer known-set tables (reused by the next
    /// [`Node::try_add_link`] calls), the header view's maps, and the
    /// mempool (if re-enabled). Campaign-over-campaign behavior is
    /// identical to a fresh node.
    pub fn reset(
        &mut self,
        id: NodeId,
        region: Region,
        bandwidth: BandwidthClass,
        genesis: BlockHash,
        cfg: &NetConfig,
        consensus: Arc<dyn Consensus>,
    ) {
        self.id = id;
        self.region = region;
        self.bandwidth = bandwidth;
        self.peers.clear();
        self.peer_pos.clear();
        // peer_known_blocks intentionally keeps its (stale) sets;
        // `try_add_link` re-initializes slot `pos` before `peers` grows
        // past it, so stale state is never reachable.
        self.peer_known_txs.clear();
        self.chain.reset_with(genesis, cfg.header_window, consensus);
        self.seen_txs.clear();
        self.seen_txs.add_peer(cfg.known_txs_cap);
        self.have_body.reset(4 * cfg.header_window as usize);
        self.import_pending.clear();
        self.fetching.clear();
        if let Some(mut pool) = self.mempool.take() {
            pool.clear();
            self.spare_mempool = Some(pool);
        }
        self.scratch.clear();
        self.scratch_picks.clear();
        self.scratch_idx.clear();
        self.scratch_fresh.clear();
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The node's access-link class.
    pub fn bandwidth(&self) -> BandwidthClass {
        self.bandwidth
    }

    /// The node's header view of the chain.
    pub fn chain(&self) -> &HeaderView {
        &self.chain
    }

    /// Connected peers, in connection order.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Attaches a mempool (miner gateways and any node that should track
    /// executable transactions).
    pub fn enable_mempool(&mut self) {
        if self.mempool.is_none() {
            self.mempool = Some(self.spare_mempool.take().unwrap_or_default());
        }
    }

    /// The node's mempool, if enabled.
    pub fn mempool(&self) -> Option<&Mempool> {
        self.mempool.as_ref()
    }

    /// Registers a bidirectional link (the driver calls this on both
    /// ends). This is the only link-add path: a malformed link — self-link
    /// or duplicate — surfaces a structured [`LinkError`] instead of
    /// panicking, whether it comes from topology construction or from the
    /// runtime join/heal path inside a shard worker.
    pub fn try_add_link(&mut self, peer: NodeId, cfg: &NetConfig) -> Result<(), LinkError> {
        if peer == self.id {
            return Err(LinkError::SelfLink);
        }
        if self.pos_of(peer).is_some() {
            return Err(LinkError::Duplicate);
        }
        if self.peer_pos.len() <= peer.index() {
            self.peer_pos.resize(peer.index() + 1, NO_PEER);
        }
        let pos = self.peers.len();
        self.peer_pos[peer.index()] = pos as u32;
        self.peers.push(peer);
        // Reuse a known-set left behind by `reset`, if one exists at this
        // slab position; otherwise grow the slab.
        match self.peer_known_blocks.get_mut(pos) {
            Some(set) => set.reset(cfg.known_blocks_cap),
            None => self
                .peer_known_blocks
                .push(DenseKnownSet::with_capacity(cfg.known_blocks_cap)),
        }
        let tx_pos = self.peer_known_txs.add_peer(cfg.known_txs_cap);
        debug_assert_eq!(tx_pos, pos, "peer slabs advance in lockstep");
        Ok(())
    }

    /// Assert-based [`Node::try_add_link`], kept for drivers built before
    /// the checked path existed.
    ///
    /// # Panics
    ///
    /// Panics on self-links or duplicate links.
    #[deprecated(note = "use `try_add_link`, which reports malformed links as a `LinkError`")]
    pub fn connect(&mut self, peer: NodeId, cfg: &NetConfig) {
        match self.try_add_link(peer, cfg) {
            Ok(()) => {}
            Err(LinkError::SelfLink) => panic!("self-link"),
            Err(LinkError::Duplicate) => panic!("duplicate link to {peer}"),
        }
    }

    /// True if `peer` is currently linked.
    #[inline]
    pub fn is_peer(&self, peer: NodeId) -> bool {
        self.pos_of(peer).is_some()
    }

    /// Tears down the link to `peer`, dropping its per-link gossip state
    /// (known-blocks set, known-txs bits) without disturbing any other
    /// link's state. Returns `false` if no such link exists.
    ///
    /// In-flight fetch/announce bookkeeping may still name the departed
    /// peer; the driver drops sends addressed to non-peers, and arrivals
    /// from non-peers are already tolerated as no-ops.
    pub fn disconnect(&mut self, peer: NodeId) -> bool {
        let Some(pos) = self.pos_of(peer) else {
            return false;
        };
        let last = self.peers.len() - 1;
        self.peer_pos[peer.index()] = NO_PEER;
        self.peers.swap_remove(pos);
        if pos != last {
            let moved = self.peers[pos];
            self.peer_pos[moved.index()] = pos as u32;
        }
        // Park the severed link's (now stale) block set at the slab tail
        // for reuse by a future `connect` — the same reuse contract
        // `reset` relies on; `connect` re-initializes slot `pos` before
        // `peers` grows past it.
        self.peer_known_blocks.swap(pos, last);
        self.peer_known_txs.remove_peer(pos);
        true
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.peers.len()
    }

    /// The slab position of `peer`, if connected.
    #[inline]
    fn pos_of(&self, peer: NodeId) -> Option<usize> {
        match self.peer_pos.get(peer.index()) {
            Some(&p) if p != NO_PEER => Some(p as usize),
            _ => None,
        }
    }

    #[inline]
    fn mark_peer_knows_block(&mut self, peer: NodeId, idx: BlockIdx) {
        if let Some(p) = self.pos_of(peer) {
            self.peer_known_blocks[p].insert(idx.raw());
        }
    }

    #[inline]
    fn peer_knows_block(&self, pos: usize, idx: BlockIdx) -> bool {
        self.peer_known_blocks[pos].contains(idx.raw())
    }

    #[inline]
    fn pending_provenance(&mut self, idx: BlockIdx) -> Option<Option<NodeId>> {
        self.import_pending
            .iter()
            .position(|&(i, _)| i == idx)
            .map(|at| self.import_pending.swap_remove(at).1)
    }

    #[inline]
    fn is_import_pending(&self, idx: BlockIdx) -> bool {
        self.import_pending.iter().any(|&(i, _)| i == idx)
    }

    /// Handles a full block arriving — by unsolicited push (`NewBlock`),
    /// fetch response (`BlockBody`), or local mining (`from = None`).
    ///
    /// `idx` is the block's campaign-interned slot (from the driver's
    /// registry). Appends the immediate relays (full-block pushes to
    /// √(peers)) to `out` and returns whether to schedule an import.
    pub fn on_block_arrival(
        &mut self,
        from: Option<NodeId>,
        block: &Block,
        idx: BlockIdx,
        cfg: &NetConfig,
        rng: &mut Xoshiro256,
        out: &mut Vec<Send>,
    ) -> ImportAction {
        let hash = block.hash();
        if let Some(p) = from {
            self.mark_peer_knows_block(p, idx);
        }
        if let Some(at) = self.fetching.iter().position(|(i, _)| *i == idx) {
            self.fetching.swap_remove(at);
        }
        if self.have_body.contains(idx.raw())
            || self.chain.contains(hash)
            || self.is_import_pending(idx)
        {
            return ImportAction::None;
        }
        self.have_body.insert(idx.raw());

        // Relay policy: push recent (head-candidate) blocks; optionally
        // also side blocks within the relay window.
        let head_number = self.chain.head_number();
        let improves = block.number() > head_number;
        let recent = block.number() + cfg.relay_window > head_number;
        let relay = improves || (cfg.relay_non_head && recent);

        if relay {
            self.scratch.clear();
            for pos in 0..self.peers.len() {
                let p = self.peers[pos];
                if Some(p) != from && !self.peer_knows_block(pos, idx) {
                    self.scratch.push((pos as u32, p));
                }
            }
            // Locally produced blocks (miner gateways) are pushed to every
            // peer: pool gateway software floods its own blocks to minimize
            // orphan risk, unlike vanilla Geth's sqrt relay.
            let fanout = if from.is_none() {
                self.scratch.len()
            } else {
                cfg.push_fanout(self.peers.len()).min(self.scratch.len())
            };
            let n_candidates = self.scratch.len();
            rng.sample_indices_into(n_candidates, fanout, &mut self.scratch_idx);
            out.reserve(self.scratch_idx.len());
            for t in 0..self.scratch_idx.len() {
                let (pos, peer) = self.scratch[self.scratch_idx[t]];
                self.peer_known_blocks[pos as usize].insert(idx.raw());
                out.push(Send {
                    to: peer,
                    msg: Message::NewBlock(hash),
                });
            }
        }
        self.import_pending.push((idx, from));
        ImportAction::Schedule(idx)
    }

    /// Handles a `NewBlockHashes` announcement: fetch unknown blocks from
    /// the announcer (Geth's fetcher). Entries pair each announced hash
    /// with its interned slot. Requests are appended to `out`.
    pub fn on_announce(
        &mut self,
        from: NodeId,
        hashes: &[(BlockHash, BlockIdx)],
        out: &mut Vec<Send>,
    ) {
        for &(hash, idx) in hashes {
            self.mark_peer_knows_block(from, idx);
            if self.have_body.contains(idx.raw())
                || self.chain.contains(hash)
                || self.is_import_pending(idx)
            {
                continue;
            }
            match self.fetching.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, f)) => {
                    if !f.announcers.contains(&from) {
                        f.announcers.push(from);
                    }
                }
                None => {
                    self.fetching.push((
                        idx,
                        FetchState {
                            announcers: vec![from],
                            tried: 1,
                        },
                    ));
                    out.push(Send {
                        to: from,
                        msg: Message::GetBlock(hash),
                    });
                }
            }
        }
    }

    /// Fetch timeout: re-request from the next announcer, or give up.
    ///
    /// Appends the re-request (if any) to `out`; the driver should re-arm
    /// the timeout when a request goes out.
    pub fn on_fetch_timeout(&mut self, hash: BlockHash, idx: BlockIdx, out: &mut Vec<Send>) {
        if self.have_body.contains(idx.raw()) || self.chain.contains(hash) {
            if let Some(at) = self.fetching.iter().position(|(i, _)| *i == idx) {
                self.fetching.swap_remove(at);
            }
            return;
        }
        let Some(at) = self.fetching.iter().position(|(i, _)| *i == idx) else {
            return;
        };
        let f = &mut self.fetching[at].1;
        if f.tried < f.announcers.len() {
            let next = f.announcers[f.tried];
            f.tried += 1;
            out.push(Send {
                to: next,
                msg: Message::GetBlock(hash),
            });
        } else {
            // Out of announcers: give up; a push may still deliver it.
            self.fetching.swap_remove(at);
        }
    }

    /// Serves a fetch request if the body is available (appended to
    /// `out`).
    pub fn on_get_block(
        &mut self,
        from: NodeId,
        hash: BlockHash,
        idx: BlockIdx,
        out: &mut Vec<Send>,
    ) {
        if !self.have_body.contains(idx.raw()) {
            return;
        }
        self.mark_peer_knows_block(from, idx);
        out.push(Send {
            to: from,
            msg: Message::BlockBody(hash),
        });
    }

    /// Completes an import after validation latency: inserts into the
    /// chain view, prunes the mempool, and announces to unknowing peers
    /// (appended to `out`).
    ///
    /// `included` must be the block's transactions (resolved by the driver
    /// from its registry). Returns true if the block became the node's
    /// head.
    pub fn on_import_complete(
        &mut self,
        block: &Block,
        idx: BlockIdx,
        included: &[&Transaction],
        cfg: &NetConfig,
        out: &mut Vec<Send>,
    ) -> bool {
        let hash = block.hash();
        let provenance = self.pending_provenance(idx).flatten();
        let outcome = self.chain.insert(
            hash,
            block.parent(),
            block.number(),
            block.miner(),
            block.header().difficulty(),
            block.uncles(),
        );
        let new_head = matches!(outcome, HeaderInsert::NewHead { .. });

        if outcome == HeaderInsert::Orphaned {
            // Ask whoever gave us the block for its parent (Geth's fetcher
            // backfill). If it was locally mined there is no one to ask.
            if let Some(p) = provenance {
                out.push(Send {
                    to: p,
                    msg: Message::GetBlock(block.parent()),
                });
            }
            return new_head;
        }

        if let Some(pool) = self.mempool.as_mut() {
            if new_head {
                pool.on_block(included.iter().copied());
            }
        }

        // Post-import announcement to everyone not known to have it. The
        // single-hash payload lives inline in the message, so the per-peer
        // fan-out allocates nothing.
        let head_number = self.chain.head_number();
        let recent = block.number() + cfg.relay_window > head_number;
        if new_head || (cfg.relay_non_head && recent) {
            for pos in 0..self.peers.len() {
                if self.peer_knows_block(pos, idx) {
                    continue;
                }
                self.peer_known_blocks[pos].insert(idx.raw());
                out.push(Send {
                    to: self.peers[pos],
                    msg: Message::Announce(AnnounceList::one(hash)),
                });
            }
        }
        new_head
    }

    /// Handles a batch of transactions (`from = None` for local
    /// submissions injected by the workload). Entries pair each
    /// transaction with its interned slot.
    ///
    /// Appends the relays to `out`. Fresh transactions are added to the
    /// mempool if one is enabled.
    pub fn on_transactions(
        &mut self,
        from: Option<NodeId>,
        txs: &[(TxIdx, &Transaction)],
        cfg: &NetConfig,
        rng: &mut Xoshiro256,
        out: &mut Vec<Send>,
    ) {
        let from_pos = from.and_then(|p| self.pos_of(p));
        // The fresh list lives in a node-owned buffer; take/restore keeps
        // the allocation across calls while the mempool borrow is live.
        let mut fresh = std::mem::take(&mut self.scratch_fresh);
        fresh.clear();
        for &(idx, tx) in txs {
            if let Some(p) = from_pos {
                self.peer_known_txs.insert(p, idx.raw());
            }
            if self.seen_txs.insert(0, idx.raw()) {
                fresh.push((idx, tx.id));
                if let Some(pool) = self.mempool.as_mut() {
                    pool.add(tx);
                }
            }
        }
        if fresh.is_empty() {
            self.scratch_fresh = fresh;
            return;
        }
        // Choose relay targets (into the scratch buffer, so the common
        // all-peers case allocates nothing).
        self.scratch.clear();
        for pos in 0..self.peers.len() {
            let p = self.peers[pos];
            if Some(p) != from {
                self.scratch.push((pos as u32, p));
            }
        }
        if cfg.tx_relay == TxRelayPolicy::Sqrt {
            let fanout = cfg.push_fanout(self.peers.len()).min(self.scratch.len());
            let n_candidates = self.scratch.len();
            rng.sample_indices_into(n_candidates, fanout, &mut self.scratch_idx);
            // Gather into the second persistent buffer and swap, keeping
            // both allocations alive across calls (picks may reference
            // positions in any order, so in-place compaction is unsafe).
            self.scratch_picks.clear();
            for t in 0..self.scratch_idx.len() {
                self.scratch_picks.push(self.scratch[self.scratch_idx[t]]);
            }
            std::mem::swap(&mut self.scratch, &mut self.scratch_picks);
        }
        // `insert` returning true ⟺ the peer did not know the tx, so one
        // fused probe replaces the old contains-then-insert pair; the set
        // state afterwards is identical (duplicate inserts are no-ops).
        out.reserve(self.scratch.len());
        if let [(idx, id)] = fresh[..] {
            // Dominant case: a single fresh transaction — no list
            // materialization, no per-send heap payload.
            for ti in 0..self.scratch.len() {
                let (pos, peer) = self.scratch[ti];
                if self.peer_known_txs.insert(pos as usize, idx.raw()) {
                    out.push(Send {
                        to: peer,
                        msg: Message::Tx(id),
                    });
                }
            }
            self.scratch_fresh = fresh;
            return;
        }
        for ti in 0..self.scratch.len() {
            let (pos, peer) = self.scratch[ti];
            // Small batches inline in the message; only outsized bursts
            // spill to the heap.
            let mut unknown = TxBatch::new();
            for &(idx, id) in fresh.iter() {
                if self.peer_known_txs.insert(pos as usize, idx.raw()) {
                    unknown.push(id);
                }
            }
            match unknown.len() {
                0 => {}
                1 => out.push(Send {
                    to: peer,
                    msg: Message::Tx(unknown[0]),
                }),
                _ => out.push(Send {
                    to: peer,
                    msg: Message::Transactions(unknown),
                }),
            }
        }
        self.scratch_fresh = fresh;
    }

    /// Builds a mining template from this gateway's view: parent (current
    /// head), next height, uncle references, and packed transactions.
    ///
    /// Returns `(parent, number, uncles, txs)`.
    pub fn mine_template(
        &self,
        policy: UnclePolicy,
        gas_limit: u64,
    ) -> (BlockHash, u64, Vec<BlockHash>, Vec<TxId>) {
        let parent = self.chain.head();
        let number = self.chain.head_number() + 1;
        let uncles = self.chain.select_uncles(parent, policy);
        let txs = self
            .mempool
            .as_ref()
            .map(|m| m.pack(gas_limit))
            .unwrap_or_default();
        (parent, number, uncles, txs)
    }

    /// True if this block is currently being fetched (for driver timeout
    /// wiring).
    pub fn is_fetching(&self, idx: BlockIdx) -> bool {
        self.fetching.iter().any(|(i, _)| *i == idx)
    }

    /// True if the node holds (or is importing) this block's body.
    pub fn has_block_body(&self, idx: BlockIdx) -> bool {
        self.have_body.contains(idx.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::consensus::ConsensusKind;
    use ethmeter_chain::BlockRegistry;
    use ethmeter_types::{AccountId, ByteSize, PoolId, SimTime};
    use std::collections::HashSet;

    fn cfg() -> NetConfig {
        NetConfig::default()
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(7)
    }

    fn genesis() -> BlockHash {
        BlockHash::mix(0)
    }

    fn node(id: u32, n_peers: u32) -> Node {
        let c = cfg();
        let mut n = Node::new(
            NodeId(id),
            Region::WesternEurope,
            BandwidthClass::Datacenter,
            genesis(),
            &c,
            ConsensusKind::Heaviest.build(),
        );
        for p in 0..n_peers {
            if p != id {
                n.try_add_link(NodeId(p), &c)
                    .expect("well-formed test link");
            }
        }
        n
    }

    fn block1() -> Block {
        BlockBuilder::new(genesis(), 1, PoolId(0))
            .mined_at(SimTime::from_secs(13))
            .build()
    }

    /// Interns `block` the way the driver does at creation time.
    fn intern(reg: &mut BlockRegistry, block: &Block) -> BlockIdx {
        reg.insert(block.clone())
    }

    fn tx(id: u64, origin: u32) -> Transaction {
        Transaction {
            id: TxId(id),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 5,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(origin),
        }
    }

    /// Out-buffer wrappers so assertions read like the old value-returning
    /// API.
    fn arrive(
        n: &mut Node,
        from: Option<NodeId>,
        b: &Block,
        idx: BlockIdx,
        c: &NetConfig,
        rng: &mut Xoshiro256,
    ) -> (Vec<Send>, ImportAction) {
        let mut sends = Vec::new();
        let action = n.on_block_arrival(from, b, idx, c, rng, &mut sends);
        (sends, action)
    }

    fn import(
        n: &mut Node,
        b: &Block,
        idx: BlockIdx,
        included: &[&Transaction],
        c: &NetConfig,
    ) -> (Vec<Send>, bool) {
        let mut sends = Vec::new();
        let new_head = n.on_import_complete(b, idx, included, c, &mut sends);
        (sends, new_head)
    }

    fn announce(n: &mut Node, from: NodeId, entries: &[(BlockHash, BlockIdx)]) -> Vec<Send> {
        let mut sends = Vec::new();
        n.on_announce(from, entries, &mut sends);
        sends
    }

    fn timeout(n: &mut Node, hash: BlockHash, idx: BlockIdx) -> Vec<Send> {
        let mut sends = Vec::new();
        n.on_fetch_timeout(hash, idx, &mut sends);
        sends
    }

    fn get_block(n: &mut Node, from: NodeId, hash: BlockHash, idx: BlockIdx) -> Vec<Send> {
        let mut sends = Vec::new();
        n.on_get_block(from, hash, idx, &mut sends);
        sends
    }

    fn transactions(
        n: &mut Node,
        from: Option<NodeId>,
        txs: &[(TxIdx, &Transaction)],
        c: &NetConfig,
        rng: &mut Xoshiro256,
    ) -> Vec<Send> {
        let mut sends = Vec::new();
        n.on_transactions(from, txs, c, rng, &mut sends);
        sends
    }

    #[test]
    fn push_relays_to_sqrt_peers_and_schedules_import() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 25);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let (sends, action) = arrive(&mut n, Some(NodeId(1)), &b, idx, &cfg(), &mut rng());
        assert_eq!(action, ImportAction::Schedule(idx));
        // sqrt(25) = 5 pushes, never back to the sender.
        assert_eq!(sends.len(), 5);
        assert!(sends.iter().all(|s| s.to != NodeId(1)));
        assert!(sends
            .iter()
            .all(|s| matches!(s.msg, Message::NewBlock(h) if h == b.hash())));
        // Distinct targets.
        let set: HashSet<NodeId> = sends.iter().map(|s| s.to).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn handlers_append_to_the_out_buffer() {
        // The driver recycles one buffer across events; handlers must
        // append, never clear.
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 25);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let mut sends = vec![Send {
            to: NodeId(7),
            msg: Message::GetBlock(BlockHash(1234)),
        }];
        n.on_block_arrival(Some(NodeId(1)), &b, idx, &cfg(), &mut rng(), &mut sends);
        assert_eq!(sends[0].to, NodeId(7), "pre-existing entry untouched");
        assert_eq!(sends.len(), 6);
    }

    #[test]
    fn duplicate_arrivals_do_nothing() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 25);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let (_, first) = arrive(&mut n, Some(NodeId(1)), &b, idx, &cfg(), &mut rng());
        assert!(matches!(first, ImportAction::Schedule(_)));
        let (sends, second) = arrive(&mut n, Some(NodeId(2)), &b, idx, &cfg(), &mut rng());
        assert!(sends.is_empty());
        assert_eq!(second, ImportAction::None);
    }

    #[test]
    fn import_complete_announces_to_unknowing_peers() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 10);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let c = cfg();
        let (pushes, _) = arrive(&mut n, Some(NodeId(1)), &b, idx, &c, &mut rng());
        let pushed_to: HashSet<NodeId> = pushes.iter().map(|s| s.to).collect();
        let (sends, new_head) = import(&mut n, &b, idx, &[], &c);
        assert!(new_head);
        // Announcements go to everyone who neither sent nor received it.
        let announced: HashSet<NodeId> = sends.iter().map(|s| s.to).collect();
        assert!(announced.is_disjoint(&pushed_to));
        assert!(!announced.contains(&NodeId(1)));
        assert_eq!(announced.len(), 9 - pushed_to.len());
        assert!(sends
            .iter()
            .all(|s| matches!(&s.msg, Message::Announce(v) if v[..] == [b.hash()])));
        // The inline payload never touches the heap.
        assert!(sends.iter().all(|s| match &s.msg {
            Message::Announce(v) => v.is_inline(),
            _ => false,
        }));
    }

    #[test]
    fn announce_triggers_single_fetch() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 5);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let sends = announce(&mut n, NodeId(1), &[(b.hash(), idx)]);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].to, NodeId(1));
        assert!(matches!(sends[0].msg, Message::GetBlock(h) if h == b.hash()));
        assert!(n.is_fetching(idx));
        // Second announcer recorded, no second request.
        let sends = announce(&mut n, NodeId(2), &[(b.hash(), idx)]);
        assert!(sends.is_empty());
        // Timeout falls over to the second announcer.
        let retry = timeout(&mut n, b.hash(), idx);
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].to, NodeId(2));
        // Exhausted announcers: gives up.
        let give_up = timeout(&mut n, b.hash(), idx);
        assert!(give_up.is_empty());
        assert!(!n.is_fetching(idx));
    }

    #[test]
    fn fetch_resolves_on_arrival() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 5);
        let b = block1();
        let idx = intern(&mut reg, &b);
        announce(&mut n, NodeId(1), &[(b.hash(), idx)]);
        let (_, action) = arrive(&mut n, Some(NodeId(1)), &b, idx, &cfg(), &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        assert!(!n.is_fetching(idx));
        assert!(timeout(&mut n, b.hash(), idx).is_empty());
    }

    #[test]
    fn get_block_served_only_when_held() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 5);
        let b = block1();
        let idx = intern(&mut reg, &b);
        assert!(get_block(&mut n, NodeId(1), b.hash(), idx).is_empty());
        arrive(&mut n, Some(NodeId(2)), &b, idx, &cfg(), &mut rng());
        assert!(n.has_block_body(idx));
        let resp = get_block(&mut n, NodeId(1), b.hash(), idx);
        assert_eq!(resp.len(), 1);
        assert!(matches!(resp[0].msg, Message::BlockBody(h) if h == b.hash()));
    }

    #[test]
    fn orphan_import_requests_parent() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 5);
        let c = cfg();
        // Block at height 2 whose parent (height 1) we never saw.
        let b1 = block1();
        let b2 = BlockBuilder::new(b1.hash(), 2, PoolId(0)).build();
        let i2 = intern(&mut reg, &b2);
        let (_, action) = arrive(&mut n, Some(NodeId(3)), &b2, i2, &c, &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        let (sends, new_head) = import(&mut n, &b2, i2, &[], &c);
        assert!(!new_head);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].to, NodeId(3));
        assert!(matches!(sends[0].msg, Message::GetBlock(h) if h == b1.hash()));
    }

    #[test]
    fn transactions_relay_to_all_unknowing_peers() {
        let mut n = node(99, 6);
        let c = cfg();
        let t1 = tx(1, 0);
        let sends = transactions(&mut n, Some(NodeId(1)), &[(TxIdx(0), &t1)], &c, &mut rng());
        // 5 peers other than the sender.
        assert_eq!(sends.len(), 5);
        // Replay: nothing fresh, nothing sent.
        assert!(
            transactions(&mut n, Some(NodeId(2)), &[(TxIdx(0), &t1)], &c, &mut rng()).is_empty()
        );
    }

    #[test]
    fn sqrt_tx_relay_caps_fanout() {
        let mut n = node(99, 25);
        let mut c = cfg();
        c.tx_relay = TxRelayPolicy::Sqrt;
        let t2 = tx(2, 0);
        let sends = transactions(&mut n, None, &[(TxIdx(1), &t2)], &c, &mut rng());
        assert_eq!(sends.len(), 5); // sqrt(25) = 5
    }

    #[test]
    fn tx_batches_relay_inline() {
        let mut n = node(99, 4);
        let c = cfg();
        let (t1, t2) = (tx(1, 0), tx(2, 0));
        let sends = transactions(
            &mut n,
            Some(NodeId(1)),
            &[(TxIdx(0), &t1), (TxIdx(1), &t2)],
            &c,
            &mut rng(),
        );
        assert_eq!(sends.len(), 3);
        for s in &sends {
            match &s.msg {
                Message::Transactions(batch) => {
                    assert_eq!(batch[..], [TxId(1), TxId(2)]);
                    assert!(batch.is_inline(), "2-element batch must stay inline");
                }
                other => panic!("expected a batch, got {other:?}"),
            }
        }
    }

    #[test]
    fn mempool_integration_and_mining_template() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 3);
        n.enable_mempool();
        let c = cfg();
        let tx0 = tx(1, 99);
        transactions(&mut n, None, &[(TxIdx(0), &tx0)], &c, &mut rng());
        assert_eq!(n.mempool().expect("enabled").len(), 1);

        let (parent, number, uncles, txs) = n.mine_template(UnclePolicy::Standard, 8_000_000);
        assert_eq!(parent, genesis());
        assert_eq!(number, 1);
        assert!(uncles.is_empty());
        assert_eq!(txs, vec![TxId(1)]);

        // A block including tx0 prunes it from the mempool.
        let b = BlockBuilder::new(genesis(), 1, PoolId(0))
            .txs(vec![TxId(1)])
            .build();
        let idx = intern(&mut reg, &b);
        arrive(&mut n, None, &b, idx, &c, &mut rng());
        let (_, new_head) = import(&mut n, &b, idx, &[&tx0], &c);
        assert!(new_head);
        assert_eq!(n.mempool().expect("enabled").len(), 0);
    }

    #[test]
    fn locally_mined_block_pushes_to_all_peers() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 9);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let (sends, action) = arrive(&mut n, None, &b, idx, &cfg(), &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        // Gateway flood: every peer, not just sqrt.
        assert_eq!(sends.len(), 9);
    }

    #[test]
    fn stale_side_blocks_not_relayed_when_policy_off() {
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 9);
        let mut c = cfg();
        c.relay_non_head = false;
        // Advance the node's head far beyond 1 by importing a chain.
        let mut parent = genesis();
        for i in 1..=10u64 {
            let b = BlockBuilder::new(parent, i, PoolId(0)).salt(i).build();
            parent = b.hash();
            let idx = intern(&mut reg, &b);
            arrive(&mut n, Some(NodeId(1)), &b, idx, &c, &mut rng());
            import(&mut n, &b, idx, &[], &c);
        }
        assert_eq!(n.chain().head_number(), 10);
        // A late fork block at height 1 does not improve the head and is
        // outside the relay window: no pushes.
        let stale = BlockBuilder::new(genesis(), 1, PoolId(5)).salt(99).build();
        let si = intern(&mut reg, &stale);
        let (sends, action) = arrive(&mut n, Some(NodeId(2)), &stale, si, &c, &mut rng());
        assert!(sends.is_empty());
        // It is still imported (valid block), just not relayed.
        assert!(matches!(action, ImportAction::Schedule(_)));
    }

    #[test]
    fn messages_from_non_peers_are_tolerated() {
        // Provenance marking from an unconnected node (e.g. a link torn
        // down mid-flight in future scenarios) must be a silent no-op,
        // exactly like the old NodeId-keyed map's `get_mut` miss.
        let mut reg = BlockRegistry::new();
        let mut n = node(99, 3);
        let b = block1();
        let idx = intern(&mut reg, &b);
        let (sends, action) = arrive(&mut n, Some(NodeId(1000)), &b, idx, &cfg(), &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        // Relays still go to real peers (the stranger is not among them).
        assert!(sends.iter().all(|s| s.to != NodeId(1000)));
        assert!(!sends.is_empty());
    }

    #[test]
    fn reset_behaves_like_a_fresh_node() {
        let c = cfg();
        let mut rng_a = rng();
        // Drive a node through a full little lifecycle...
        let mut reg = BlockRegistry::new();
        let mut used = node(99, 8);
        used.enable_mempool();
        let b = block1();
        let idx = intern(&mut reg, &b);
        arrive(&mut used, Some(NodeId(1)), &b, idx, &c, &mut rng_a);
        import(&mut used, &b, idx, &[], &c);
        let t1 = tx(1, 0);
        transactions(
            &mut used,
            Some(NodeId(2)),
            &[(TxIdx(0), &t1)],
            &c,
            &mut rng_a,
        );

        // ...then reset it and wire the same topology as a fresh twin.
        used.reset(
            NodeId(99),
            Region::WesternEurope,
            BandwidthClass::Datacenter,
            genesis(),
            &c,
            ConsensusKind::Heaviest.build(),
        );
        for p in 0..8 {
            used.try_add_link(NodeId(p), &c)
                .expect("well-formed test link");
        }
        used.enable_mempool();
        let mut fresh = node(99, 8);
        fresh.enable_mempool();

        assert_eq!(used.chain().head(), fresh.chain().head());
        assert_eq!(used.degree(), fresh.degree());
        assert_eq!(used.mempool().expect("enabled").len(), 0);
        // Identical RNG stream + identical state must produce identical
        // sends for a fresh campaign's first block and transaction.
        let mut reg2 = BlockRegistry::new();
        let b2 = BlockBuilder::new(genesis(), 1, PoolId(2)).salt(7).build();
        let i2 = intern(&mut reg2, &b2);
        let mut r1 = Xoshiro256::seed_from_u64(5);
        let mut r2 = Xoshiro256::seed_from_u64(5);
        let (s_used, a_used) = arrive(&mut used, Some(NodeId(1)), &b2, i2, &c, &mut r1);
        let (s_fresh, a_fresh) = arrive(&mut fresh, Some(NodeId(1)), &b2, i2, &c, &mut r2);
        assert_eq!(s_used, s_fresh);
        assert_eq!(a_used, a_fresh);
        let t9 = tx(9, 0);
        assert_eq!(
            transactions(&mut used, Some(NodeId(3)), &[(TxIdx(5), &t9)], &c, &mut r1),
            transactions(&mut fresh, Some(NodeId(3)), &[(TxIdx(5), &t9)], &c, &mut r2),
        );
    }

    #[test]
    fn try_add_link_reports_structured_errors() {
        let c = cfg();
        let mut n = node(99, 3);
        assert_eq!(n.try_add_link(NodeId(99), &c), Err(LinkError::SelfLink));
        assert_eq!(n.try_add_link(NodeId(1), &c), Err(LinkError::Duplicate));
        assert_eq!(n.try_add_link(NodeId(50), &c), Ok(()));
        assert!(n.is_peer(NodeId(50)));
        assert_eq!(n.degree(), 4);
    }

    #[test]
    fn disconnect_removes_only_the_severed_link() {
        let c = cfg();
        let mut n = node(99, 5); // peers 0..=4
        assert!(n.is_peer(NodeId(2)));
        assert!(n.disconnect(NodeId(2)));
        assert!(!n.is_peer(NodeId(2)));
        assert!(!n.disconnect(NodeId(2)), "second disconnect is a no-op");
        assert_eq!(n.degree(), 4);
        for p in [0u32, 1, 3, 4] {
            assert!(n.is_peer(NodeId(p)), "peer {p} untouched");
        }
        // Re-dial reuses the vacated slab slot cleanly.
        assert_eq!(n.try_add_link(NodeId(2), &c), Ok(()));
        assert_eq!(n.degree(), 5);
    }

    #[test]
    fn disconnect_drops_per_link_gossip_state_without_disturbing_others() {
        let c = cfg();
        let mut rng_a = rng();
        let mut reg = BlockRegistry::new();

        // Drive a node with torn-and-redialed link 1 and a fresh twin
        // that never had link 1's history; after the re-dial both must
        // behave identically (per-link state fully forgotten).
        let mut churned = node(99, 8);
        let b = block1();
        let idx = intern(&mut reg, &b);
        arrive(&mut churned, Some(NodeId(1)), &b, idx, &c, &mut rng_a);
        import(&mut churned, &b, idx, &[], &c);
        let t1 = tx(1, 0);
        transactions(
            &mut churned,
            Some(NodeId(1)),
            &[(TxIdx(0), &t1)],
            &c,
            &mut rng_a,
        );
        assert!(churned.disconnect(NodeId(1)));
        assert_eq!(churned.try_add_link(NodeId(1), &c), Ok(()));

        // The re-dialed link no longer remembers what peer 1 knew: an
        // announce of the same block goes back out to peer 1 too.
        let mut sends = Vec::new();
        churned.on_announce(NodeId(3), &[(b.hash(), idx)], &mut sends);
        // (peer 3 announced; nothing for peer 1 here — the real probe is
        // the tx relay below, which consults the known-txs family.)
        let t2 = tx(2, 0);
        let relays = transactions(&mut churned, None, &[(TxIdx(1), &t2)], &c, &mut rng_a);
        assert!(
            relays.iter().any(|s| s.to == NodeId(1)),
            "re-dialed link must have forgotten nothing-known state"
        );
    }
}
