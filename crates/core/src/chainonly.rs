//! The chain-only fast path: block-producer sequences without a network.
//!
//! Figure 7 and the §III-D security analysis are statements about the
//! *canonical miner sequence* — who mined block N — over months (201,086
//! blocks) or the whole chain's life (7.7M blocks). At those scales the
//! network layer is irrelevant to the statistic and unaffordable to
//! simulate, so this runner draws the winner of each height directly from
//! the hash-power distribution. PoW makes this exact: each block is an
//! independent race won with probability equal to the share.

use ethmeter_analysis::sequences::{analyze_sequence, SequenceReport};
use ethmeter_mining::PoolDirectory;
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{PoolId, SimDuration};

/// Configuration of a chain-only run.
#[derive(Debug, Clone)]
pub struct ChainOnlyConfig {
    /// Blocks to draw (the paper's month = 201,086; whole chain = 7.7M).
    pub blocks: u64,
    /// The pool directory supplying shares and names.
    pub pools: PoolDirectory,
    /// Mean inter-block time (for censorship-window conversion).
    pub interblock: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl ChainOnlyConfig {
    /// The paper's one-month window: 201,086 main blocks at 13.3 s.
    pub fn paper_month(seed: u64) -> Self {
        ChainOnlyConfig {
            blocks: 201_086,
            pools: PoolDirectory::paper_dsn2020(),
            interblock: SimDuration::from_secs_f64(13.3),
            seed,
        }
    }

    /// The whole-chain horizon the paper scans for 10+-block sequences
    /// (~7.7M blocks up to May 2019).
    pub fn paper_whole_chain(seed: u64) -> Self {
        ChainOnlyConfig {
            blocks: 7_700_000,
            pools: PoolDirectory::paper_dsn2020(),
            interblock: SimDuration::from_secs_f64(13.3),
            seed,
        }
    }
}

/// The raw result of a chain-only run.
#[derive(Debug, Clone)]
pub struct ChainOnlyResult {
    /// The block-producer sequence.
    pub sequence: Vec<PoolId>,
    /// Pool names by id.
    pub names: Vec<String>,
    /// Pool shares by id.
    pub shares: Vec<f64>,
    /// Inter-block time.
    pub interblock: SimDuration,
}

impl ChainOnlyResult {
    /// Runs the sequence analysis (Figure 7 / §III-D) over this result.
    pub fn report(&self) -> SequenceReport {
        analyze_sequence(&self.sequence, &self.names, &self.shares, self.interblock)
    }
}

/// Draws the miner sequence.
pub fn run_chain_only(cfg: &ChainOnlyConfig) -> ChainOnlyResult {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut sequence = Vec::with_capacity(cfg.blocks as usize);
    for _ in 0..cfg.blocks {
        sequence.push(cfg.pools.sample_winner(&mut rng));
    }
    ChainOnlyResult {
        sequence,
        names: cfg.pools.iter().map(|p| p.name.clone()).collect(),
        shares: cfg.pools.iter().map(|p| p.share).collect(),
        interblock: cfg.interblock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_scale_matches_paper_shapes() {
        let result = run_chain_only(&ChainOnlyConfig::paper_month(2020));
        assert_eq!(result.sequence.len(), 201_086);
        let report = result.report();
        // Ethermine (25.32%) should mine ~51k blocks.
        let ethermine = report
            .pools
            .iter()
            .find(|p| p.name == "Ethermine")
            .expect("present");
        let frac = ethermine.blocks as f64 / 201_086.0;
        assert!((frac - 0.2532).abs() < 0.01, "share {frac}");
        // The paper observed runs of 8 (Ethermine) and 9 (Sparkpool); at
        // these shares the longest run over a month is typically 7..=11.
        assert!(
            (6..=12).contains(&ethermine.longest),
            "longest {}",
            ethermine.longest
        );
        // Censorship window of an 8-run ~ 106s: minutes, not seconds.
        let w = report.censorship_window(8).as_secs_f64();
        assert!((100.0..115.0).contains(&w));
    }

    #[test]
    fn deterministic_sequences() {
        let a = run_chain_only(&ChainOnlyConfig::paper_month(1));
        let b = run_chain_only(&ChainOnlyConfig::paper_month(1));
        assert_eq!(a.sequence[..100], b.sequence[..100]);
        let c = run_chain_only(&ChainOnlyConfig::paper_month(2));
        assert_ne!(a.sequence[..100], c.sequence[..100]);
    }

    #[test]
    fn small_uniform_run() {
        let cfg = ChainOnlyConfig {
            blocks: 10_000,
            pools: PoolDirectory::uniform(4, 1),
            interblock: SimDuration::from_secs_f64(13.3),
            seed: 9,
        };
        let result = run_chain_only(&cfg);
        let report = result.report();
        assert_eq!(report.total_blocks, 10_000);
        for p in &report.pools {
            let frac = p.blocks as f64 / 10_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{frac}");
        }
    }
}
