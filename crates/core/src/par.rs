//! Deterministic sharded parallel execution of a single campaign.
//!
//! [`run_campaign_sharded`] partitions one campaign's *execution* across
//! worker threads while keeping its *output* bit-identical to the
//! sequential engine at any shard count — the campaign fingerprint is
//! invariant in `scenario.shards`. Three mechanisms make that hold:
//!
//! - **Replicated construction, partitioned execution.** Every shard
//!   builds the identical full [`SimWorld`] from the scenario (same
//!   topology, placement, and workload; construction randomness comes
//!   from dedicated forks of the root seed), then processes only the
//!   events addressed to entities it owns under the region-atomic
//!   [`ShardMap`]. Per-entity RNG lanes make the partition sound: an
//!   entity's lane is consumed exclusively by its own events, which all
//!   run on its owner shard in the same order as sequentially.
//!
//! - **Conservative lookahead windows.** Any event one shard can cause
//!   on another is delayed by at least the fixed processing overhead
//!   plus the geographic latency floor, so simulated time advances in
//!   bounded windows `[s, s + L)`: each shard runs its window to
//!   completion, then exchanges cross-shard events and freshly minted
//!   block replicas at a barrier. Nothing can arrive inside a window
//!   that was not known at its start, so no shard ever rolls back.
//!   Windows start at the global minimum next-event time, so idle
//!   stretches cost one barrier round, not `⌈idle/L⌉`.
//!
//! - **Deterministic merge.** Shard outputs are combined on canonical
//!   keys only — blocks in `(mined_at, miner)` order (a stable sort, so
//!   one pool's same-instant blocks keep creation order), observer logs
//!   by vantage slot, counters by summation — never in thread-arrival
//!   order.
//!
//! A worker panic cannot hang the run: the panicking worker marks the
//! run poisoned and keeps joining barriers as a no-op, every sibling
//! exits at the next window boundary, and the panic is re-raised on the
//! caller with its shard context attached.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ethmeter_chain::block::Block;
use ethmeter_measure::{CampaignData, GroundTruth, ObserverLog};
use ethmeter_net::{RemoteEvent, ShardMap};
use ethmeter_sim::Engine;
use ethmeter_types::{SimDuration, SimTime};

use crate::runner::{run_campaign, CampaignOutcome};
use crate::scenario::Scenario;
use crate::world::{RunStats, SimWorld};

/// The conservative lookahead: the minimum simulated delay between an
/// event on one shard and the earliest event it can cause on another.
///
/// Every cross-shard effect is a message delivery (fixed processing
/// overhead + link latency, floored by the latency model) or a gateway
/// block injection (fixed gateway delay, larger still), so `proc_overhead
/// + latency floor` bounds both from below.
///
/// A dynamics script can *shrink* link latency at runtime (a sub-1.0
/// [`ethmeter_dynamics::DynamicsEvent::LatencyScale`] window), so the
/// floor is pre-tightened by the script's minimum scale — computed once
/// here, before any worker starts, which keeps the window size a run
/// constant. Scripts without latency events leave the bound untouched
/// (`min_latency_scale()` is 1.0 and `mul_f64(1.0)` is exact on the
/// nanosecond floor).
fn lookahead(scenario: &Scenario) -> SimDuration {
    let scale = scenario.dynamics.min_latency_scale();
    scenario.net.proc_overhead + scenario.latency.min_delay().mul_f64(scale)
}

/// A sense-reversing barrier with a spin fast path and a parking slow
/// path.
///
/// Windows are ~1.3 ms of simulated time, so a large campaign crosses
/// hundreds of thousands of barriers — arrival latency is on the hot
/// path. When every worker has its own core, siblings arrive within
/// microseconds and the spin fast path never leaves userspace. When the
/// machine is oversubscribed (more shards than cores, the debug-test
/// norm), spinning would burn the very quantum the straggler needs, so
/// waiters escalate: spin briefly, yield a few times, then park on a
/// condvar until the releaser wakes them.
///
/// All atomics are `SeqCst`: the barrier is also the happens-before
/// edge for the mailboxes and `next_time` slots, and the generation /
/// sleeper-count handshake between releaser and parker needs a single
/// total order to be obviously race-free.
struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    wake: Condvar,
}

impl SpinBarrier {
    const SPINS: u32 = 128;
    const YIELDS: u32 = 32;

    fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Blocks until all `parties` threads have called `wait`.
    ///
    /// Establishes happens-before from everything written before any
    /// party's `wait` to everything read after every party's `wait`.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            self.count.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                // Taking the lock orders this wakeup after any parker
                // that observed the old generation inside the lock.
                drop(lock_ignoring_poison(&self.lock));
                self.wake.notify_all();
            }
            return;
        }
        let mut tries = 0u32;
        while self.generation.load(Ordering::SeqCst) == generation {
            tries = tries.saturating_add(1);
            if tries < Self::SPINS {
                std::hint::spin_loop();
            } else if tries < Self::SPINS + Self::YIELDS {
                std::thread::yield_now();
            } else {
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                let mut guard = lock_ignoring_poison(&self.lock);
                while self.generation.load(Ordering::SeqCst) == generation {
                    guard = self.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// One shard's barrier mailbox: the cross-shard events and freshly
/// minted block replicas it posted for the current window.
type Mailbox = Mutex<(Vec<RemoteEvent>, Vec<Block>)>;

/// State shared by all shard workers of one run.
struct Shared {
    map: Arc<ShardMap>,
    /// Written only by the owning shard (post in phase A, clear in phase
    /// C), read by every other shard in phase B.
    mailboxes: Vec<Mailbox>,
    /// Each shard's next pending event time in nanos (`u64::MAX` when
    /// its queue is empty), refreshed every window in phase B.
    next_time: Vec<AtomicU64>,
    /// Set by a panicking worker; every worker exits at the next window
    /// boundary once raised.
    poisoned: AtomicBool,
    /// `(shard, panic message)` per caught worker panic.
    panics: Mutex<Vec<(usize, String)>>,
    barrier: SpinBarrier,
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker that panicked while holding a mailbox already marked the
    // run poisoned; the data is discarded, so the lock stays usable.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a caught panic payload for re-raising with job context
/// (shared with the grid executor).
pub(crate) fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

/// Runs `f` unless this worker is already dead; a panic inside `f`
/// poisons the run, records the message with its shard id, and turns
/// the worker into a barrier-keeping no-op.
fn guard<R>(me: usize, shared: &Shared, dead: &mut bool, f: impl FnOnce() -> R) -> Option<R> {
    if *dead {
        return None;
    }
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Some(r),
        Err(payload) => {
            *dead = true;
            shared.poisoned.store(true, Ordering::Release);
            lock_ignoring_poison(&shared.panics).push((me, panic_text(payload)));
            None
        }
    }
}

/// Runs one campaign across `scenario.shards` worker threads and merges
/// the shard outputs into a [`CampaignOutcome`] bit-identical to
/// [`run_campaign`] (fingerprint, stats, and event count all match the
/// sequential engine).
///
/// # Panics
///
/// Re-raises any worker panic with `[shard N]` context after all workers
/// have exited cleanly (no hung barriers, no poisoned joins).
pub fn run_campaign_sharded(scenario: &Scenario) -> CampaignOutcome {
    let shards = scenario.shards.max(1);
    if shards == 1 {
        return run_campaign(scenario);
    }
    // One replica is built up front to derive the ownership map; shard 0
    // adopts it instead of rebuilding.
    let seed_world = SimWorld::new(scenario);
    let map = Arc::new(ShardMap::by_region(&seed_world.node_regions(), shards));
    let shared = Shared {
        map: Arc::clone(&map),
        mailboxes: (0..shards)
            .map(|_| Mutex::new((Vec::new(), Vec::new())))
            .collect(),
        next_time: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        poisoned: AtomicBool::new(false),
        panics: Mutex::new(Vec::new()),
        barrier: SpinBarrier::new(shards),
    };
    let deadline = SimTime::ZERO + scenario.duration;
    let la = lookahead(scenario);

    let mut results: Vec<Option<(SimWorld, u64)>> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let mut seed_world = Some(seed_world);
        let handles: Vec<_> = (0..shards)
            .map(|me| {
                let world = if me == 0 { seed_world.take() } else { None };
                let shared = &shared;
                scope.spawn(move || worker(me, scenario, world, shared, deadline, la))
            })
            .collect();
        for handle in handles {
            // Workers catch their own panics; a join error would mean the
            // guard itself failed, which is unreachable in practice.
            results.push(handle.join().unwrap_or(None));
        }
    });

    let mut panics = lock_ignoring_poison(&shared.panics);
    if !panics.is_empty() {
        panics.sort_by_key(|a| a.0);
        let detail: Vec<String> = panics
            .iter()
            .map(|(shard, msg)| format!("[shard {shard}/{shards}] {msg}"))
            .collect();
        panic!("sharded campaign worker panicked: {}", detail.join("; "));
    }
    drop(panics);

    let worlds: Vec<(SimWorld, u64)> = results
        .into_iter()
        .map(|r| r.expect("no panics recorded, so every worker completed"))
        .collect();
    merge(scenario, &map, worlds)
}

/// One shard worker: build the replica, then alternate run/exchange
/// phases until every shard's queue is past the deadline.
///
/// Window protocol, per iteration (two barriers):
/// - **Phase A** — run the engine through `[start, end)`, then post this
///   window's outgoing [`RemoteEvent`]s and newly minted blocks to the
///   own mailbox.
/// - **Phase B** — after barrier 1: ingest every *other* shard's block
///   replicas (canonically sorted, so registry slots are deterministic),
///   then schedule their remote events in `sort_key` order, then publish
///   the next pending event time.
/// - **Phase C** — after barrier 2: clear the own mailbox, exit if the
///   run is poisoned or globally past the deadline, else advance the
///   window to the global minimum next-event time.
///
/// A dead (panicked) worker keeps arriving at both barriers and
/// publishes `u64::MAX` so siblings neither hang nor wait on it.
fn worker(
    me: usize,
    scenario: &Scenario,
    prebuilt: Option<SimWorld>,
    shared: &Shared,
    deadline: SimTime,
    la: SimDuration,
) -> Option<(SimWorld, u64)> {
    let shards = shared.map.shards();
    let mut dead = false;
    let mut engine = guard(me, shared, &mut dead, || {
        let mut world = prebuilt.unwrap_or_else(|| SimWorld::new(scenario));
        world.attach_shard(Arc::clone(&shared.map), me);
        let initial = world.initial_events();
        let mut engine = Engine::new(world);
        for (t, e) in initial {
            engine.schedule(t, e);
        }
        engine
    });

    let mut start = SimTime::ZERO;
    loop {
        // The final window ends at deadline + 1 ns so events at exactly
        // the deadline are processed, matching the sequential engine's
        // inclusive `run_until(deadline)`.
        let end = (start + la).min(deadline + SimDuration::from_nanos(1));
        guard(me, shared, &mut dead, || {
            let engine = engine.as_mut().expect("guarded build succeeded");
            engine.run_until(end - SimDuration::from_nanos(1));
            let mut mailbox = lock_ignoring_poison(&shared.mailboxes[me]);
            let (remotes, blocks) = &mut *mailbox;
            engine.world_mut().drain_shard_output(remotes, blocks);
        });
        shared.barrier.wait();

        guard(me, shared, &mut dead, || {
            let engine = engine.as_mut().expect("guarded build succeeded");
            let mut blocks = Vec::new();
            let mut remotes = Vec::new();
            for other in (0..shards).filter(|&s| s != me) {
                let mailbox = lock_ignoring_poison(&shared.mailboxes[other]);
                blocks.extend_from_slice(&mailbox.1);
                // Only the destination's owner may schedule a remote
                // event; everyone else replicates just the blocks.
                remotes.extend(
                    mailbox
                        .0
                        .iter()
                        .filter(|r| shared.map.owns(me, r.kind.dest()))
                        .cloned(),
                );
            }
            // Replicas first: remote injections resolve by hash against
            // the registry, so the blocks must already be interned.
            engine.world_mut().ingest_replica_blocks(&mut blocks);
            remotes.sort_by_key(RemoteEvent::sort_key);
            for remote in remotes {
                let event = engine.world().resolve_remote(remote.kind);
                engine.schedule(remote.at, event);
            }
        });
        let next = match (&engine, dead) {
            (Some(e), false) => e.next_event_time().map_or(u64::MAX, |t| t.as_nanos()),
            _ => u64::MAX,
        };
        shared.next_time[me].store(next, Ordering::Release);
        shared.barrier.wait();

        {
            let mut mailbox = lock_ignoring_poison(&shared.mailboxes[me]);
            mailbox.0.clear();
            mailbox.1.clear();
        }
        if shared.poisoned.load(Ordering::Acquire) {
            return None;
        }
        let gmin = shared
            .next_time
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if gmin == u64::MAX || gmin > deadline.as_nanos() {
            break;
        }
        start = SimTime::from_nanos(gmin);
    }

    engine.map(|e| {
        let processed = e.processed();
        (e.into_world(), processed)
    })
}

/// Combines the shard worlds into the sequential-identical outcome.
fn merge(scenario: &Scenario, map: &ShardMap, mut worlds: Vec<(SimWorld, u64)>) -> CampaignOutcome {
    // Counters: each is incremented on exactly one shard (messages on
    // the destination's, bytes on the sender's, mining and import
    // counters on the owner's), so summation reproduces the sequential
    // totals. The only replicated events are the workload's
    // `NextSubmission` ticks and the dynamics script's
    // `Dynamics`/`FloodTick` events, subtracted from the processed sum.
    let mut stats = RunStats::default();
    let mut processed = 0u64;
    let submissions = worlds[0].0.submission_events();
    let dynamics = worlds[0].0.dynamics_events();
    for (world, events) in &worlds {
        stats.merge(&world.stats);
        processed += events;
        debug_assert_eq!(
            world.submission_events(),
            submissions,
            "workload ticks are replicated and must agree across shards"
        );
        debug_assert_eq!(
            world.dynamics_events(),
            dynamics,
            "dynamics events are replicated and must agree across shards"
        );
    }
    let events = processed - (worlds.len() as u64 - 1) * (submissions + dynamics);

    // Ground-truth blocks: concatenate each shard's locally minted
    // blocks (already in creation order) and stable-sort on the
    // canonical key. One pool's blocks live on one shard, so the stable
    // sort preserves per-pool creation order — including same-instant
    // duplicate-mint bursts — and reproduces the sequential registry
    // order everywhere it affects first-seen fork choice.
    let mut blocks: Vec<Block> = Vec::new();
    for (world, _) in &mut worlds {
        blocks.append(&mut world.take_local_blocks());
    }
    blocks.sort_by_key(|b| (b.mined_at(), b.miner().raw()));
    let tree = SimWorld::build_truth_tree(scenario.consensus.build(), blocks);

    // Observer logs: each observer records only on its home shard; all
    // other shards hold an untouched empty log in that vantage slot.
    let observer_nodes = worlds[0].0.observer_nodes();
    let mut shard_logs: Vec<Vec<ObserverLog>> =
        worlds.iter_mut().map(|(w, _)| w.take_logs()).collect();
    let observers = scenario
        .vantages
        .iter()
        .cloned()
        .zip(
            observer_nodes
                .iter()
                .enumerate()
                .map(|(slot, &node)| std::mem::take(&mut shard_logs[map.owner(node)][slot])),
        )
        .collect();

    // The transaction table and pool directory are replicated; shard 0
    // donates its copies.
    let txs = worlds[0].0.take_tx_map();
    let pool_names = worlds[0].0.pool_names();
    let pool_shares = worlds[0].0.pool_shares();

    CampaignOutcome {
        campaign: CampaignData {
            observers,
            truth: GroundTruth {
                tree,
                txs,
                pool_names,
                pool_shares,
                interblock: scenario.interblock,
                duration: scenario.duration,
            },
        },
        stats,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    fn scenario(seed: u64, mins: u64, shards: usize) -> Scenario {
        Scenario::builder()
            .preset(Preset::Tiny)
            .seed(seed)
            .duration(SimDuration::from_mins(mins))
            .shards(shards)
            .build()
    }

    #[test]
    fn sharded_matches_sequential_exactly() {
        let sequential = run_campaign(&scenario(9, 2, 1));
        for shards in [2, 3, 4] {
            let sharded = run_campaign_sharded(&scenario(9, 2, shards));
            assert_eq!(sharded.stats, sequential.stats, "{shards} shards");
            assert_eq!(sharded.events, sequential.events, "{shards} shards");
            assert_eq!(
                sharded.campaign.fingerprint(),
                sequential.campaign.fingerprint(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn run_campaign_dispatches_on_scenario_shards() {
        let sequential = run_campaign(&scenario(17, 1, 1));
        let dispatched = run_campaign(&scenario(17, 1, 4));
        assert_eq!(
            dispatched.campaign.fingerprint(),
            sequential.campaign.fingerprint()
        );
        assert_eq!(dispatched.events, sequential.events);
    }

    #[test]
    fn more_shards_than_regions_still_matches() {
        // Tiny has few populated regions; 8 shards guarantees empties.
        let sequential = run_campaign(&scenario(23, 1, 1));
        let sharded = run_campaign_sharded(&scenario(23, 1, 8));
        assert_eq!(
            sharded.campaign.fingerprint(),
            sequential.campaign.fingerprint()
        );
    }

    #[test]
    fn zero_latency_links_sit_on_the_lookahead_horizon() {
        // An all-zero base matrix makes every link sample exactly the
        // 1 ms floor, so every cross-shard delivery lands exactly on a
        // window boundary (`proc_overhead + floor` = the lookahead) —
        // the off-by-one-nanosecond edge of the window protocol.
        //
        // Bit-identity is deliberately NOT asserted here: all-floor
        // links *guarantee* same-nanosecond delivery ties between
        // different senders, and the sequential engine orders those by
        // queue insertion — an order no shard can reconstruct (the
        // measure-zero caveat in DETERMINISM.md, made certain). What
        // must survive arbitrary tie ordering: the protocol neither
        // hangs nor drops work — the physical totals (mining, workload,
        // imports) and the resulting chain are identical.
        let build = |shards: usize| {
            let mut s = scenario(31, 1, shards);
            s.latency = ethmeter_geo::LatencyModel::with_jitter(0.0).with_base_matrix(
                [[0.0; ethmeter_types::Region::COUNT]; ethmeter_types::Region::COUNT],
            );
            s
        };
        let sequential = run_campaign(&build(1));
        for shards in [2, 4] {
            let sharded = run_campaign_sharded(&build(shards));
            let (a, b) = (&sharded.stats, &sequential.stats);
            assert_eq!(a.blocks_produced, b.blocks_produced, "{shards} shards");
            assert_eq!(a.txs_submitted, b.txs_submitted, "{shards} shards");
            assert_eq!(a.imports, b.imports, "{shards} shards");
            assert_eq!(
                a.duplicates_produced, b.duplicates_produced,
                "{shards} shards"
            );
            assert_eq!(
                sharded.campaign.truth.tree.head(),
                sequential.campaign.truth.tree.head(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_with_shard_context_and_no_hang() {
        // No public scenario knob can make a healthy world panic
        // mid-run, so the poisoning protocol is driven through `guard`
        // directly: a panic must mark the run poisoned, record its
        // shard, and turn the worker into a barrier-keeping no-op.
        let shared = Shared {
            map: Arc::new(ShardMap::single(1)),
            mailboxes: vec![Mutex::new((Vec::new(), Vec::new()))],
            next_time: vec![AtomicU64::new(u64::MAX)],
            poisoned: AtomicBool::new(false),
            panics: Mutex::new(Vec::new()),
            barrier: SpinBarrier::new(1),
        };
        let mut dead = false;
        let out: Option<()> = guard(0, &shared, &mut dead, || panic!("boom at seed 7"));
        assert!(out.is_none() && dead);
        assert!(shared.poisoned.load(Ordering::SeqCst));
        // A dead worker's guard becomes a no-op instead of re-running.
        let again = guard(0, &shared, &mut dead, || unreachable!("dead workers skip"));
        assert!(again.is_none());
        let panics = lock_ignoring_poison(&shared.panics);
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].0, 0);
        assert!(panics[0].1.contains("boom at seed 7"));
    }

    #[test]
    fn spin_barrier_synchronizes_and_reuses() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 1..=32 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        assert_eq!(counter.load(Ordering::Acquire), 4 * round);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 128);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scenario::Preset;
    use proptest::prelude::*;

    proptest! {
        /// The tentpole invariant: the campaign fingerprint (and the
        /// stats and event counters) must be independent of the shard
        /// count across random seeds, shard counts, and durations. Each
        /// case runs the sequential reference and one sharded execution
        /// of the identical scenario.
        #[test]
        fn fingerprint_is_invariant_in_shard_count(
            seed in 0u64..1_000_000,
            shards_sel in 0u8..3,
            secs in 20u64..61,
        ) {
            let shards = [2usize, 4, 8][shards_sel as usize];
            let build = |shards: usize| {
                Scenario::builder()
                    .preset(Preset::Tiny)
                    .seed(seed)
                    .duration(SimDuration::from_secs(secs))
                    .shards(shards)
                    .build()
            };
            let sequential = run_campaign(&build(1));
            let sharded = run_campaign_sharded(&build(shards));
            prop_assert_eq!(sequential.stats, sharded.stats);
            prop_assert_eq!(sequential.events, sharded.events);
            prop_assert_eq!(
                sequential.campaign.fingerprint(),
                sharded.campaign.fingerprint()
            );
        }
    }
}
