//! Sweep-runner contracts: parallel fan-out must be a pure wall-clock
//! optimization — per-seed results bit-identical to sequential
//! `run_campaign`, independent of worker count — while distinct seeds
//! produce genuinely independent campaigns.

use ethmeter::measure::csv;
use ethmeter::prelude::*;

fn base() -> Scenario {
    Scenario::builder()
        .preset(Preset::Tiny)
        .duration(SimDuration::from_mins(3))
        .build()
}

const SEEDS: [u64; 8] = [201, 202, 203, 204, 205, 206, 207, 208];

#[test]
fn parallel_sweep_is_bit_identical_to_sequential_runs() {
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(sweep.runs.len(), SEEDS.len());
    assert!(sweep.threads_used >= 2, "sweep must actually run parallel");
    for (run, &seed) in sweep.runs.iter().zip(SEEDS.iter()) {
        assert_eq!(run.seed, seed);
        let mut scenario = base();
        scenario.seed = seed;
        let sequential = run_campaign(&scenario);
        assert_eq!(run.outcome.stats, sequential.stats, "seed {seed}");
        assert_eq!(run.outcome.events, sequential.events, "seed {seed}");
        let (pt, st) = (&run.outcome.campaign.truth, &sequential.campaign.truth);
        assert_eq!(pt.tree.head(), st.tree.head(), "seed {seed}");
        assert_eq!(pt.tree.len(), st.tree.len(), "seed {seed}");
        assert_eq!(pt.txs.len(), st.txs.len(), "seed {seed}");
        // Observer logs identical via their canonical CSV serialization.
        for (pa, pb) in run
            .outcome
            .campaign
            .observers
            .iter()
            .zip(sequential.campaign.observers.iter())
        {
            assert_eq!(pa.0.name, pb.0.name);
            assert_eq!(csv::blocks_to_csv(&pa.1), csv::blocks_to_csv(&pb.1));
            assert_eq!(csv::txs_to_csv(&pa.1), csv::txs_to_csv(&pb.1));
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let one = Sweep::new(base()).seeds(SEEDS).threads(1).run();
    let many = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(one.heads(), many.heads());
    assert_eq!(one.totals, many.totals);
    assert_eq!(one.events, many.events);
}

#[test]
fn parallel_sweep_fingerprints_match_sequential() {
    // The strongest form of the cross-thread determinism contract: the
    // whole-dataset digest of every campaign in an 8-seed parallel sweep
    // equals the digest of the same scenario run sequentially. Any
    // cross-worker state leak (shared RNG, allocation-order dependence,
    // map-iteration nondeterminism) shows up here as a one-integer diff.
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert!(sweep.threads_used >= 2, "sweep must actually run parallel");
    for (run, &seed) in sweep.runs.iter().zip(SEEDS.iter()) {
        let mut scenario = base();
        scenario.seed = seed;
        let sequential = run_campaign(&scenario);
        assert_eq!(
            run.outcome.campaign.fingerprint(),
            sequential.campaign.fingerprint(),
            "seed {seed}: parallel and sequential campaigns must be bit-identical"
        );
    }
}

#[test]
fn reused_worker_sweeps_equal_fresh_and_sequential() {
    // Sweep workers reuse one world+engine across their whole job stream
    // (the default); that reuse must be a pure wall-clock optimization.
    // Pin all three execution styles to the same campaign fingerprints:
    // reused workers, fresh-construction workers, and sequential runs.
    let reused = Sweep::new(base()).seeds(SEEDS).threads(2).run();
    let fresh = Sweep::new(base())
        .seeds(SEEDS)
        .threads(2)
        .reuse_workers(false)
        .run();
    assert_eq!(reused.totals, fresh.totals);
    assert_eq!(reused.events, fresh.events);
    for ((r, f), &seed) in reused.runs.iter().zip(fresh.runs.iter()).zip(SEEDS.iter()) {
        let fp_reused = r.outcome.campaign.fingerprint();
        assert_eq!(
            fp_reused,
            f.outcome.campaign.fingerprint(),
            "seed {seed}: reused-worker sweep diverged from fresh-construction sweep"
        );
        let mut scenario = base();
        scenario.seed = seed;
        assert_eq!(
            fp_reused,
            run_campaign(&scenario).campaign.fingerprint(),
            "seed {seed}: reused-worker sweep diverged from a sequential run"
        );
    }
}

#[test]
fn distinct_seeds_diverge() {
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(
        sweep.distinct_heads(),
        SEEDS.len(),
        "every seed must grow its own chain: {:?}",
        sweep.heads()
    );
}

// ---------------------------------------------------------------------------
// Grid + Metric contracts: streaming collectors must be a pure memory
// optimization — outputs bit-identical across thread counts and to the
// legacy sequential path.

use ethmeter::analysis::propagation::{self, Propagation};
use ethmeter::analysis::Reduce;

const GRID_SEEDS: [u64; 4] = [301, 302, 303, 304];
const INTERBLOCKS: [f64; 2] = [10.0, 20.0];

/// The grid under test: 2 interblock points × 4 seeds, observed through
/// one retained collector plus two streaming ones.
fn run_grid(
    threads: usize,
) -> GridOutcome<(
    Vec<ethmeter::metric::RetainedRun>,
    propagation::PropagationReport,
    GridReport,
)> {
    Grid::new(base())
        .seeds(GRID_SEEDS)
        .axis("interblock_s", INTERBLOCKS, |s, &secs| {
            s.interblock = SimDuration::from_secs_f64(secs);
        })
        .threads(threads)
        .run((
            RetainRuns::new(),
            Analyze::new(Propagation::new()),
            Scalars::new()
                .column("head", |_, o| o.campaign.truth.tree.head_number() as f64)
                .column("messages", |_, o| o.stats.messages as f64),
        ))
}

/// Materializes one grid job's scenario by hand — the legacy sequential
/// path the grid must match.
fn legacy_scenario(interblock_s: f64, seed: u64) -> Scenario {
    let mut s = base();
    s.interblock = SimDuration::from_secs_f64(interblock_s);
    s.seed = seed;
    s
}

#[test]
fn grid_results_bit_identical_across_thread_counts() {
    let one = run_grid(1);
    let many = run_grid(4);
    assert_eq!(one.threads_used, 1);
    assert!(many.threads_used >= 2, "grid must actually run parallel");
    assert_eq!(one.jobs, 8);
    assert_eq!(one.totals, many.totals);
    assert_eq!(one.events, many.events);
    let (runs_1, fig1_1, report_1) = &one.output;
    let (runs_n, fig1_n, report_n) = &many.output;
    // Streaming outputs: full structural equality, floats included (the
    // PartialEq on Summary/Histogram/Aggregate compares exact values).
    assert_eq!(fig1_1, fig1_n);
    assert_eq!(report_1, report_n);
    // Retained outputs: same grid order, same campaign fingerprints.
    assert_eq!(runs_1.len(), runs_n.len());
    for (a, b) in runs_1.iter().zip(runs_n.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.point, b.point);
        assert_eq!(
            a.outcome.campaign.fingerprint(),
            b.outcome.campaign.fingerprint(),
            "seed {} point {}",
            a.seed,
            a.point
        );
    }
}

#[test]
fn grid_matches_the_legacy_sequential_path() {
    let grid = run_grid(4);
    let (runs, fig1, report) = grid.output;
    // Legacy path: a plain run_campaign loop in grid order, feeding the
    // same reductions sequentially.
    let mut seq_fig1 = Propagation::new();
    let mut idx = 0;
    for &interblock_s in &INTERBLOCKS {
        for &seed in &GRID_SEEDS {
            let scenario = legacy_scenario(interblock_s, seed);
            let outcome = run_campaign(&scenario);
            seq_fig1.observe(&outcome.campaign);
            assert_eq!(
                runs[idx].outcome.campaign.fingerprint(),
                outcome.campaign.fingerprint(),
                "grid job {idx} diverged from sequential run_campaign"
            );
            idx += 1;
        }
    }
    assert_eq!(runs.len(), idx);
    assert_eq!(fig1, seq_fig1.finish());
    // The aggregated table reflects the same runs: every cell aggregates
    // one value per seed.
    assert_eq!(report.rows.len(), INTERBLOCKS.len());
    assert!(report
        .rows
        .iter()
        .all(|r| r.cells.iter().all(|c| c.runs == GRID_SEEDS.len())));
    // Faster blocks -> more canonical blocks, visible in the point rows.
    let head = |i: usize| report.rows[i].cells[0].mean;
    assert!(head(0) > head(1), "{} vs {}", head(0), head(1));
}
