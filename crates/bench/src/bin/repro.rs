//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--preset tiny|small|medium|paper|planet] [--seed N]
//!       [--shards N] [--spill-dir DIR] [--budget BYTES] [--json]
//!
//! EXPERIMENT:
//!   all        every experiment (default)
//!   table1     measurement infrastructure
//!   fig1       block propagation delay PDF
//!   table2     redundant block receptions
//!   fig2       first observations per vantage
//!   fig3       first observations per origin pool
//!   fig4       inclusion + confirmation CDFs
//!   fig5       in-order vs out-of-order commit delay
//!   fig6       empty blocks per pool
//!   table3     fork census + one-miner forks
//!   fig7       consecutive-block sequences (campaign + 201k-block month)
//!   rewards    per-pool revenue share vs hash-power share
//!   decentralization  Nakamoto / Gini / HHI over hash power, block
//!              production, first observation, and revenue (--json emits
//!              the machine-readable table)
//!   security   §III-D whole-chain sequence scan (7.7M blocks)
//!   ablation   §V uncle-policy ablation
//!   selfish    selfish-mining profitability thresholds (α × γ grid;
//!              --json emits the machine-readable surface)
//!   dynamics   eclipse-attack reorg-depth tail: a 30%-hash-power victim
//!              pool is eclipsed for a quarter of the campaign and the
//!              P(revert ≥ k) table for k ∈ 1..=12 is printed (--json
//!              emits the ethmeter-reorg/v1 document)
//!   forkchoice the same campaign replayed under every consensus engine
//!              (heaviest, longest, uncle-weighted GHOST) — head, reorg
//!              count, and safe/finalized markers per engine (--json
//!              emits the ethmeter-forkchoice/v1 document)
//!
//! The preset scales the campaign for campaign-backed experiments and the
//! α × γ grid density for `selfish`. `--shards` runs the campaign on the
//! sharded parallel engine; `--spill-dir` + `--budget` bound the
//! measurement heap by spilling observer logs to columnar segments under
//! DIR (bit-identical reports to the in-memory path).
//! ```

use std::process::ExitCode;

use ethmeter_bench::repro_scenario;
use ethmeter_core::experiments::{self, Suite};
use ethmeter_core::{run_campaign, Preset, Scenario};
use ethmeter_measure::CampaignData;

struct Args {
    experiment: String,
    preset: Preset,
    seed: u64,
    shards: usize,
    spill_dir: Option<std::path::PathBuf>,
    budget: Option<usize>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = "all".to_owned();
    let mut preset = Preset::Small;
    let mut seed = 42u64;
    let mut shards = 1usize;
    let mut spill_dir = None;
    let mut budget = None;
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--preset" => {
                let v = argv.next().ok_or("--preset needs a value")?;
                preset = match v.as_str() {
                    "tiny" => Preset::Tiny,
                    "small" => Preset::Small,
                    "medium" => Preset::Medium,
                    "paper" => Preset::PaperScaled,
                    "planet" => Preset::Planet,
                    other => return Err(format!("unknown preset '{other}'")),
                };
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a value")?;
                shards = v.parse().map_err(|_| format!("bad shard count '{v}'"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--spill-dir" => {
                let v = argv.next().ok_or("--spill-dir needs a value")?;
                spill_dir = Some(std::path::PathBuf::from(v));
            }
            "--budget" => {
                let v = argv.next().ok_or("--budget needs a value")?;
                let b: usize = v.parse().map_err(|_| format!("bad budget '{v}'"))?;
                if b == 0 {
                    return Err("--budget must be positive".into());
                }
                budget = Some(b);
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => experiment = other.to_owned(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if budget.is_some() && spill_dir.is_none() {
        return Err("--budget requires --spill-dir".into());
    }
    Ok(Args {
        experiment,
        preset,
        seed,
        shards,
        spill_dir,
        budget,
        json,
    })
}

/// The α × γ grid density per preset: smoke-sized for `tiny`, the full
/// Niu–Feng curve for larger presets.
fn selfish_report(preset: Preset, seed: u64) -> experiments::SelfishThresholdReport {
    let (alphas, gammas, seeds, blocks): (&[f64], &[f64], usize, u64) = match preset {
        Preset::Tiny => (&[0.15, 0.25, 0.35], &[0.0, 1.0], 1, 4_000),
        Preset::Small => (
            &[0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45],
            &[0.0, 0.5, 1.0],
            3,
            40_000,
        ),
        Preset::Medium | Preset::PaperScaled | Preset::Planet => (
            &[0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45],
            &[0.0, 0.25, 0.5, 0.75, 1.0],
            5,
            100_000,
        ),
    };
    experiments::selfish_threshold(alphas, gammas, seed, seeds, blocks)
}

fn run_suite(scenario: &Scenario) -> (CampaignData, Suite) {
    eprintln!(
        "running campaign: {} ordinary nodes, {} simulated, seed {} ...",
        scenario.ordinary_nodes, scenario.duration, scenario.seed
    );
    let outcome = run_campaign(scenario);
    eprintln!(
        "done: {} events, {} messages, {} blocks, {} txs",
        outcome.events,
        outcome.stats.messages,
        outcome.campaign.truth.tree.head_number(),
        outcome.stats.txs_submitted
    );
    let suite = Suite::from_campaign(&outcome.campaign);
    (outcome.campaign, suite)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: repro [EXPERIMENT] [--preset tiny|small|medium|paper|planet] [--seed N] \
                 [--shards N] [--spill-dir DIR] [--budget BYTES] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut scenario = repro_scenario(args.preset, args.seed);
    scenario.shards = args.shards;
    if let Some(dir) = &args.spill_dir {
        scenario.spill_dir = Some(dir.clone());
        if let Some(budget) = args.budget {
            scenario.measure_budget_bytes = budget;
        }
    }
    let needs_campaign = matches!(
        args.experiment.as_str(),
        "all"
            | "table1"
            | "fig1"
            | "table2"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "table3"
            | "fig7"
            | "rewards"
            | "decentralization"
    );
    let campaign_and_suite = needs_campaign.then(|| run_suite(&scenario));

    let print_for = |name: &str, campaign: &CampaignData, suite: &Suite| match name {
        "table1" => println!("{}\n", experiments::table1(campaign)),
        "fig1" => println!("{}\n", suite.fig1),
        "table2" => match &suite.table2 {
            Ok(r) => println!("{r}\n"),
            Err(e) => println!("Table II unavailable: {e}\n"),
        },
        "fig2" => println!("{}\n", suite.fig2),
        "fig3" => println!("{}\n", suite.fig3),
        "fig4" => println!("{}\n", suite.fig4),
        "fig5" => println!("{}\n", suite.fig5),
        "fig6" => println!("{}\n", suite.fig6),
        "table3" => println!("{}\n", suite.table3),
        "rewards" => println!("{}\n", ethmeter_core::analysis::rewards::analyze(campaign)),
        "decentralization" => {
            if args.json {
                println!("{}", suite.decentralization.to_json());
            } else {
                println!("{}\n", suite.decentralization);
            }
        }
        "fig7" => {
            println!("campaign-scale sequences:\n{}\n", suite.fig7);
            println!(
                "paper-scale month (201,086 blocks):\n{}\n",
                experiments::fig7_month(args.seed)
            );
        }
        _ => {}
    };

    match args.experiment.as_str() {
        "all" => {
            let (campaign, suite) = campaign_and_suite.as_ref().expect("campaign ran");
            for name in [
                "table1",
                "fig1",
                "table2",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "table3",
                "fig7",
                "rewards",
                "decentralization",
            ] {
                print_for(name, campaign, suite);
            }
            println!("{}\n", experiments::security_whole_chain(args.seed));
            println!(
                "{}\n",
                experiments::ablation_uncle_policy(&ethmeter_bench::bench_scenario(args.seed))
            );
            println!("{}", selfish_report(args.preset, args.seed));
        }
        "selfish" => {
            let report = selfish_report(args.preset, args.seed);
            if args.json {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
        }
        "dynamics" => {
            let mut base = scenario.clone();
            base.pools = experiments::victim_vs_rest_pools(0.3, 2);
            let start = base.duration.mul_f64(0.25);
            let window = base.duration.mul_f64(0.25);
            eprintln!(
                "eclipsing pool 0 (30% hash power) for {window} starting at t+{start}, \
                 seed {} ...",
                base.seed
            );
            let report = experiments::eclipse_reorg_report(
                &base,
                ethmeter_core::types::PoolId(0),
                start,
                window,
            );
            if args.json {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
        }
        "forkchoice" => {
            let label = match args.preset {
                Preset::Tiny => "tiny",
                Preset::Small => "small",
                Preset::Medium => "medium",
                Preset::PaperScaled => "paper",
                Preset::Planet => "planet",
            };
            let report = experiments::forkchoice_compare(&scenario, label);
            if args.json {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
        }
        "security" => println!("{}", experiments::security_whole_chain(args.seed)),
        "ablation" => println!(
            "{}",
            experiments::ablation_uncle_policy(&ethmeter_bench::bench_scenario(args.seed))
        ),
        name if campaign_and_suite.is_some() => {
            let (campaign, suite) = campaign_and_suite.as_ref().expect("campaign ran");
            print_for(name, campaign, suite);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
