//! One entry point per table/figure — shared by the examples, the bench
//! harness, and the `repro` binary.

use std::fmt;

use ethmeter_analysis::commit::{CommitReport, OrderingReport};
use ethmeter_analysis::decentralization::{Concentration, DecentralizationReport};
use ethmeter_analysis::empty_blocks::EmptyBlockReport;
use ethmeter_analysis::first_observation::{GeoReport, PoolReport};
use ethmeter_analysis::forks::ForkReport;
use ethmeter_analysis::propagation::PropagationReport;
use ethmeter_analysis::redundancy::{RedundancyError, RedundancyReport};
use ethmeter_analysis::sequences::SequenceReport;
use ethmeter_analysis::{
    commit, decentralization, empty_blocks, first_observation, forks, propagation, redundancy,
    sequences,
};
use ethmeter_chain::consensus::ConsensusKind;
use ethmeter_chain::rewards::{uncle_reward, MilliEther};
use ethmeter_chain::uncles::UnclePolicy;
use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{grouped, pct, Table};

use ethmeter_analysis::reorg::{self, ReorgReport};
use ethmeter_analysis::rewards;
use ethmeter_dynamics::{DynamicsScript, RegionMask};
use ethmeter_mining::{PoolBehavior, PoolConfig, PoolDirectory, SelfishConfig, Strategy};
use ethmeter_types::{BlockHash, PoolId, Region, SimDuration, SimTime};

use crate::chainonly::{run_chain_only, ChainOnlyConfig};
use crate::grid::Grid;
use crate::metric::Scalars;
use crate::report::GridReport;
use crate::runner::run_campaign;
use crate::scenario::Scenario;
use crate::selfish::{run_selfish_race, SelfishRaceConfig};

/// Every campaign-derived report in one bundle.
#[derive(Debug)]
pub struct Suite {
    /// Figure 1.
    pub fig1: PropagationReport,
    /// Table II (absent when the campaign has no default-peers observer).
    pub table2: Result<RedundancyReport, RedundancyError>,
    /// Figure 2.
    pub fig2: GeoReport,
    /// Figure 3.
    pub fig3: PoolReport,
    /// Figure 4.
    pub fig4: CommitReport,
    /// Figure 5.
    pub fig5: OrderingReport,
    /// Figure 6.
    pub fig6: EmptyBlockReport,
    /// Table III + §III-C5.
    pub table3: ForkReport,
    /// Figure 7 over the campaign's own (short) chain.
    pub fig7: SequenceReport,
    /// Nakamoto / Gini / HHI over hash power, block production, first
    /// observation, and revenue.
    pub decentralization: DecentralizationReport,
}

impl Suite {
    /// Runs every analyzer over one campaign.
    pub fn from_campaign(data: &CampaignData) -> Suite {
        Suite {
            fig1: propagation::analyze(data),
            table2: redundancy::analyze(data),
            fig2: first_observation::geo(data),
            fig3: first_observation::by_pool(data, 15),
            fig4: commit::analyze(data),
            fig5: commit::ordering(data),
            fig6: empty_blocks::analyze(data, 15),
            table3: forks::analyze(data),
            fig7: sequences::analyze(data),
            decentralization: decentralization::analyze(data),
        }
    }
}

/// The standard headline-statistics probe set for cross-seed grids: one
/// column per figure family, each a per-run scalar that the grid
/// aggregates into mean ± stddev (and percentile-of-percentiles spread)
/// per grid point.
///
/// Columns: `prop_median_ms` / `prop_p95_ms` (Figure 1), `fork_rate`
/// (Table III), `empty_fraction` (Figure 6), `commit12_median_s`
/// (Figure 4; 0 when no transaction reached 12 confirmations).
pub fn headline_scalars() -> Scalars {
    // Both propagation columns come from one analysis pass: the probe
    // memoizes the (median, p95) pair per job index, so the second
    // column reuses the first's work. The cache is keyed by job index —
    // a concurrent worker evicting it merely recomputes, never changes
    // a value — so determinism is unaffected.
    let prop_cache = std::sync::Arc::new(std::sync::Mutex::new(None::<(usize, (f64, f64))>));
    let prop = move |ctx: &crate::metric::RunCtx<'_>, campaign: &_| -> (f64, f64) {
        let mut cache = prop_cache.lock().expect("probe cache never poisoned");
        if let Some((index, value)) = *cache {
            if index == ctx.index {
                return value;
            }
        }
        let r = propagation::analyze(campaign);
        let value = if r.delays.is_empty() {
            (0.0, 0.0)
        } else {
            (r.delays.median(), r.delays.quantile(0.95))
        };
        *cache = Some((ctx.index, value));
        value
    };
    let prop = std::sync::Arc::new(prop);
    let prop_median = std::sync::Arc::clone(&prop);
    Scalars::new()
        .column("prop_median_ms", move |ctx, o| {
            prop_median(ctx, &o.campaign).0
        })
        .column("prop_p95_ms", move |ctx, o| prop(ctx, &o.campaign).1)
        .column("fork_rate", |_, o| {
            let c = forks::analyze(&o.campaign).census;
            (c.recognized_uncles + c.unrecognized) as f64 / c.total().max(1) as f64
        })
        .column("empty_fraction", |_, o| {
            empty_blocks::analyze(&o.campaign, usize::MAX).empty_fraction()
        })
        .column("commit12_median_s", |_, o| {
            commit::analyze(&o.campaign)
                .median_commit_12()
                .unwrap_or(0.0)
        })
}

/// The decentralization probe set for cross-seed grids: Nakamoto
/// coefficient, Gini, and HHI over hash power, first-observation share,
/// and revenue share — nine streaming scalar columns, one
/// [`ethmeter_analysis::decentralization`] pass per run.
pub fn decentralization_scalars() -> Scalars {
    // All nine columns come from one analysis pass: the probe memoizes
    // the scalar vector per job index (same pattern and determinism
    // argument as `headline_scalars`' propagation cache).
    let cache = std::sync::Arc::new(std::sync::Mutex::new(None::<(usize, [f64; 9])>));
    let probe = move |ctx: &crate::metric::RunCtx<'_>, campaign: &_| -> [f64; 9] {
        let mut cache = cache.lock().expect("probe cache never poisoned");
        if let Some((index, value)) = *cache {
            if index == ctx.index {
                return value;
            }
        }
        let r = decentralization::analyze(campaign);
        let axis = |c: &Concentration| [f64::from(c.nakamoto), c.gini, c.hhi];
        let [hn, hg, hh] = axis(&r.hash_power);
        let [fn_, fg, fh] = axis(&r.first_observation);
        let [rn, rg, rh] = axis(&r.revenue);
        let value = [hn, hg, hh, fn_, fg, fh, rn, rg, rh];
        *cache = Some((ctx.index, value));
        value
    };
    let probe = std::sync::Arc::new(probe);
    let names = [
        "nakamoto_hash",
        "gini_hash",
        "hhi_hash",
        "nakamoto_first_obs",
        "gini_first_obs",
        "hhi_first_obs",
        "nakamoto_revenue",
        "gini_revenue",
        "hhi_revenue",
    ];
    let mut scalars = Scalars::new();
    for (i, name) in names.into_iter().enumerate() {
        let probe = std::sync::Arc::clone(&probe);
        scalars = scalars.column(name, move |ctx, o| probe(ctx, &o.campaign)[i]);
    }
    scalars
}

/// Runs a seeds-only grid over `base` and returns the aggregated
/// decentralization table — the cross-seed companion of
/// [`decentralization_scalars`], ~flat in memory like
/// [`cross_seed_report`].
pub fn decentralization_report(
    base: &Scenario,
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .threads(threads)
        .run(decentralization_scalars())
        .output
}

/// Runs a seeds-only grid over `base` and returns the aggregated
/// headline table — the one-call generator behind EXPERIMENTS.md's
/// cross-seed rows. Memory stays ~flat in `seeds`: each campaign is
/// reduced to five scalars as it completes.
pub fn cross_seed_report(
    base: &Scenario,
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .threads(threads)
        .run(headline_scalars())
        .output
}

/// Figure 7 at the paper's exact scale: 201,086 blocks.
pub fn fig7_month(seed: u64) -> SequenceReport {
    run_chain_only(&ChainOnlyConfig::paper_month(seed)).report()
}

/// §III-D whole-chain scan (7.7M blocks): the 10/11/12/14-run regime.
pub fn security_whole_chain(seed: u64) -> SequenceReport {
    run_chain_only(&ChainOnlyConfig::paper_whole_chain(seed)).report()
}

/// Table I: the measurement-deployment description.
pub fn table1(data: &CampaignData) -> String {
    let mut t = Table::new(vec!["Location", "Peers", "Bandwidth", "Role"]);
    for (v, _) in &data.observers {
        t.row(vec![
            v.name.clone(),
            v.peer_target.to_string(),
            "10 Gbps (backbone)".into(),
            if v.default_peers {
                "redundancy (Table II)".into()
            } else {
                "main campaign".into()
            },
        ]);
    }
    format!("Table I — measurement infrastructure\n{t}")
}

/// The §V ablation: standard uncle rules vs. forbidding same-miner
/// same-height uncles.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(policy label, duplicates produced, duplicates recognized,
    /// duplicate uncle rewards in milli-ether, fork blocks, total blocks)`
    pub arms: Vec<AblationArm>,
}

/// One policy arm of the ablation.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Policy under test.
    pub policy: UnclePolicy,
    /// One-miner duplicate blocks produced.
    pub duplicates: u64,
    /// Duplicates that earned an uncle reward.
    pub duplicates_recognized: u64,
    /// Uncle rewards collected by duplicates (milli-ether).
    pub duplicate_rewards: MilliEther,
    /// Non-canonical blocks (wasted work).
    pub fork_blocks: u64,
    /// Canonical blocks.
    pub main_blocks: u64,
}

impl AblationArm {
    /// Fraction of total produced work that went to forks.
    pub fn wasted_fraction(&self) -> f64 {
        self.fork_blocks as f64 / (self.fork_blocks + self.main_blocks).max(1) as f64
    }
}

/// Runs the uncle-policy ablation: the same seeded scenario under both
/// policies (applied network-wide, as the §V protocol change would be).
pub fn ablation_uncle_policy(base: &Scenario) -> AblationReport {
    let mut arms = Vec::new();
    for policy in [UnclePolicy::Standard, UnclePolicy::ForbidSameMinerHeight] {
        let mut scenario = base.clone();
        let mut pools = scenario.pools.clone();
        for i in 0..pools.len() {
            let p = pools.pool_mut(ethmeter_types::PoolId(i as u16));
            p.strategy = p.strategy.with_uncle_policy(policy);
        }
        scenario.pools = pools;
        let outcome = run_campaign(&scenario);
        let tree = &outcome.campaign.truth.tree;
        let groups = ethmeter_chain::forks::one_miner_groups(tree);
        let mut duplicates = 0u64;
        let mut recognized = 0u64;
        let mut rewards: MilliEther = 0;
        for g in &groups {
            duplicates += g.duplicates;
            recognized += g.recognized_duplicates;
            for &h in &g.blocks {
                if tree.is_canonical(h) {
                    continue;
                }
                if let Some(nephew) = tree.uncle_included_in(h) {
                    let (Some(n), Some(u)) = (tree.get(nephew), tree.get(h)) else {
                        continue;
                    };
                    rewards += uncle_reward(n.number(), u.number());
                }
            }
        }
        let census = ethmeter_chain::forks::census(tree);
        arms.push(AblationArm {
            policy,
            duplicates,
            duplicates_recognized: recognized,
            duplicate_rewards: rewards,
            fork_blocks: census.recognized_uncles + census.unrecognized,
            main_blocks: census.main,
        });
    }
    AblationReport { arms }
}

/// The Niu–Feng profitability surface: mean attacker relative-revenue
/// gain per (γ, α) cell of a chain-only selfish-mining grid.
#[derive(Debug, Clone)]
pub struct SelfishThresholdReport {
    /// The α axis (attacker hash share), ascending.
    pub alphas: Vec<f64>,
    /// The γ axis (tie-win fraction), ascending.
    pub gammas: Vec<f64>,
    /// Seeds averaged per cell.
    pub seeds: usize,
    /// PoW wins simulated per run.
    pub blocks: u64,
    /// `gain[g][a]`: mean relative revenue of the attacker at
    /// `gammas[g]`, `alphas[a]` — `> 1` means withholding pays.
    pub gain: Vec<Vec<f64>>,
}

impl SelfishThresholdReport {
    /// The profitability threshold for one γ row: the smallest α at
    /// which the gain reaches 1.0, linearly interpolated between grid
    /// points (the first grid α if the whole row is already profitable;
    /// `None` if the row never crosses).
    pub fn threshold(&self, gamma_index: usize) -> Option<f64> {
        let row = &self.gain[gamma_index];
        if row[0] >= 1.0 {
            return Some(self.alphas[0]);
        }
        for i in 1..row.len() {
            if row[i] >= 1.0 {
                let (a0, a1) = (self.alphas[i - 1], self.alphas[i]);
                let (g0, g1) = (row[i - 1], row[i]);
                return Some(a0 + (a1 - a0) * (1.0 - g0) / (g1 - g0));
            }
        }
        None
    }

    /// Machine-readable form (schema `ethmeter-selfish-threshold/v1`),
    /// consumed by the CI repro-smoke gate.
    pub fn to_json(&self) -> String {
        let list = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let gain = self
            .gain
            .iter()
            .map(|row| format!("[{}]", list(row)))
            .collect::<Vec<_>>()
            .join(",");
        let thresholds = (0..self.gammas.len())
            .map(|g| match self.threshold(g) {
                Some(t) => format!("{t}"),
                None => "null".to_owned(),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"ethmeter-selfish-threshold/v1\",\"alphas\":[{}],\
             \"gammas\":[{}],\"seeds\":{},\"blocks\":{},\"gain\":[{}],\
             \"thresholds\":[{}]}}",
            list(&self.alphas),
            list(&self.gammas),
            self.seeds,
            self.blocks,
            gain,
            thresholds
        )
    }
}

impl fmt::Display for SelfishThresholdReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Selfish-mining profitability — relative revenue gain \
             ({} blocks × {} seeds per cell; gain > 1 means withholding pays)",
            self.blocks, self.seeds
        )?;
        let mut header = vec!["gamma \\ alpha".to_owned()];
        header.extend(self.alphas.iter().map(|a| format!("{a:.2}")));
        header.push("threshold".to_owned());
        let mut t = Table::new(header);
        for (g, row) in self.gain.iter().enumerate() {
            let mut cells = vec![format!("{:.2}", self.gammas[g])];
            cells.extend(row.iter().map(|x| format!("{x:.3}")));
            cells.push(match self.threshold(g) {
                Some(thr) => format!("{thr:.3}"),
                None => "—".to_owned(),
            });
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

/// Runs the chain-only α × γ × seed grid behind
/// [`SelfishThresholdReport`]. Cells are independent deterministic
/// races (see [`crate::selfish`]) fanned over worker threads the same
/// way [`Grid`] fans campaigns — each cell's value is a pure function
/// of its own seeds, so the result is identical at any thread count.
/// The γ-dependence of the threshold is what the full-network
/// simulation realizes through gateway placement.
///
/// # Panics
///
/// Panics if either axis is empty or `seeds` is 0 (and propagates the
/// race's own α/γ range checks).
pub fn selfish_threshold(
    alphas: &[f64],
    gammas: &[f64],
    first_seed: u64,
    seeds: usize,
    blocks: u64,
) -> SelfishThresholdReport {
    assert!(
        !alphas.is_empty() && !gammas.is_empty() && seeds > 0,
        "selfish_threshold needs non-empty axes and at least one seed"
    );
    let cells = gammas.len() * alphas.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(cells);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut gain = vec![vec![0.0; alphas.len()]; gammas.len()];
    std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let cell = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if cell >= cells {
                            break;
                        }
                        let (g, a) = (cell / alphas.len(), cell % alphas.len());
                        let mut sum = 0.0;
                        for s in 0..seeds as u64 {
                            let cfg = SelfishRaceConfig::new(
                                alphas[a],
                                gammas[g],
                                blocks,
                                first_seed + s,
                            );
                            sum += run_selfish_race(&cfg).relative_revenue();
                        }
                        mine.push((g, a, sum / seeds as f64));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (g, a, value) in handle.join().expect("threshold worker panicked") {
                gain[g][a] = value;
            }
        }
    });
    SelfishThresholdReport {
        alphas: alphas.to_vec(),
        gammas: gammas.to_vec(),
        seeds,
        blocks,
        gain,
    }
}

/// The revenue probe set for adversarial grids: the attacker pool's
/// revenue share, relative revenue gain, and withholding activity as
/// cross-seed scalar columns (composable with any [`Grid`] axis).
pub fn revenue_scalars(pool: PoolId) -> Scalars {
    // Both revenue columns come from one analysis pass: the probe
    // memoizes the (rev_share, rel_revenue) pair per job index, same as
    // headline_scalars' propagation cache (and with the same determinism
    // argument: eviction only ever recomputes, never changes a value).
    let cache = std::sync::Arc::new(std::sync::Mutex::new(None::<(usize, (f64, f64))>));
    let probe = move |ctx: &crate::metric::RunCtx<'_>, campaign: &_| -> (f64, f64) {
        let mut cache = cache.lock().expect("probe cache never poisoned");
        if let Some((index, value)) = *cache {
            if index == ctx.index {
                return value;
            }
        }
        let r = rewards::analyze(campaign);
        let value = (
            r.row(pool)
                .map_or(0.0, |row| row.revenue_share(r.total_reward)),
            r.relative_revenue(pool),
        );
        *cache = Some((ctx.index, value));
        value
    };
    let probe = std::sync::Arc::new(probe);
    let share_probe = std::sync::Arc::clone(&probe);
    Scalars::new()
        .column("rev_share", move |ctx, o| share_probe(ctx, &o.campaign).0)
        .column("rel_revenue", move |ctx, o| probe(ctx, &o.campaign).1)
        .column("withheld", |_, o| o.stats.blocks_withheld as f64)
        .column("released", |_, o| o.stats.blocks_released as f64)
}

/// The attacker's current knobs in a directory whose pool 0 is the
/// attacker: `(gateway count, selfish config)`. Falls back to one
/// gateway / the classic machine when the base directory isn't
/// attacker-shaped, so `selfish_sim_grid` works from any base scenario.
fn attacker_knobs(pools: &PoolDirectory) -> (usize, SelfishConfig) {
    let attacker = pools.pool(PoolId(0));
    let cfg = match attacker.behavior {
        ethmeter_mining::PoolBehavior::Selfish(cfg) => cfg,
        ethmeter_mining::PoolBehavior::Honest => SelfishConfig::classic(),
    };
    (attacker.gateway_count.max(1), cfg)
}

/// A full-network adversarial grid: attacker hash share × attacker
/// gateway count (the emergent-γ lever — better-connected attackers win
/// more tie races) × seeds, reduced to the [`revenue_scalars`] columns.
/// This is the simulation-side companion of [`selfish_threshold`]: same
/// machine, γ realized by placement instead of dialed in.
///
/// Each axis rebuilds the directory through
/// [`PoolDirectory::attacker_vs_honest`] while keeping the other axis's
/// value and the base scenario's [`SelfishConfig`] (e.g. a stubborn
/// variant), so every cell equals a directly constructed directory —
/// in particular, the gateway axis re-spreads gateways across regions
/// rather than stacking them into the previous placement.
pub fn selfish_sim_grid(
    base: &Scenario,
    alphas: &[f64],
    gateways: &[usize],
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .axis("alpha", alphas.to_vec(), |s, &alpha| {
            let (gw, cfg) = attacker_knobs(&s.pools);
            s.pools = PoolDirectory::attacker_vs_honest(alpha, gw, cfg);
        })
        .axis("gateways", gateways.to_vec(), |s, &g| {
            let alpha = s.pools.pool(PoolId(0)).share;
            let (_, cfg) = attacker_knobs(&s.pools);
            s.pools = PoolDirectory::attacker_vs_honest(alpha, g, cfg);
        })
        .threads(threads)
        .run(revenue_scalars(PoolId(0)))
        .output
}

// ---- Protocol design: pluggable fork choice (EXPERIMENTS.md §protocol) ----

/// One consensus engine's verdict on a shared campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkChoiceArm {
    /// Engine name (`Consensus::name`).
    pub engine: String,
    /// Canonical head after replaying every minted block.
    pub head: BlockHash,
    /// Height of that head.
    pub head_number: u64,
    /// Reorgs the ground-truth replay performed under this engine.
    pub reorgs: u64,
    /// Safe marker (head minus the engine's safe depth).
    pub safe: BlockHash,
    /// Finalized marker (head minus the engine's finalized depth).
    pub finalized: BlockHash,
}

/// The same scenario re-run under every [`ConsensusKind`]: identical
/// mining and gossip randomness per arm (same seed), so any divergence
/// in the canonical head is attributable to the fork-choice rule alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkChoiceReport {
    /// Label of the scenario preset the arms share.
    pub preset: String,
    /// The shared seed.
    pub seed: u64,
    /// One row per engine, in [`ConsensusKind::ALL`] order.
    pub arms: Vec<ForkChoiceArm>,
}

impl ForkChoiceReport {
    /// `true` when at least two engines disagree on the canonical head —
    /// the observable payoff of a pluggable fork choice.
    pub fn distinct_heads(&self) -> bool {
        self.arms.iter().any(|a| a.head != self.arms[0].head)
    }

    /// Machine-readable export (`ethmeter-forkchoice/v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"ethmeter-forkchoice/v1\"");
        s.push_str(&format!(",\"preset\":\"{}\"", self.preset));
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(",\"engines\":[");
        for (i, a) in self.arms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"head\":\"{}\",\"head_number\":{},\
                 \"reorgs\":{},\"safe\":\"{}\",\"finalized\":\"{}\"}}",
                a.engine, a.head, a.head_number, a.reorgs, a.safe, a.finalized
            ));
        }
        s.push_str(&format!("],\"distinct_heads\":{}}}", self.distinct_heads()));
        s
    }
}

impl fmt::Display for ForkChoiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fork-choice comparison — preset {}, seed {}",
            self.preset, self.seed
        )?;
        let mut t = Table::new(vec![
            "Engine",
            "Head",
            "Height",
            "Reorgs",
            "Safe",
            "Finalized",
        ]);
        for a in &self.arms {
            t.row(vec![
                a.engine.clone(),
                a.head.to_string(),
                a.head_number.to_string(),
                a.reorgs.to_string(),
                a.safe.to_string(),
                a.finalized.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\ndistinct heads: {}",
            if self.distinct_heads() { "yes" } else { "no" }
        )
    }
}

/// Runs `base` once per [`ConsensusKind`] (same seed, same physics) and
/// reports each engine's canonical head, reorg count, and safety
/// markers. With a fork-heavy scenario the uncle-weighted GHOST engine
/// picks a different head than the heaviest/longest pair, because
/// sibling uncles vote for the branch that references them.
pub fn forkchoice_compare(base: &Scenario, preset: &str) -> ForkChoiceReport {
    let arms = ConsensusKind::ALL
        .iter()
        .map(|&kind| {
            let mut s = base.clone();
            s.consensus = kind;
            let outcome = run_campaign(&s);
            let tree = &outcome.campaign.truth.tree;
            ForkChoiceArm {
                engine: kind.to_string(),
                head: tree.head(),
                head_number: tree.head_number(),
                reorgs: tree.reorg_count(),
                safe: tree.safe(),
                finalized: tree.finalized(),
            }
        })
        .collect();
    ForkChoiceReport {
        preset: preset.to_string(),
        seed: base.seed,
        arms,
    }
}

/// The selfish-gain × fork-choice surface: relative revenue of the
/// attacker (pool 0) across hash shares `alphas` under each consensus
/// engine in `kinds`. Uncle-aware engines blunt the attack — withheld
/// blocks that lose the race still earn as uncles under the default
/// schedule, while pure longest-chain pays them nothing.
pub fn selfish_forkchoice_grid(
    base: &Scenario,
    alphas: &[f64],
    kinds: &[ConsensusKind],
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .axis("alpha", alphas.to_vec(), |s, &alpha| {
            let (gw, cfg) = attacker_knobs(&s.pools);
            s.pools = PoolDirectory::attacker_vs_honest(alpha, gw, cfg);
        })
        .axis("consensus", kinds.to_vec(), |s, &kind| {
            s.consensus = kind;
        })
        .threads(threads)
        .run(revenue_scalars(PoolId(0)))
        .output
}

// ---- Network dynamics & attacks (EXPERIMENTS.md §dynamics) ----

/// The east/rest region split used by the canonical partition scenarios:
/// the Asian-Pacific regions on one side, everything else on the other
/// (the paper's EA vantage vs its European/American ones).
pub fn east_west_masks() -> (RegionMask, RegionMask) {
    let east = RegionMask::of(&[Region::EasternAsia, Region::SouthAsia, Region::Oceania]);
    (east, east.complement())
}

/// A victim-vs-rest pool directory: pool 0 ("Victim") holds hash share
/// `gamma` with `victim_gateways` gateways spread over distinct regions,
/// facing three equal honest pools splitting the remainder — the
/// all-honest mirror of [`PoolDirectory::attacker_vs_honest`], used by
/// the eclipse experiments (the attacker is the *network*, not a mining
/// strategy).
///
/// # Panics
///
/// Panics if `gamma` is outside `(0, 1)` or `victim_gateways` is 0.
pub fn victim_vs_rest_pools(gamma: f64, victim_gateways: usize) -> PoolDirectory {
    assert!(
        gamma > 0.0 && gamma < 1.0,
        "victim share must be in (0, 1), got {gamma}"
    );
    assert!(victim_gateways > 0, "victim needs at least one gateway");
    let mut pools = vec![PoolConfig {
        id: PoolId(0),
        name: "Victim".to_owned(),
        share: gamma,
        gateway_regions: (0..victim_gateways.min(Region::COUNT))
            .map(|i| (Region::ALL[i], 1.0))
            .collect(),
        gateway_count: victim_gateways,
        strategy: Strategy::honest(),
        behavior: PoolBehavior::Honest,
    }];
    let rest = 3usize;
    for i in 0..rest {
        pools.push(PoolConfig {
            id: PoolId(1 + i as u16),
            name: format!("Rest-{i}"),
            share: (1.0 - gamma) / rest as f64,
            gateway_regions: vec![
                (Region::ALL[(2 * i) % Region::COUNT], 0.6),
                (Region::ALL[(2 * i + 3) % Region::COUNT], 0.4),
            ],
            gateway_count: 2,
            strategy: Strategy::honest(),
            behavior: PoolBehavior::Honest,
        });
    }
    PoolDirectory::new(pools)
}

/// Reorg-depth probe columns for dynamics grids: `p_revert_1`,
/// `p_revert_6`, `p_revert_12` (the `P(revert ≥ k)` tail at the common
/// confirmation policies) and `abandoned_blocks`. All four come from one
/// [`reorg::analyze`] pass, memoized per job index (same pattern and
/// determinism argument as `headline_scalars`' propagation cache).
pub fn reorg_scalars() -> Scalars {
    let cache = std::sync::Arc::new(std::sync::Mutex::new(None::<(usize, [f64; 4])>));
    let probe = move |ctx: &crate::metric::RunCtx<'_>, campaign: &_| -> [f64; 4] {
        let mut cache = cache.lock().expect("probe cache never poisoned");
        if let Some((index, value)) = *cache {
            if index == ctx.index {
                return value;
            }
        }
        let r = reorg::analyze(campaign);
        let value = [
            r.p_revert(1),
            r.p_revert(6),
            r.p_revert(12),
            r.abandoned_blocks as f64,
        ];
        *cache = Some((ctx.index, value));
        value
    };
    let probe = std::sync::Arc::new(probe);
    let names = [
        "p_revert_1",
        "p_revert_6",
        "p_revert_12",
        "abandoned_blocks",
    ];
    let mut scalars = Scalars::new();
    for (i, name) in names.into_iter().enumerate() {
        let probe = std::sync::Arc::clone(&probe);
        scalars = scalars.column(name, move |ctx, o| probe(ctx, &o.campaign)[i]);
    }
    scalars
}

/// One eclipse campaign: the victim pool's gateways are isolated for
/// `eclipse` starting at `start`, and the ground-truth reorg-depth table
/// (`P(revert ≥ k)`) is computed from the resulting chain. Dispatches on
/// `base.shards` like [`run_campaign`].
pub fn eclipse_reorg_report(
    base: &Scenario,
    victim: PoolId,
    start: SimDuration,
    eclipse: SimDuration,
) -> ReorgReport {
    let mut s = base.clone();
    s.dynamics = DynamicsScript::new().eclipse_window(SimTime::ZERO + start, eclipse, victim);
    reorg::analyze(&run_campaign(&s).campaign)
}

/// The partition-resilience surface: regional partition duration × pool
/// count (hash-power concentration — `n` uniform pools have Nakamoto
/// coefficient `⌈(n+1)/2⌉`), with the reorg tail per point. The
/// partition opens a quarter into the run and splits the east/west
/// region sets of [`east_west_masks`].
pub fn partition_surface(
    base: &Scenario,
    partition_secs: &[u64],
    pool_counts: &[usize],
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    let start = SimTime::ZERO + base.duration.mul_f64(0.25);
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .axis(
            "partition_secs",
            partition_secs.to_vec(),
            move |s, &secs| {
                let (east, west) = east_west_masks();
                s.dynamics = DynamicsScript::new().partition_window(
                    start,
                    SimDuration::from_secs(secs),
                    east,
                    west,
                );
            },
        )
        .axis("pools", pool_counts.to_vec(), |s, &n| {
            s.pools = PoolDirectory::uniform(n, 2);
        })
        .threads(threads)
        .run(reorg_scalars())
        .output
}

/// The eclipse surface: eclipse duration × victim hash share γ, with the
/// reorg tail per point. The victim (pool 0 of
/// [`victim_vs_rest_pools`]) is isolated from a quarter into the run; a
/// bigger γ mines a taller island chain in the same wall of time, so the
/// `P(revert ≥ k)` tail thickens along both axes.
pub fn eclipse_surface(
    base: &Scenario,
    eclipse_secs: &[u64],
    gammas: &[f64],
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    let start = SimTime::ZERO + base.duration.mul_f64(0.25);
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .axis("eclipse_secs", eclipse_secs.to_vec(), move |s, &secs| {
            s.dynamics = DynamicsScript::new().eclipse_window(
                start,
                SimDuration::from_secs(secs),
                PoolId(0),
            );
        })
        .axis("gamma", gammas.to_vec(), |s, &g| {
            s.pools = victim_vs_rest_pools(g, 2);
        })
        .threads(threads)
        .run(reorg_scalars())
        .output
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§V ablation — uncle policy vs one-miner fork profits")?;
        let mut t = Table::new(vec![
            "Policy",
            "Duplicates",
            "Recognized",
            "Dup rewards (mETH)",
            "Fork blocks",
            "Wasted work",
        ]);
        for arm in &self.arms {
            t.row(vec![
                format!("{:?}", arm.policy),
                arm.duplicates.to_string(),
                arm.duplicates_recognized.to_string(),
                grouped(arm.duplicate_rewards),
                arm.fork_blocks.to_string(),
                pct(arm.wasted_fraction()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    fn small_campaign() -> CampaignData {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(5)
            .duration(SimDuration::from_mins(10))
            .build();
        run_campaign(&scenario).campaign
    }

    #[test]
    fn suite_runs_every_analyzer() {
        let data = small_campaign();
        let suite = Suite::from_campaign(&data);
        assert!(suite.fig1.blocks_measured > 0, "fig1 empty");
        assert!(suite.table2.is_ok(), "table2: {:?}", suite.table2);
        assert!(suite.fig2.blocks > 0);
        assert!(!suite.fig3.pools.is_empty());
        assert!(suite.fig6.total_blocks > 0);
        assert!(suite.fig7.total_blocks > 0);
        assert!(suite.decentralization.blocks > 0);
        assert!(suite.decentralization.hash_power.nakamoto >= 1);
        // Displays all render.
        let _ = format!(
            "{}{}{}{}{}{}{}{}{}",
            suite.fig1,
            suite.fig2,
            suite.fig3,
            suite.fig4,
            suite.fig5,
            suite.fig6,
            suite.table3,
            suite.fig7,
            suite.decentralization
        );
    }

    #[test]
    fn decentralization_report_aggregates_scalars() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(5))
            .build();
        let report = decentralization_report(&base, 1, 2, 2);
        assert_eq!(report.rows.len(), 1, "seeds-only grid has one point");
        assert_eq!(report.columns.len(), 9);
        let row = &report.rows[0];
        assert!(row.cells.iter().all(|c| c.runs == 2));
        let col = |name: &str| {
            let i = report.columns.iter().position(|c| c == name).expect("col");
            &row.cells[i]
        };
        // The hash-power axis is configuration, identical across seeds.
        assert!(col("nakamoto_hash").mean >= 1.0);
        assert_eq!(col("nakamoto_hash").std_dev, 0.0);
        assert!(col("hhi_revenue").mean > 0.0 && col("hhi_revenue").mean <= 1.0);
        assert!(col("gini_first_obs").mean >= 0.0);
        assert!(report.to_csv().contains("nakamoto_first_obs_mean"));
    }

    #[test]
    fn table1_lists_all_observers() {
        let data = small_campaign();
        let t = table1(&data);
        assert!(t.contains("Table I"));
        assert!(t.contains("NA") && t.contains("EA"));
        assert!(t.contains("redundancy"));
    }

    #[test]
    fn cross_seed_report_aggregates_headline_stats() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(5))
            .build();
        let report = cross_seed_report(&base, 1, 2, 2);
        assert_eq!(report.rows.len(), 1, "seeds-only grid has one point");
        let row = &report.rows[0];
        assert!(row.point.is_base());
        assert_eq!(report.columns.len(), 5);
        assert!(row.cells.iter().all(|c| c.runs == 2));
        let col = |name: &str| {
            let i = report.columns.iter().position(|c| c == name).expect("col");
            &row.cells[i]
        };
        assert!(col("prop_median_ms").mean > 0.0);
        assert!(col("prop_p95_ms").mean >= col("prop_median_ms").mean);
        // Exports render without panicking and carry the column names.
        assert!(report.to_csv().contains("fork_rate_mean"));
        assert!(report.to_json().contains("\"prop_median_ms\""));
    }

    #[test]
    fn fig7_month_is_paper_scale() {
        let report = fig7_month(1);
        assert_eq!(report.total_blocks, 201_086);
    }

    #[test]
    fn threshold_interpolation_and_json() {
        let report = SelfishThresholdReport {
            alphas: vec![0.1, 0.2, 0.3],
            gammas: vec![0.0, 1.0],
            seeds: 1,
            blocks: 10,
            gain: vec![vec![0.8, 0.9, 1.1], vec![1.2, 1.3, 1.4]],
        };
        // Row 0 crosses between 0.2 and 0.3: 0.2 + 0.1 * (0.1/0.2) = 0.25.
        let t0 = report.threshold(0).expect("crosses");
        assert!((t0 - 0.25).abs() < 1e-9, "t0 {t0}");
        // Row 1 is profitable from the first cell.
        assert_eq!(report.threshold(1), Some(0.1));
        // A row that never crosses yields None.
        let flat = SelfishThresholdReport {
            gain: vec![vec![0.5, 0.6, 0.7], vec![1.0, 1.0, 1.0]],
            ..report.clone()
        };
        assert_eq!(flat.threshold(0), None);
        // JSON carries the schema tag and both axes.
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"ethmeter-selfish-threshold/v1\""));
        assert!(json.contains("\"thresholds\":["), "json: {json}");
        assert!(json.ends_with(",0.1]}"), "json: {json}");
        // Display renders the table with a threshold column.
        let shown = report.to_string();
        assert!(shown.contains("threshold"));
        assert!(shown.contains("0.250"));
    }

    #[test]
    fn selfish_sim_grid_reports_revenue_columns() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(8))
            .pools(PoolDirectory::attacker_vs_honest(
                0.3,
                2,
                SelfishConfig::classic(),
            ))
            .build();
        let report = selfish_sim_grid(&base, &[0.35], &[4], 3, 1, 1);
        assert_eq!(report.rows.len(), 1, "one (alpha, gateways) point");
        assert_eq!(
            report.columns,
            vec!["rev_share", "rel_revenue", "withheld", "released"]
        );
        let row = &report.rows[0];
        assert_eq!(row.point.get("alpha"), Some("0.35"));
        assert_eq!(row.point.get("gateways"), Some("4"));
        let col = |name: &str| {
            let i = report.columns.iter().position(|c| c == name).expect("col");
            row.cells[i].mean
        };
        assert!(col("rev_share") > 0.0);
        assert!(col("withheld") > 0.0, "the attacker must have withheld");
        assert!(col("released") > 0.0, "withheld blocks must be released");
    }

    #[test]
    fn forkchoice_compare_runs_every_engine() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(7)
            .duration(SimDuration::from_mins(10))
            .build();
        let report = forkchoice_compare(&base, "tiny");
        assert_eq!(report.arms.len(), ConsensusKind::ALL.len());
        assert_eq!(report.arms[0].engine, "heaviest");
        for arm in &report.arms {
            assert!(arm.head_number > 0, "{} mined nothing", arm.engine);
        }
        // Difficulty is constant in-sim, so heaviest and longest agree.
        assert_eq!(report.arms[0].head_number, report.arms[1].head_number);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"ethmeter-forkchoice/v1\""));
        assert!(json.contains("\"preset\":\"tiny\""));
        assert!(json.contains("\"distinct_heads\":"), "json: {json}");
        let shown = report.to_string();
        assert!(shown.contains("Fork-choice comparison"));
        assert!(shown.contains("uncle-ghost"));
    }

    #[test]
    fn selfish_forkchoice_grid_spans_both_axes() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(8))
            .pools(PoolDirectory::attacker_vs_honest(
                0.3,
                2,
                SelfishConfig::classic(),
            ))
            .build();
        let kinds = [ConsensusKind::Heaviest, ConsensusKind::Longest];
        let report = selfish_forkchoice_grid(&base, &[0.35], &kinds, 3, 1, 1);
        assert_eq!(report.rows.len(), 2, "one alpha × two engines");
        let engines: Vec<_> = report
            .rows
            .iter()
            .map(|r| r.point.get("consensus").expect("axis"))
            .collect();
        assert_eq!(engines, vec!["heaviest", "longest"]);
        for row in &report.rows {
            assert_eq!(row.point.get("alpha"), Some("0.35"));
            let i = report
                .columns
                .iter()
                .position(|c| c == "rev_share")
                .expect("col");
            assert!(row.cells[i].mean > 0.0);
        }
    }

    #[test]
    fn selfish_threshold_tiny_grid_runs() {
        let r = selfish_threshold(&[0.15, 0.35], &[0.0, 1.0], 1, 1, 1_500);
        assert_eq!(r.gain.len(), 2);
        assert_eq!(r.gain[0].len(), 2);
        assert!(r.gain.iter().flatten().all(|g| g.is_finite() && *g > 0.0));
        // γ = 1 strictly dominates γ = 0 cell-wise at these shares.
        assert!(r.gain[1][0] > r.gain[0][0]);
    }
}
