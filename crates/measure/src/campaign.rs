//! The complete dataset of one measurement campaign.

use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::Transaction;
use ethmeter_types::{BlockHash, FxHashMap, PoolId, SimDuration, TxId};

use crate::csv;
use crate::log::{BlockRecord, ObserverLog, TxRecord};
use crate::vantage::VantagePoint;

/// Simulator-side ground truth. The real experiment approximates these
/// through Etherscan cross-checks; the simulator knows them exactly, which
/// is what lets the test suite verify the analysis pipeline end to end.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Every block produced during the campaign (main chain and forks).
    pub tree: BlockTree,
    /// Every transaction submitted (keyed through `FxHasher64`; the
    /// fingerprint and every exporter sort before iterating).
    pub txs: FxHashMap<TxId, Transaction>,
    /// Pool names by id (for report labels).
    pub pool_names: Vec<String>,
    /// Pool hash-power shares by id.
    pub pool_shares: Vec<f64>,
    /// The configured mean inter-block time.
    pub interblock: SimDuration,
    /// Campaign duration.
    pub duration: SimDuration,
}

impl GroundTruth {
    /// The display name of a pool (falls back to the raw id).
    pub fn pool_name(&self, pool: PoolId) -> String {
        self.pool_names
            .get(pool.index())
            .cloned()
            .unwrap_or_else(|| pool.to_string())
    }

    /// The hash-power share of a pool (0 if unknown).
    pub fn pool_share(&self, pool: PoolId) -> f64 {
        self.pool_shares.get(pool.index()).copied().unwrap_or(0.0)
    }
}

/// One campaign's observers plus ground truth — the input to every
/// analyzer in `ethmeter-analysis`.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// Observer logs, in vantage order.
    pub observers: Vec<(VantagePoint, ObserverLog)>,
    /// What actually happened.
    pub truth: GroundTruth,
}

impl CampaignData {
    /// The main (high-degree) observers — the paper's four — excluding the
    /// default-peers redundancy observer.
    pub fn main_observers(&self) -> impl Iterator<Item = &(VantagePoint, ObserverLog)> + '_ {
        self.observers.iter().filter(|(v, _)| !v.default_peers)
    }

    /// The default-peers observer, if the campaign deployed one.
    pub fn redundancy_observer(&self) -> Option<&(VantagePoint, ObserverLog)> {
        self.observers.iter().find(|(v, _)| v.default_peers)
    }

    /// Looks an observer up by name.
    pub fn observer(&self, name: &str) -> Option<&(VantagePoint, ObserverLog)> {
        self.observers.iter().find(|(v, _)| v.name == name)
    }

    /// Visits every distinct block observed by at least one main
    /// observer, in ascending hash order, together with the observing
    /// records as `(main-observer index, record)` pairs (ascending
    /// observer index).
    ///
    /// This is the one iteration API the report families consume: it is
    /// a k-way merge-join over the observers'
    /// [`ObserverLog::scan_blocks`] streams, so spilled and in-memory
    /// logs read identically and no caller ever materializes the raw
    /// rows — memory is bounded by the scans' fixed chunked read-ahead,
    /// not by campaign size.
    pub fn for_each_main_block<F>(&self, mut f: F)
    where
        F: FnMut(BlockHash, &[(usize, BlockRecord)]),
    {
        let mut scans: Vec<_> = self
            .main_observers()
            .map(|(_, log)| log.scan_blocks().peekable())
            .collect();
        let mut group: Vec<(usize, BlockRecord)> = Vec::new();
        loop {
            let mut min: Option<BlockHash> = None;
            for s in &mut scans {
                if let Some(r) = s.peek() {
                    min = Some(match min {
                        Some(m) => m.min(r.hash),
                        None => r.hash,
                    });
                }
            }
            let Some(min) = min else { break };
            group.clear();
            for (i, s) in scans.iter_mut().enumerate() {
                if s.peek().is_some_and(|r| r.hash == min) {
                    group.push((i, s.next().expect("peeked")));
                }
            }
            f(min, &group);
        }
    }

    /// Visits every distinct transaction observed by at least one main
    /// observer, in ascending id order, with `(main-observer index,
    /// record)` pairs — the transaction-side twin of
    /// [`CampaignData::for_each_main_block`], streaming through
    /// [`ObserverLog::scan_txs`].
    pub fn for_each_main_tx<F>(&self, mut f: F)
    where
        F: FnMut(TxId, &[(usize, TxRecord)]),
    {
        let mut scans: Vec<_> = self
            .main_observers()
            .map(|(_, log)| log.scan_txs().peekable())
            .collect();
        let mut group: Vec<(usize, TxRecord)> = Vec::new();
        loop {
            let mut min: Option<TxId> = None;
            for s in &mut scans {
                if let Some(r) = s.peek() {
                    min = Some(match min {
                        Some(m) => m.min(r.id),
                        None => r.id,
                    });
                }
            }
            let Some(min) = min else { break };
            group.clear();
            for (i, s) in scans.iter_mut().enumerate() {
                if s.peek().is_some_and(|r| r.id == min) {
                    group.push((i, s.next().expect("peeked")));
                }
            }
            f(min, &group);
        }
    }

    /// A stable 64-bit digest of the entire dataset: every observer log
    /// (through its canonical CSV serialization) plus the full ground
    /// truth (all blocks, all transactions, the canonical chain, and the
    /// campaign parameters).
    ///
    /// Two campaigns fingerprint equal iff they are observationally
    /// identical, so a pinned fingerprint turns "same seed ⇒ same run"
    /// into a one-integer regression test. The digest is independent of
    /// platform, build profile, and in-memory layout (hash-map iteration
    /// order never reaches it: every collection is sorted into a canonical
    /// order first).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.observers.len() as u64);
        for (vantage, log) in &self.observers {
            h.write_bytes(vantage.name.as_bytes());
            h.write_u64(u64::from(vantage.default_peers));
            h.write_bytes(csv::blocks_to_csv(log).as_bytes());
            h.write_bytes(csv::txs_to_csv(log).as_bytes());
        }

        let tree = &self.truth.tree;
        h.write_u64(tree.len() as u64);
        for number in 0..=tree.head_number() {
            h.write_u64(
                tree.canonical_hash(number)
                    .expect("canonical chain is contiguous")
                    .raw(),
            );
        }
        let mut blocks: Vec<_> = tree.all_blocks().collect();
        blocks.sort_by_key(|b| (b.number(), b.hash()));
        for b in blocks {
            h.write_u64(b.hash().raw());
            h.write_u64(b.parent().raw());
            h.write_u64(b.number());
            h.write_u64(u64::from(b.miner().raw()));
            h.write_u64(b.mined_at().as_nanos());
            for t in b.txs() {
                h.write_u64(t.raw());
            }
            for u in b.uncles() {
                h.write_u64(u.raw());
            }
        }

        let mut txs: Vec<&Transaction> = self.truth.txs.values().collect();
        txs.sort_by_key(|t| t.id);
        h.write_u64(txs.len() as u64);
        for t in txs {
            h.write_u64(t.id.raw());
            h.write_u64(u64::from(t.sender.raw()));
            h.write_u64(t.nonce);
            h.write_u64(t.gas_price);
            h.write_u64(t.gas);
            h.write_u64(t.size.as_bytes());
            h.write_u64(t.submitted_at.as_nanos());
            h.write_u64(u64::from(t.origin.raw()));
        }

        for name in &self.truth.pool_names {
            h.write_bytes(name.as_bytes());
        }
        for &share in &self.truth.pool_shares {
            h.write_u64(share.to_bits());
        }
        h.write_u64(self.truth.interblock.as_nanos());
        h.write_u64(self.truth.duration.as_nanos());
        h.finish()
    }
}

/// Streaming FNV-1a (64-bit): tiny, dependency-free, and byte-order
/// independent — exactly stable enough for golden fingerprints.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Length terminator: distinguishes ["ab","c"] from ["a","bc"].
        self.0 ^= bytes.len() as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_campaign() -> CampaignData {
        CampaignData {
            observers: VantagePoint::paper_all()
                .into_iter()
                .map(|v| (v, ObserverLog::new()))
                .collect(),
            truth: GroundTruth {
                tree: BlockTree::new(),
                txs: FxHashMap::default(),
                pool_names: vec!["Ethermine".into()],
                pool_shares: vec![0.2532],
                interblock: SimDuration::from_secs_f64(13.3),
                duration: SimDuration::from_hours(1),
            },
        }
    }

    #[test]
    fn observer_selection() {
        let c = empty_campaign();
        assert_eq!(c.main_observers().count(), 4);
        assert!(c.redundancy_observer().is_some());
        assert!(c.observer("EA").is_some());
        assert!(c.observer("nope").is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = empty_campaign();
        let b = empty_campaign();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same data, same digest");

        // Any observed message changes the digest.
        let mut c = empty_campaign();
        c.observers[0].1.record_block_msg(
            ethmeter_types::BlockHash(7),
            crate::BlockMsgKind::FullBlock,
            ethmeter_types::NodeId(1),
            ethmeter_types::SimTime::from_secs(1),
            ethmeter_types::SimTime::from_secs(1),
        );
        assert_ne!(a.fingerprint(), c.fingerprint());

        // So does any ground-truth change.
        let mut d = empty_campaign();
        d.truth.pool_shares[0] += 1e-9;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_independent_of_tx_map_layout() {
        use ethmeter_chain::tx::Transaction;
        use ethmeter_types::{AccountId, ByteSize, NodeId, SimTime};
        let tx = |id: u64| Transaction {
            id: TxId(id),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 3,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        };
        let mut a = empty_campaign();
        let mut b = empty_campaign();
        for id in 1..=64 {
            a.truth.txs.insert(TxId(id), tx(id));
        }
        for id in (1..=64).rev() {
            b.truth.txs.insert(TxId(id), tx(id));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn group_scans_join_main_observers_by_key() {
        use ethmeter_types::{NodeId, SimTime};
        let mut c = empty_campaign();
        let t = SimTime::from_secs(1);
        // Main observers are indices 0..4; index 4 is the redundancy
        // observer and must never appear in a group.
        c.observers[0].1.record_block_msg(
            BlockHash(9),
            crate::BlockMsgKind::Announce,
            NodeId(1),
            t,
            t,
        );
        c.observers[0].1.record_block_msg(
            BlockHash(3),
            crate::BlockMsgKind::FullBlock,
            NodeId(1),
            t,
            t,
        );
        c.observers[2].1.record_block_msg(
            BlockHash(3),
            crate::BlockMsgKind::FullBlock,
            NodeId(2),
            t,
            t,
        );
        c.observers[4].1.record_block_msg(
            BlockHash(3),
            crate::BlockMsgKind::FullBlock,
            NodeId(3),
            t,
            t,
        );
        let mut seen = Vec::new();
        c.for_each_main_block(|hash, group| {
            seen.push((hash, group.iter().map(|(i, _)| *i).collect::<Vec<_>>()));
        });
        assert_eq!(
            seen,
            vec![(BlockHash(3), vec![0, 2]), (BlockHash(9), vec![0])]
        );

        c.observers[1].1.record_tx(TxId(5), NodeId(1), t, t);
        c.observers[3].1.record_tx(TxId(5), NodeId(2), t, t);
        c.observers[3].1.record_tx(TxId(2), NodeId(2), t, t);
        let mut seen = Vec::new();
        c.for_each_main_tx(|id, group| {
            seen.push((id, group.iter().map(|(i, _)| *i).collect::<Vec<_>>()));
        });
        assert_eq!(seen, vec![(TxId(2), vec![3]), (TxId(5), vec![1, 3])]);
    }

    #[test]
    fn pool_label_fallback() {
        let c = empty_campaign();
        assert_eq!(c.truth.pool_name(PoolId(0)), "Ethermine");
        assert_eq!(c.truth.pool_name(PoolId(9)), "pool-9");
        assert_eq!(c.truth.pool_share(PoolId(0)), 0.2532);
        assert_eq!(c.truth.pool_share(PoolId(9)), 0.0);
    }
}
