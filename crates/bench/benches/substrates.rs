//! Substrate micro-benchmarks: the data structures under the measurement
//! pipeline (block tree, mempool, topology, PRNG, distributions).

use criterion::{criterion_group, criterion_main, Criterion};
use ethmeter_chain::block::BlockBuilder;
use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::{Transaction, SIMPLE_TX_GAS};
use ethmeter_sim::dist::{Exp, LogNormal, Zipf};
use ethmeter_sim::{EventQueue, Xoshiro256};
use ethmeter_types::{AccountId, BlockHash, ByteSize, NodeId, PoolId, SimTime, TxId};
use std::hint::black_box;

fn bench_blocktree(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree");
    g.bench_function("insert_1000_linear", |b| {
        b.iter(|| {
            let mut tree = BlockTree::new();
            let mut parent = tree.genesis_hash();
            for i in 0..1000u64 {
                let block = BlockBuilder::new(parent, i + 1, PoolId(0)).salt(i).build();
                parent = block.hash();
                tree.insert(block).expect("linear insert");
            }
            black_box(tree.head_number())
        })
    });
    g.bench_function("insert_with_forks_and_reorgs", |b| {
        b.iter(|| {
            let mut tree = BlockTree::new();
            let mut parent = tree.genesis_hash();
            let mut number = 0u64;
            for i in 0..500u64 {
                let prev = parent;
                let prev_number = number;
                number += 1;
                let block = BlockBuilder::new(parent, number, PoolId(0)).salt(i).build();
                parent = block.hash();
                tree.insert(block).expect("main insert");
                if i % 7 == 0 && i > 0 {
                    // Competing sibling: occasionally wins via a child
                    // (forcing a reorg of the last main block).
                    let fork = BlockBuilder::new(prev, prev_number + 1, PoolId(1))
                        .salt(10_000 + i)
                        .build();
                    let fh = fork.hash();
                    tree.insert(fork).expect("fork insert");
                    if i % 21 == 0 {
                        number = prev_number + 2;
                        let child = BlockBuilder::new(fh, number, PoolId(1))
                            .salt(20_000 + i)
                            .build();
                        parent = child.hash();
                        tree.insert(child).expect("reorg insert");
                    }
                }
            }
            black_box(tree.reorg_count())
        })
    });
    g.finish();
}

fn bench_mempool(c: &mut Criterion) {
    let mut g = c.benchmark_group("mempool");
    let txs: Vec<Transaction> = (0..2_000u64)
        .map(|i| Transaction {
            id: TxId(i),
            sender: AccountId((i % 97) as u32),
            nonce: i / 97,
            gas_price: (i * 31) % 100 + 1,
            gas: SIMPLE_TX_GAS,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        })
        .collect();
    g.bench_function("add_2000_txs", |b| {
        b.iter(|| {
            let mut pool = ethmeter_txpool::Mempool::new();
            for tx in &txs {
                pool.add(tx);
            }
            black_box(pool.len())
        })
    });
    g.bench_function("pack_8m_gas", |b| {
        let mut pool = ethmeter_txpool::Mempool::new();
        for tx in &txs {
            pool.add(tx);
        }
        b.iter(|| black_box(pool.pack(8_000_000).len()))
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("exp_sample", |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let d = Exp::with_mean(13.3);
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    g.bench_function("lognormal_sample", |b| {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let d = LogNormal::with_median(1.0, 0.45);
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    g.bench_function("zipf_sample_10k", |b| {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let d = Zipf::new(10_000, 1.05);
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    g.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = Xoshiro256::seed_from_u64(5);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(SimTime::from_nanos(rng.next_u64() >> 20), i);
            }
            let mut last = 0;
            while let Some((_, e)) = q.pop() {
                last = e;
            }
            black_box(last)
        })
    });
    g.bench_function("block_hash_mix", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(BlockHash::mix(i))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_blocktree, bench_mempool, bench_primitives);
criterion_main!(benches);
