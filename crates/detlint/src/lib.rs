#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `detlint` — the ethmeter workspace determinism lint.
//!
//! Every result this workspace reports is required to be a pure function
//! of `(scenario, seed)`: golden fingerprints, bit-identical parallel
//! sweeps, and merge-order-independent metric collectors all assume it.
//! This crate machine-checks the coding rules behind that invariant
//! instead of leaving them to review-by-eye. See `DETERMINISM.md` at the
//! repository root for the full policy.
//!
//! The scanner is dependency-free: a small hand-rolled lexer
//! ([`lexer`]) blanks comments and string literals out of each source
//! file, and the rule engine ([`rules`]) pattern-matches the remaining
//! code view. That makes the rules heuristics, not proofs — they are
//! tuned to catch the hazard classes that have actually bitten
//! simulation studies (seeded-hasher iteration order, wall-clock reads)
//! with near-zero false positives on this tree. Anything the heuristics
//! misjudge is suppressed with a `detlint::allow` pragma that must carry
//! a written reason.

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rules::{check_file, AllowedSite, FileCtx, FileKind, Finding, RuleId};

/// Schema identifier stamped into `--format json` output.
pub const JSON_SCHEMA: &str = "ethmeter-detlint/v1";

/// A diagnostic attributed to a file.
#[derive(Debug, Clone)]
pub struct FileFinding {
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// The underlying finding.
    pub finding: Finding,
}

/// A pragma-suppressed diagnostic attributed to a file.
#[derive(Debug, Clone)]
pub struct FileAllowed {
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// The suppressed site with its written reason.
    pub allowed: AllowedSite,
}

/// Result of scanning a workspace tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Scan root, as given.
    pub root: String,
    /// Number of `.rs` files checked.
    pub files_scanned: usize,
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<FileFinding>,
    /// Pragma-suppressed sites, sorted the same way.
    pub allowed: Vec<FileAllowed>,
}

impl Report {
    /// True when the tree is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Classifies a workspace-relative `.rs` path into the context the rules
/// need. Returns `None` for files detlint does not police (fixture
/// corpora, generated trees).
pub fn classify(rel: &str) -> Option<FileCtx> {
    let segs: Vec<&str> = rel.split('/').collect();
    if segs
        .iter()
        .any(|s| *s == "fixtures" || *s == "target" || s.starts_with('.'))
    {
        return None;
    }
    let crate_name = match segs.first() {
        Some(&"crates") if segs.len() > 1 => segs[1].to_string(),
        _ => "ethmeter".to_string(),
    };
    let kind = if segs.contains(&"tests") {
        FileKind::Test
    } else if segs.contains(&"benches") {
        FileKind::Bench
    } else if segs.contains(&"examples") {
        FileKind::Example
    } else {
        FileKind::Source
    };
    let n = segs.len();
    let is_crate_root = n >= 2 && segs[n - 2] == "src" && segs[n - 1] == "lib.rs";
    Some(FileCtx {
        crate_name,
        kind,
        is_crate_root,
    })
}

/// Recursively collects workspace `.rs` files under `root`, skipping
/// build output, VCS metadata, and detlint's own fixture corpus. The
/// returned paths are sorted so reports are byte-stable.
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every workspace `.rs` file under `root` and returns the report.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut report = Report {
        root: root.display().to_string(),
        ..Report::default()
    };
    for path in files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let Some(ctx) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        let outcome = check_file(&ctx, &source);
        report.files_scanned += 1;
        for finding in outcome.findings {
            report.diagnostics.push(FileFinding {
                file: rel.clone(),
                finding,
            });
        }
        for allowed in outcome.allowed {
            report.allowed.push(FileAllowed {
                file: rel.clone(),
                allowed,
            });
        }
    }
    report.diagnostics.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.rule).cmp(&(&b.file, b.finding.line, b.finding.rule))
    });
    report.allowed.sort_by(|a, b| {
        (&a.file, a.allowed.line, a.allowed.rule).cmp(&(&b.file, b.allowed.line, b.allowed.rule))
    });
    Ok(report)
}

/// Renders the human-readable report: one `file:line: rule-id: message`
/// line per diagnostic, then a summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(
            out,
            "{}:{}: {}: {}",
            d.file,
            d.finding.line,
            d.finding.rule.id(),
            d.finding.message
        );
    }
    let _ = writeln!(
        out,
        "detlint: {} file(s) scanned, {} violation(s), {} allowed site(s)",
        report.files_scanned,
        report.diagnostics.len(),
        report.allowed.len()
    );
    out
}

/// Escapes a string for inclusion in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report (schema [`JSON_SCHEMA`]).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{}\",\"root\":\"{}\",\"files_scanned\":{},\"diagnostics\":[",
        JSON_SCHEMA,
        json_escape(&report.root),
        report.files_scanned
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            if i > 0 { "," } else { "" },
            json_escape(&d.file),
            d.finding.line,
            d.finding.rule.id(),
            json_escape(&d.finding.message)
        );
    }
    let _ = write!(out, "],\"allowed\":[");
    for (i, a) in report.allowed.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
            if i > 0 { "," } else { "" },
            json_escape(&a.file),
            a.allowed.line,
            a.allowed.rule.id(),
            json_escape(&a.allowed.reason)
        );
    }
    let _ = writeln!(out, "]}}");
    out
}

/// Renders the rule catalog (`detlint rules`).
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in RuleId::all() {
        let _ = writeln!(out, "{:<16} {}", rule.id(), rule.describe());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_contexts() {
        let ctx = classify("crates/net/src/headerview.rs").unwrap();
        assert_eq!(ctx.crate_name, "net");
        assert_eq!(ctx.kind, FileKind::Source);
        assert!(!ctx.is_crate_root);

        let ctx = classify("crates/sim/src/lib.rs").unwrap();
        assert!(ctx.is_crate_root);

        let ctx = classify("tests/golden.rs").unwrap();
        assert_eq!(ctx.crate_name, "ethmeter");
        assert_eq!(ctx.kind, FileKind::Test);

        let ctx = classify("crates/bench/benches/gossip.rs").unwrap();
        assert_eq!(ctx.kind, FileKind::Bench);

        assert!(classify("crates/detlint/tests/fixtures/r1_bad.rs").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let report = Report {
            root: "/w".into(),
            files_scanned: 1,
            diagnostics: vec![FileFinding {
                file: "a.rs".into(),
                finding: Finding {
                    line: 3,
                    rule: RuleId::Entropy,
                    message: "m".into(),
                },
            }],
            allowed: vec![],
        };
        let json = render_json(&report);
        assert!(json.starts_with("{\"schema\":\"ethmeter-detlint/v1\""));
        assert!(json.contains("\"rule\":\"entropy\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.trim_end().ends_with("\"allowed\":[]}"));
    }
}
