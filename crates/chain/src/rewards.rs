//! The post-Constantinople reward schedule (EIP-1234, in force during the
//! paper's April 2019 window) and per-pool reward accounting.
//!
//! Rewards explain the selfish behaviors the paper documents: an empty
//! block forfeits only transaction fees (small) while keeping the 2 ETH
//! base reward (large) — "miners are penalized by not collecting
//! transaction fees ... they still get the mining reward which is, on
//! average, considerably higher" (§III-C3). One-miner forks harvest uncle
//! rewards: up to 7/8 of a block reward for a duplicate block (§III-C5).

use std::collections::BTreeMap;

use ethmeter_types::{BlockNumber, PoolId};

/// Milli-ether: rewards are tracked in integer thousandths of an ETH so the
/// ledger stays exact.
pub type MilliEther = u64;

/// Base block reward after Constantinople: 2 ETH.
pub const BLOCK_REWARD: MilliEther = 2_000;

/// Reward for an uncle at generation gap `k = nephew.number - uncle.number`
/// (1..=6): `(8 - k) / 8 * BLOCK_REWARD`.
///
/// Returns 0 outside the valid window.
pub fn uncle_reward(nephew: BlockNumber, uncle: BlockNumber) -> MilliEther {
    if uncle >= nephew {
        return 0;
    }
    let k = nephew - uncle;
    if k > 6 {
        return 0;
    }
    BLOCK_REWARD * (8 - k) / 8
}

/// Reward paid to the *nephew* for each uncle it references:
/// `BLOCK_REWARD / 32`.
pub const NEPHEW_REWARD: MilliEther = BLOCK_REWARD / 32;

/// Average transaction fee revenue per full block during the window, used
/// to quantify what an empty block forfeits (~0.15 ETH at April 2019 gas
/// prices).
pub const AVG_FEES_PER_FULL_BLOCK: MilliEther = 150;

/// Average fee revenue of one transaction (~75 transactions per full
/// block during the window → 2 mETH each). Deliberately integral so
/// revenue ledgers stay exact.
pub const AVG_FEE_PER_TX: MilliEther = 2;

/// Fee revenue of a block carrying `tx_count` transactions under the
/// flat per-transaction fee model.
pub fn tx_fees(tx_count: usize) -> MilliEther {
    AVG_FEE_PER_TX * tx_count as MilliEther
}

/// Per-pool reward ledger.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: BTreeMap<PoolId, PoolEarnings>,
}

/// Cumulative earnings of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolEarnings {
    /// Canonical blocks mined.
    pub blocks: u64,
    /// Uncles credited.
    pub uncles: u64,
    /// Total reward, in milli-ether.
    pub reward: MilliEther,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits a canonical block (base reward + nephew bonus + fees).
    pub fn credit_block(&mut self, miner: PoolId, uncles_referenced: usize, fees: MilliEther) {
        let e = self.entries.entry(miner).or_default();
        e.blocks += 1;
        e.reward += BLOCK_REWARD + NEPHEW_REWARD * uncles_referenced as MilliEther + fees;
    }

    /// Credits an uncle reward.
    pub fn credit_uncle(&mut self, miner: PoolId, nephew: BlockNumber, uncle: BlockNumber) {
        let e = self.entries.entry(miner).or_default();
        e.uncles += 1;
        e.reward += uncle_reward(nephew, uncle);
    }

    /// The earnings of a pool (zeroes if never credited).
    pub fn earnings(&self, pool: PoolId) -> PoolEarnings {
        self.entries.get(&pool).copied().unwrap_or_default()
    }

    /// Iterates over all pools with any earnings.
    pub fn iter(&self) -> impl Iterator<Item = (PoolId, &PoolEarnings)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Total reward issued, in milli-ether.
    pub fn total_reward(&self) -> MilliEther {
        self.entries.values().map(|e| e.reward).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncle_reward_schedule() {
        // Gap 1: 7/8 of 2 ETH = 1.75 ETH.
        assert_eq!(uncle_reward(10, 9), 1_750);
        // Gap 2: 6/8 = 1.5 ETH.
        assert_eq!(uncle_reward(10, 8), 1_500);
        // Gap 6: 2/8 = 0.5 ETH.
        assert_eq!(uncle_reward(10, 4), 500);
        // Out of window.
        assert_eq!(uncle_reward(10, 3), 0);
        assert_eq!(uncle_reward(10, 10), 0);
        assert_eq!(uncle_reward(10, 11), 0);
    }

    #[test]
    fn nephew_reward_is_one_thirty_second() {
        assert_eq!(NEPHEW_REWARD, 62); // 2000/32 = 62.5 truncated
    }

    #[test]
    fn flat_fee_model_matches_full_block_average() {
        assert_eq!(tx_fees(0), 0);
        assert_eq!(tx_fees(75), AVG_FEES_PER_FULL_BLOCK);
    }

    #[test]
    fn one_miner_fork_profitability() {
        // The paper's §III-C5 economics: a duplicate block recognized as a
        // gap-1 uncle earns 1.75 ETH -- 87.5% of a main block. That dwarfs
        // the fee income it forfeits, which is why duplicates pay off.
        assert!(uncle_reward(5, 4) > 10 * AVG_FEES_PER_FULL_BLOCK);
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = Ledger::new();
        let p = PoolId(1);
        ledger.credit_block(p, 0, AVG_FEES_PER_FULL_BLOCK);
        ledger.credit_block(p, 2, 0); // empty block with two uncle refs
        ledger.credit_uncle(p, 10, 9);
        let e = ledger.earnings(p);
        assert_eq!(e.blocks, 2);
        assert_eq!(e.uncles, 1);
        assert_eq!(
            e.reward,
            2 * BLOCK_REWARD + 2 * NEPHEW_REWARD + AVG_FEES_PER_FULL_BLOCK + 1_750
        );
        assert_eq!(ledger.total_reward(), e.reward);
        assert_eq!(ledger.earnings(PoolId(9)), PoolEarnings::default());
        assert_eq!(ledger.iter().count(), 1);
    }
}
