//! Scenario descriptions and calibrated presets.
//!
//! A [`Scenario`] fully determines a campaign: the same scenario and seed
//! reproduce the same dataset bit for bit.

use std::path::PathBuf;

use ethmeter_chain::consensus::ConsensusKind;
use ethmeter_dynamics::{DynamicsError, DynamicsScript};
use ethmeter_geo::{ClockModel, LatencyModel};
use ethmeter_measure::VantagePoint;
use ethmeter_mining::PoolDirectory;
use ethmeter_net::NetConfig;
use ethmeter_types::{Gas, Region, SimDuration};
use ethmeter_workload::WorkloadConfig;

/// Named scenario sizes.
///
/// All presets run the paper's pool directory and latency matrix; they
/// differ in node count, duration, and transaction scale. Transaction rate
/// and block gas limit are scaled *together*, so block utilization — the
/// shape parameter of the queueing behavior in Figures 4/5 — matches the
/// paper's ~80% at every size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// ~60 nodes, 20 simulated minutes. Smoke tests and doc examples.
    Tiny,
    /// ~150 nodes, 2 simulated hours. Integration tests.
    Small,
    /// ~400 nodes, 8 simulated hours. Figure-quality runs.
    Medium,
    /// ~800 nodes, 24 simulated hours, √-fanout tx relay. The
    /// EXPERIMENTS.md headline runs.
    PaperScaled,
    /// ~10,000 nodes, 30 simulated minutes, √-fanout tx relay —
    /// planet-scale decentralization measurements (Nakamoto/Gini/HHI over
    /// observation and revenue share). Only practical with the sharded
    /// parallel engine ([`ScenarioBuilder::shards`]).
    Planet,
}

/// A fully specified campaign.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Master seed; all randomness forks from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Ordinary (non-gateway, non-observer) node count.
    pub ordinary_nodes: usize,
    /// Region mix of ordinary nodes.
    pub region_weights: Vec<(Region, f64)>,
    /// devp2p layer configuration.
    pub net: NetConfig,
    /// Geographic latency model.
    pub latency: LatencyModel,
    /// Observer clock model.
    pub clock: ClockModel,
    /// The mining pools.
    pub pools: PoolDirectory,
    /// Mean inter-block time (the paper's 13.3 s).
    pub interblock: SimDuration,
    /// Block gas limit.
    pub gas_limit: Gas,
    /// Transaction workload.
    pub workload: WorkloadConfig,
    /// Measurement deployments.
    pub vantages: Vec<VantagePoint>,
    /// Mean extra delay between a gateway head switch and the pool
    /// retargeting its miners (work distribution, DAG setup). Together
    /// with import and gateway propagation delays this forms the ~1s
    /// stale-mining window that yields the observed ~7% fork rate.
    pub miner_lag_mean: SimDuration,
    /// Peer target of gateway nodes.
    pub gateway_degree: usize,
    /// Worker shards for a *single* campaign. `1` (the default) selects
    /// the sequential reference engine; `n > 1` runs the deterministic
    /// sharded engine, whose output is bit-identical to sequential at any
    /// shard count (pinned by the golden fingerprints).
    pub shards: usize,
    /// Spill directory for out-of-core measurement. `Some` flips every
    /// observer log to the columnar on-disk backend: once a log's
    /// estimated in-memory record bytes cross its share of
    /// [`Scenario::measure_budget_bytes`], it drains to sorted segment
    /// files under this directory (deterministic names; unlinked when the
    /// campaign data drops). Campaign output is bit-identical to the
    /// in-memory backend. One spill dir must not be shared by
    /// concurrently running campaigns (per-job sweep scenarios should
    /// each point somewhere distinct).
    pub spill_dir: Option<PathBuf>,
    /// Total measurement-memory budget (bytes, estimated record storage
    /// across all vantages) once [`Scenario::spill_dir`] is set. Split
    /// evenly across observer logs.
    pub measure_budget_bytes: usize,
    /// Scheduled network dynamics (churn, partitions, eclipse, floods).
    /// Empty by default: the static world, bit-identical to scenarios
    /// built before the dynamics layer existed (pinned by the goldens).
    pub dynamics: DynamicsScript,
    /// Consensus engine every node (and the ground-truth tree) runs.
    /// [`ConsensusKind::Heaviest`] by default — the historical
    /// total-difficulty rule, pinned by the goldens.
    pub consensus: ConsensusKind,
}

impl Scenario {
    /// Starts building a scenario (defaults to [`Preset::Small`]).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Changes the transaction rate on an already-built scenario while
    /// preserving the calibrated block utilization (the gas limit scales
    /// proportionally, matching [`ScenarioBuilder::tx_rate`]'s calibration
    /// up to integer rounding) — the natural tx-rate grid axis.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn set_tx_rate(&mut self, rate: f64) {
        let old = self.workload.tx_rate;
        self.gas_limit = (self.gas_limit as f64 * rate / old).round() as Gas;
        self.workload = self.workload.clone().with_rate(rate);
    }

    /// Ethernodes-like 2019 region mix for ordinary peers (Eastern Asia
    /// aggregates CN/KR/JP/TW/HK/SG, a fifth of the network).
    pub fn default_region_weights() -> Vec<(Region, f64)> {
        vec![
            (Region::NorthAmerica, 0.26),
            (Region::WesternEurope, 0.19),
            (Region::CentralEurope, 0.13),
            (Region::EasternEurope, 0.09),
            (Region::EasternAsia, 0.23),
            (Region::SouthAsia, 0.04),
            (Region::SouthAmerica, 0.03),
            (Region::Oceania, 0.03),
        ]
    }

    /// Expected number of blocks this scenario will mine.
    pub fn expected_blocks(&self) -> u64 {
        (self.duration.as_secs_f64() / self.interblock.as_secs_f64()) as u64
    }
}

/// A reason [`ScenarioBuilder::build_checked`] rejected a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The simulated duration is zero.
    ZeroDuration,
    /// The scenario has no ordinary nodes.
    ZeroNodes,
    /// The pool directory is empty.
    EmptyPoolDirectory,
    /// The transaction rate is not positive and finite.
    InvalidTxRate(f64),
    /// The mean inter-block time is zero.
    ZeroInterblock,
    /// A spill dir was configured with a zero measurement budget.
    ZeroMeasureBudget,
    /// The dynamics script references entities outside the world or
    /// carries malformed parameters (the payload names the offending
    /// entry's virtual time).
    Dynamics(DynamicsError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::ZeroDuration => {
                write!(f, "scenario duration is zero — nothing would be simulated")
            }
            ScenarioError::ZeroNodes => write!(
                f,
                "scenario has zero ordinary nodes — there is no network to gossip over"
            ),
            ScenarioError::EmptyPoolDirectory => write!(
                f,
                "pool directory is empty — no pool could ever mine a block"
            ),
            ScenarioError::InvalidTxRate(rate) => write!(
                f,
                "transaction rate {rate} is invalid — it must be positive and finite"
            ),
            ScenarioError::ZeroInterblock => write!(
                f,
                "mean inter-block time is zero — blocks cannot be mined infinitely fast"
            ),
            ScenarioError::ZeroMeasureBudget => write!(
                f,
                "spill dir set with a zero measurement budget — every record would flush"
            ),
            ScenarioError::Dynamics(e) => write!(f, "dynamics script rejected: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Builder for [`Scenario`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    preset: Preset,
    seed: u64,
    duration: Option<SimDuration>,
    ordinary_nodes: Option<usize>,
    pools: Option<PoolDirectory>,
    workload_rate: Option<f64>,
    vantages: Option<Vec<VantagePoint>>,
    net: Option<NetConfig>,
    interblock: Option<SimDuration>,
    clock: Option<ClockModel>,
    shards: usize,
    spill_dir: Option<PathBuf>,
    measure_budget_bytes: Option<usize>,
    dynamics: DynamicsScript,
    consensus: ConsensusKind,
}

impl ScenarioBuilder {
    /// Creates a builder with [`Preset::Small`] defaults.
    pub fn new() -> Self {
        ScenarioBuilder {
            preset: Preset::Small,
            seed: 42,
            duration: None,
            ordinary_nodes: None,
            pools: None,
            workload_rate: None,
            vantages: None,
            net: None,
            interblock: None,
            clock: None,
            shards: 1,
            spill_dir: None,
            measure_budget_bytes: None,
            dynamics: DynamicsScript::new(),
            consensus: ConsensusKind::Heaviest,
        }
    }

    /// Selects a preset (sets size, duration, workload scale).
    #[must_use]
    pub fn preset(mut self, preset: Preset) -> Self {
        self.preset = preset;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the simulated duration.
    #[must_use]
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Overrides the ordinary-node count.
    #[must_use]
    pub fn ordinary_nodes(mut self, n: usize) -> Self {
        self.ordinary_nodes = Some(n);
        self
    }

    /// Replaces the pool directory (ablations).
    #[must_use]
    pub fn pools(mut self, pools: PoolDirectory) -> Self {
        self.pools = Some(pools);
        self
    }

    /// Overrides the global transaction rate (gas limit rescales with it).
    #[must_use]
    pub fn tx_rate(mut self, rate: f64) -> Self {
        self.workload_rate = Some(rate);
        self
    }

    /// Replaces the vantage points.
    #[must_use]
    pub fn vantages(mut self, vantages: Vec<VantagePoint>) -> Self {
        self.vantages = Some(vantages);
        self
    }

    /// Replaces the network configuration.
    #[must_use]
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Overrides the mean inter-block time.
    #[must_use]
    pub fn interblock(mut self, interblock: SimDuration) -> Self {
        self.interblock = Some(interblock);
        self
    }

    /// Replaces the observer clock model.
    #[must_use]
    pub fn clock(mut self, clock: ClockModel) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Sets the intra-run worker shard count. `1` (the default) is the
    /// sequential reference engine; `n > 1` partitions the nodes
    /// region-atomically across `n` workers that run in bounded lookahead
    /// windows, producing bit-identical campaign output. `0` is treated
    /// as `1`.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables out-of-core measurement: observer logs spill to columnar
    /// segment files under `dir` once they exceed their share of the
    /// measurement budget (see [`ScenarioBuilder::measure_budget`];
    /// default 64 MiB). Output is bit-identical to the in-memory backend.
    #[must_use]
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Sets the total measurement-memory budget in bytes (estimated
    /// record storage across all vantages). Only meaningful together with
    /// [`ScenarioBuilder::spill_dir`].
    #[must_use]
    pub fn measure_budget(mut self, bytes: usize) -> Self {
        self.measure_budget_bytes = Some(bytes);
        self
    }

    /// Attaches a network-dynamics script (churn, partitions, eclipse,
    /// floods). Entries are validated against the built world's node and
    /// pool population; an out-of-range reference fails the build with a
    /// [`ScenarioError::Dynamics`] naming the offending entry's time.
    #[must_use]
    pub fn dynamics(mut self, script: DynamicsScript) -> Self {
        self.dynamics = script;
        self
    }

    /// Selects the consensus engine every node (and the ground-truth tree)
    /// runs. Defaults to [`ConsensusKind::Heaviest`], the historical
    /// total-difficulty rule pinned by the goldens.
    #[must_use]
    pub fn consensus(mut self, kind: ConsensusKind) -> Self {
        self.consensus = kind;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    ///
    /// Panics with a [`ScenarioError`] message on a nonsensical
    /// configuration (zero duration, zero nodes, empty pool directory,
    /// invalid tx rate, zero inter-block time). Use
    /// [`ScenarioBuilder::build_checked`] to handle the error instead.
    pub fn build(self) -> Scenario {
        self.build_checked()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Finalizes the scenario, rejecting nonsensical configurations.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] found: zero duration, zero
    /// ordinary nodes, an empty pool directory, a non-positive or
    /// non-finite transaction rate, or a zero inter-block time.
    pub fn build_checked(self) -> Result<Scenario, ScenarioError> {
        let (nodes, duration, rate, mut net) = match self.preset {
            Preset::Tiny => (60, SimDuration::from_mins(20), 0.5, NetConfig::default()),
            Preset::Small => (150, SimDuration::from_hours(2), 1.0, NetConfig::default()),
            Preset::Medium => (400, SimDuration::from_hours(8), 2.0, NetConfig::default()),
            Preset::PaperScaled => {
                let cfg = NetConfig {
                    tx_relay: ethmeter_net::TxRelayPolicy::Sqrt,
                    ..NetConfig::default()
                };
                (800, SimDuration::from_hours(24), 4.0, cfg)
            }
            Preset::Planet => {
                let cfg = NetConfig {
                    tx_relay: ethmeter_net::TxRelayPolicy::Sqrt,
                    ..NetConfig::default()
                };
                (10_000, SimDuration::from_mins(30), 4.0, cfg)
            }
        };
        // Observer peer targets cannot exceed the network, and in small
        // presets "unlimited" just means "most of it".
        let ordinary = self.ordinary_nodes.unwrap_or(nodes);
        if ordinary == 0 {
            return Err(ScenarioError::ZeroNodes);
        }
        if let Some(n) = self.net {
            net = n;
        }
        net.observer_peer_target = net
            .observer_peer_target
            .min(ordinary.saturating_sub(1).max(8));

        let rate = self.workload_rate.unwrap_or(rate);
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(ScenarioError::InvalidTxRate(rate));
        }
        let workload = WorkloadConfig::default().with_rate(rate);
        let interblock = self.interblock.unwrap_or(SimDuration::from_secs_f64(13.3));
        // Hold utilization near the paper's ~80% block fullness. Scaled
        // blocks hold far fewer transactions than mainnet's ~130-slot
        // capacity, so queueing delay at equal utilization is shorter
        // (less variance pooling); running slightly hotter restores the
        // paper's ~2-block median inclusion delay.
        let gas_limit =
            (workload.mean_gas() * rate * interblock.as_secs_f64() / 0.88).round() as Gas;

        let duration = self.duration.unwrap_or(duration);
        if duration == SimDuration::ZERO {
            return Err(ScenarioError::ZeroDuration);
        }
        if interblock == SimDuration::ZERO {
            return Err(ScenarioError::ZeroInterblock);
        }
        let pools = self.pools.unwrap_or_else(PoolDirectory::paper_dsn2020);
        if pools.is_empty() {
            return Err(ScenarioError::EmptyPoolDirectory);
        }
        let measure_budget_bytes = self.measure_budget_bytes.unwrap_or(64 << 20);
        if self.spill_dir.is_some() && measure_budget_bytes == 0 {
            return Err(ScenarioError::ZeroMeasureBudget);
        }
        let vantages = self.vantages.unwrap_or_else(VantagePoint::paper_all);
        // The world numbers ordinary nodes, then pool gateways, then
        // observers — the script may address any of them.
        let gateway_nodes: usize = pools.iter().map(|p| p.gateway_count).sum();
        let total_nodes = ordinary + gateway_nodes + vantages.len();
        self.dynamics
            .validate(total_nodes, pools.len())
            .map_err(ScenarioError::Dynamics)?;

        Ok(Scenario {
            seed: self.seed,
            duration,
            ordinary_nodes: ordinary,
            region_weights: Scenario::default_region_weights(),
            net,
            latency: LatencyModel::default(),
            clock: self.clock.unwrap_or_else(ClockModel::ntp_default),
            pools,
            interblock,
            gas_limit,
            workload,
            vantages,
            miner_lag_mean: SimDuration::from_millis(750),
            gateway_degree: 40,
            shards: self.shards.max(1),
            spill_dir: self.spill_dir,
            measure_budget_bytes,
            dynamics: self.dynamics,
            consensus: self.consensus,
        })
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_consistently() {
        let tiny = Scenario::builder().preset(Preset::Tiny).build();
        let medium = Scenario::builder().preset(Preset::Medium).build();
        assert!(tiny.ordinary_nodes < medium.ordinary_nodes);
        assert!(tiny.duration < medium.duration);
        // Utilization preserved across presets (calibrated to 0.88; see
        // the gas-limit comment in ScenarioBuilder::build).
        let u_tiny = tiny.workload.utilization(tiny.gas_limit, tiny.interblock);
        let u_med = medium
            .workload
            .utilization(medium.gas_limit, medium.interblock);
        assert!((u_tiny - 0.88).abs() < 0.02, "tiny utilization {u_tiny}");
        assert!((u_tiny - u_med).abs() < 0.02);
    }

    #[test]
    fn builder_overrides() {
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(7)
            .ordinary_nodes(80)
            .tx_rate(2.0)
            .duration(SimDuration::from_mins(5))
            .build();
        assert_eq!(s.seed, 7);
        assert_eq!(s.ordinary_nodes, 80);
        assert_eq!(s.duration, SimDuration::from_mins(5));
        assert!((s.workload.tx_rate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn consensus_defaults_to_heaviest_and_is_selectable() {
        let s = Scenario::builder().preset(Preset::Tiny).build();
        assert_eq!(s.consensus, ConsensusKind::Heaviest);
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .consensus(ConsensusKind::UncleGhost)
            .build();
        assert_eq!(s.consensus, ConsensusKind::UncleGhost);
        assert_eq!(s.consensus.build().name(), "uncle-ghost");
    }

    #[test]
    fn expected_blocks_math() {
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_secs(1330))
            .build();
        assert_eq!(s.expected_blocks(), 100);
    }

    #[test]
    fn observer_targets_clamped_to_network() {
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .ordinary_nodes(30)
            .build();
        assert!(s.net.observer_peer_target <= 29);
    }

    #[test]
    fn region_weights_cover_all_regions() {
        let w = Scenario::default_region_weights();
        assert_eq!(w.len(), Region::COUNT);
        let total: f64 = w.iter().map(|&(_, x)| x).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scaled_uses_sqrt_relay() {
        let s = Scenario::builder().preset(Preset::PaperScaled).build();
        assert_eq!(s.net.tx_relay, ethmeter_net::TxRelayPolicy::Sqrt);
    }

    #[test]
    fn planet_preset_and_shards_knob() {
        let s = Scenario::builder().preset(Preset::Planet).shards(4).build();
        assert_eq!(s.ordinary_nodes, 10_000);
        assert_eq!(s.net.tx_relay, ethmeter_net::TxRelayPolicy::Sqrt);
        assert_eq!(s.shards, 4);
        // Default is the sequential reference; zero clamps to it.
        assert_eq!(Scenario::builder().preset(Preset::Tiny).build().shards, 1);
        assert_eq!(
            Scenario::builder()
                .preset(Preset::Tiny)
                .shards(0)
                .build()
                .shards,
            1
        );
    }

    #[test]
    fn spill_knobs_flow_through() {
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .spill_dir("/tmp/ethmeter-spill")
            .measure_budget(1 << 20)
            .build();
        assert_eq!(
            s.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ethmeter-spill"))
        );
        assert_eq!(s.measure_budget_bytes, 1 << 20);
        // Defaults: no spill, 64 MiB budget.
        let d = Scenario::builder().preset(Preset::Tiny).build();
        assert!(d.spill_dir.is_none());
        assert_eq!(d.measure_budget_bytes, 64 << 20);
        // Zero budget with a spill dir is rejected.
        assert_eq!(
            Scenario::builder()
                .preset(Preset::Tiny)
                .spill_dir("/tmp/x")
                .measure_budget(0)
                .build_checked()
                .err(),
            Some(ScenarioError::ZeroMeasureBudget)
        );
    }

    #[test]
    fn build_checked_rejects_nonsense() {
        let builder = || Scenario::builder().preset(Preset::Tiny);
        assert_eq!(
            builder().duration(SimDuration::ZERO).build_checked().err(),
            Some(ScenarioError::ZeroDuration)
        );
        assert_eq!(
            builder().ordinary_nodes(0).build_checked().err(),
            Some(ScenarioError::ZeroNodes)
        );
        assert_eq!(
            builder().tx_rate(0.0).build_checked().err(),
            Some(ScenarioError::InvalidTxRate(0.0))
        );
        assert!(matches!(
            builder().tx_rate(f64::NAN).build_checked(),
            Err(ScenarioError::InvalidTxRate(_))
        ));
        assert_eq!(
            builder()
                .interblock(SimDuration::ZERO)
                .build_checked()
                .err(),
            Some(ScenarioError::ZeroInterblock)
        );
        // A valid configuration builds identically through either path.
        let checked = builder().seed(9).build_checked().expect("valid");
        let unchecked = builder().seed(9).build();
        assert_eq!(checked.seed, unchecked.seed);
        assert_eq!(checked.gas_limit, unchecked.gas_limit);
        // Error messages explain themselves.
        assert!(ScenarioError::ZeroNodes.to_string().contains("zero"));
    }

    #[test]
    fn dynamics_scripts_validate_against_the_world() {
        use ethmeter_dynamics::{DynamicsError, DynamicsEvent};
        use ethmeter_types::{NodeId, SimTime};

        // Default: the static world.
        let s = Scenario::builder().preset(Preset::Tiny).build();
        assert!(s.dynamics.is_empty());

        // A valid script flows through.
        let at = SimTime::ZERO + SimDuration::from_mins(1);
        let ok = Scenario::builder()
            .preset(Preset::Tiny)
            .dynamics(DynamicsScript::new().churn_window(at, SimDuration::from_mins(2), NodeId(3)))
            .build();
        assert_eq!(ok.dynamics.entries().len(), 2);

        // Out-of-world references are rejected with the offending time.
        let err = Scenario::builder()
            .preset(Preset::Tiny)
            .dynamics(DynamicsScript::new().at(at, DynamicsEvent::NodeDown(NodeId(100_000))))
            .build_checked()
            .err();
        assert_eq!(
            err,
            Some(ScenarioError::Dynamics(DynamicsError::UnknownNode {
                at,
                node: NodeId(100_000)
            }))
        );
    }

    #[test]
    #[should_panic(expected = "invalid scenario: scenario duration is zero")]
    fn build_panics_with_a_clear_message() {
        let _ = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::ZERO)
            .build();
    }

    #[test]
    fn set_tx_rate_preserves_utilization() {
        let mut s = Scenario::builder().preset(Preset::Tiny).build();
        let u_before = s.workload.utilization(s.gas_limit, s.interblock);
        s.set_tx_rate(2.0);
        let u_after = s.workload.utilization(s.gas_limit, s.interblock);
        assert!((s.workload.tx_rate - 2.0).abs() < 1e-12);
        assert!((u_before - u_after).abs() < 0.01, "{u_before} vs {u_after}");
        // Matches what the builder would have produced for the same rate,
        // up to the builder's integer rounding of the gas limit.
        let rebuilt = Scenario::builder()
            .preset(Preset::Tiny)
            .tx_rate(2.0)
            .build();
        assert!((s.gas_limit as i64 - rebuilt.gas_limit as i64).abs() <= 4);
    }
}
